// Command staccatovet runs the staccatolint analyzer suite — the
// repo's machine-enforced correctness invariants — over the module's
// packages. It exits nonzero when any finding survives //lint:allow
// filtering.
//
// Usage:
//
//	go run ./cmd/staccatovet ./...          # whole repo (what CI runs)
//	go run ./cmd/staccatovet ./pkg/query    # one package
//	go run ./cmd/staccatovet -list          # describe the analyzers
//
// The suite is intentionally self-hosted (see internal/analysis): it
// depends only on the standard library, so it runs anywhere the repo
// builds — no vettool protocol, no external checker binaries.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/paper-repo/staccato-go/internal/analysis/driver"
)

func main() {
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: staccatovet [-list] [packages]\n\npackages default to ./...; see -list for the checks\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		driver.List(os.Stdout)
		return
	}
	findings, err := driver.Run("", flag.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staccatovet:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "staccatovet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
