// Command staccatoload drives concurrent mixed read/write load at a
// staccatod server and reports the serve path's place on the perf
// trajectory: QPS, latency percentiles, error rate, and the admission
// accounting (every 429 the clients saw, cross-checked against the
// server's own rejection counter — a rejection that is not a counted
// 429 is a bug this harness exists to catch).
//
//	staccatoload [-addr URL] [-clients N] [-duration D] [-writefrac F]
//	             [-docs N] [-maxinflight N] [-out BENCH_serve.json]
//
// With -addr it targets a running staccatod. Without it the harness is
// self-contained: it builds a temporary corpus, starts an in-process
// server (pkg/server over a fresh disk store), runs the load against it
// over real loopback HTTP, drains, and cleans up — which is how CI
// produces BENCH_serve.json.
//
// Each client loops until the deadline: with probability -writefrac it
// ingests one new document (unique ID, real index maintenance on the
// commit path), otherwise it searches for a term drawn from a pool of
// n-grams sampled from the corpus — repeat terms by construction, so
// the compiled-query cache sees realistic hit rates.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/server"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

type loadConfig struct {
	addr        string
	clients     int
	duration    time.Duration
	writeFrac   float64
	docs        int
	length      int
	chunks      int
	k           int
	seed        int64
	top         int
	maxInFlight int
	out         string
}

// summary is the harness's result — both the human report and the
// BENCH_serve.json artifact.
type summary struct {
	Benchmark     string  `json:"benchmark"`
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_sec"`
	WriteFraction float64 `json:"write_fraction"`
	CorpusDocs    int     `json:"corpus_docs"`

	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Rejected429 int64   `json:"rejected_429"`
	Errors      int64   `json:"errors"`
	ErrorRate   float64 `json:"error_rate"`
	QPS         float64 `json:"qps"`

	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`

	SearchP50MS float64 `json:"search_p50_ms"`
	SearchP99MS float64 `json:"search_p99_ms"`
	IngestP50MS float64 `json:"ingest_p50_ms"`
	IngestP99MS float64 `json:"ingest_p99_ms"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// ServerRejected is the server's own 429 counter after the run;
	// UnaccountedRejections = ServerRejected - Rejected429 and must be 0
	// in self-serve mode (no other client exists to absorb the
	// difference) — the zero-dropped-but-unreported check.
	ServerRejected        int64 `json:"server_rejected"`
	UnaccountedRejections int64 `json:"unaccounted_rejections"`
}

func main() {
	if err := loadMain(os.Stdout, os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "staccatoload:", err)
		os.Exit(1)
	}
}

func loadMain(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("staccatoload", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: staccatoload [flags]\n  drive concurrent mixed read/write load at a staccatod server and emit BENCH_serve.json\n")
		fs.PrintDefaults()
	}
	cfg := loadConfig{}
	fs.StringVar(&cfg.addr, "addr", "", "target server base URL (empty = start a self-contained in-process server)")
	fs.IntVar(&cfg.clients, "clients", 1000, "concurrent clients")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "load duration")
	fs.Float64Var(&cfg.writeFrac, "writefrac", 0.1, "fraction of requests that are writes")
	fs.IntVar(&cfg.docs, "docs", 500, "pre-ingested corpus size (self-serve mode)")
	fs.IntVar(&cfg.length, "len", 40, "ground truth length of generated documents")
	fs.IntVar(&cfg.chunks, "chunks", 4, "chunks per generated document")
	fs.IntVar(&cfg.k, "k", 3, "paths kept per chunk")
	fs.Int64Var(&cfg.seed, "seed", 1, "PRNG seed for the corpus and workload")
	fs.IntVar(&cfg.top, "top", 5, "top-k for search requests")
	fs.IntVar(&cfg.maxInFlight, "maxinflight", server.DefaultMaxInFlight, "server admission limit (self-serve mode)")
	fs.StringVar(&cfg.out, "out", "BENCH_serve.json", "output JSON path (empty = no file)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("invalid command line")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (staccatoload takes only flags)", fs.Arg(0))
	}
	if cfg.clients < 1 {
		return fmt.Errorf("-clients must be >= 1, got %d", cfg.clients)
	}
	if cfg.writeFrac < 0 || cfg.writeFrac > 1 {
		return fmt.Errorf("-writefrac must be in [0, 1], got %g", cfg.writeFrac)
	}
	sum, err := runLoad(w, cfg)
	if err != nil {
		return err
	}
	if cfg.out != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.out)
	}
	return nil
}

// selfServe stands up the in-process target: temp-dir store, ingested
// corpus, pkg/server on a loopback listener. It returns the base URL,
// the sampled term pool, and a shutdown function that drains the server
// and removes the directory.
func selfServe(w io.Writer, cfg loadConfig) (string, []string, func() error, error) {
	dir, err := os.MkdirTemp("", "staccatoload-*")
	if err != nil {
		return "", nil, nil, err
	}
	fail := func(err error) (string, []string, func() error, error) {
		os.RemoveAll(dir)
		return "", nil, nil, err
	}
	// NoSync: the corpus is disposable, and the bench measures the serve
	// path, not fsync latency on whatever disk CI provides.
	db, err := staccatodb.Open(dir, staccatodb.WithNoSync())
	if err != nil {
		return fail(err)
	}
	var terms []string
	batch := make([]*staccato.Doc, 0, 256)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := db.Ingest(context.Background(), batch)
		batch = batch[:0]
		return err
	}
	err = testgen.EachDoc(cfg.docs, testgen.Config{Length: cfg.length, Seed: cfg.seed}, cfg.chunks, cfg.k,
		func(dc testgen.DocCase) error {
			if len(terms) < 64 {
				if m := dc.Doc.MAP(); len(m) >= 6 {
					terms = append(terms, m[:3], m[len(m)/2:len(m)/2+3])
				}
			}
			batch = append(batch, dc.Doc)
			if len(batch) >= 256 {
				return flush()
			}
			return nil
		})
	if err == nil {
		err = flush()
	}
	if err != nil {
		db.Close()
		return fail(err)
	}

	srv := server.New(db, server.Options{MaxInFlight: cfg.maxInFlight})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		return fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	fmt.Fprintf(w, "self-serve: %d docs in %s, serving on http://%s (max in-flight %d)\n",
		cfg.docs, dir, ln.Addr(), srv.Options().MaxInFlight)

	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		err := srv.Shutdown(ctx)
		os.RemoveAll(dir)
		return err
	}
	return "http://" + ln.Addr().String(), terms, shutdown, nil
}

// clientAgg is one client's tally; clients never share state during the
// run, so the hot loop takes no locks.
type clientAgg struct {
	requests, ok, rejected, errs int64
	latAll, latSearch, latIngest []float64 // ms, successful requests only
}

func runLoad(w io.Writer, cfg loadConfig) (summary, error) {
	var sum summary
	target := cfg.addr
	terms := []string{}
	var shutdown func() error
	if target == "" {
		var err error
		target, terms, shutdown, err = selfServe(w, cfg)
		if err != nil {
			return sum, err
		}
		defer func() {
			if shutdown != nil {
				shutdown()
			}
		}()
	}
	if len(terms) == 0 {
		// Remote mode has no corpus in hand; lowercase trigrams still
		// exercise planner + engine (most will prune to tiny candidate
		// sets), and repeats still exercise the cache.
		rng := rand.New(rand.NewSource(cfg.seed))
		for i := 0; i < 64; i++ {
			terms = append(terms, string([]byte{
				byte('a' + rng.Intn(26)), byte('a' + rng.Intn(26)), byte('a' + rng.Intn(26)),
			}))
		}
	}

	// A pool of pre-built documents for the write path: writers clone one
	// and stamp a unique ID, so every write is a real index-maintaining
	// commit without paying SFST generation inside the measured loop.
	writePool := make([]*staccato.Doc, 0, 32)
	err := testgen.EachDoc(32, testgen.Config{Length: cfg.length, Seed: cfg.seed + 7777}, cfg.chunks, cfg.k,
		func(dc testgen.DocCase) error {
			writePool = append(writePool, dc.Doc)
			return nil
		})
	if err != nil {
		return sum, err
	}

	transport := &http.Transport{
		MaxIdleConns:        cfg.clients + 16,
		MaxIdleConnsPerHost: cfg.clients + 16,
		IdleConnTimeout:     90 * time.Second,
	}
	client := &http.Client{Transport: transport, Timeout: 60 * time.Second}
	defer transport.CloseIdleConnections()

	fmt.Fprintf(w, "load: %d clients, %v, write fraction %.2f, target %s\n",
		cfg.clients, cfg.duration, cfg.writeFrac, target)

	aggs := make([]clientAgg, cfg.clients)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			agg := &aggs[c]
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*104729))
			seq := 0
			for time.Now().Before(deadline) {
				var status int
				var kind *[]float64
				reqStart := time.Now()
				if rng.Float64() < cfg.writeFrac {
					doc := *writePool[rng.Intn(len(writePool))]
					doc.ID = fmt.Sprintf("load-%d-%d", c, seq)
					seq++
					status = postJSON(client, target+"/v1/ingest",
						map[string]any{"docs": []*staccato.Doc{&doc}})
					kind = &agg.latIngest
				} else {
					spec := map[string]any{"terms": []string{terms[rng.Intn(len(terms))]}, "top": cfg.top}
					if rng.Intn(8) == 0 { // occasional boolean query for cache-key variety
						spec["terms"] = []string{terms[rng.Intn(len(terms))], terms[rng.Intn(len(terms))]}
						spec["combine"] = "or"
					}
					status = postJSON(client, target+"/v1/search", spec)
					kind = &agg.latSearch
				}
				ms := float64(time.Since(reqStart).Microseconds()) / 1000
				agg.requests++
				switch {
				case status == http.StatusOK:
					agg.ok++
					agg.latAll = append(agg.latAll, ms)
					*kind = append(*kind, ms)
				case status == http.StatusTooManyRequests:
					agg.rejected++
					// Brief jittered backoff: a rejected closed-loop client
					// hammering retries would measure the reject path, not
					// the serve path.
					time.Sleep(time.Duration(500+rng.Intn(1500)) * time.Microsecond)
				default:
					agg.errs++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all, search, ingest []float64
	for i := range aggs {
		sum.Requests += aggs[i].requests
		sum.OK += aggs[i].ok
		sum.Rejected429 += aggs[i].rejected
		sum.Errors += aggs[i].errs
		all = append(all, aggs[i].latAll...)
		search = append(search, aggs[i].latSearch...)
		ingest = append(ingest, aggs[i].latIngest...)
	}
	sum.Benchmark = "Serve"
	sum.Clients = cfg.clients
	sum.DurationSec = elapsed.Seconds()
	sum.WriteFraction = cfg.writeFrac
	sum.CorpusDocs = cfg.docs
	if sum.Requests > 0 {
		sum.ErrorRate = float64(sum.Errors) / float64(sum.Requests)
	}
	sum.QPS = float64(sum.OK) / elapsed.Seconds()
	sum.P50MS, sum.P90MS, sum.P99MS = percentile(all, 0.50), percentile(all, 0.90), percentile(all, 0.99)
	sum.SearchP50MS, sum.SearchP99MS = percentile(search, 0.50), percentile(search, 0.99)
	sum.IngestP50MS, sum.IngestP99MS = percentile(ingest, 0.50), percentile(ingest, 0.99)

	// Pull the server's own accounting and reconcile it with what the
	// clients observed.
	if st, err := fetchServerStats(client, target); err == nil {
		sum.ServerRejected = st.Server.Rejected
		sum.CacheHits = st.Server.QueryCache.Hits
		sum.CacheMisses = st.Server.QueryCache.Misses
		if n := sum.CacheHits + sum.CacheMisses; n > 0 {
			sum.CacheHitRate = float64(sum.CacheHits) / float64(n)
		}
		sum.UnaccountedRejections = sum.ServerRejected - sum.Rejected429
	} else {
		fmt.Fprintf(w, "warning: could not fetch server stats: %v\n", err)
	}

	fmt.Fprintf(w, "done: %d requests in %.2fs — %d ok (%.0f qps), %d rejected (429), %d errors (rate %.4f)\n",
		sum.Requests, sum.DurationSec, sum.OK, sum.QPS, sum.Rejected429, sum.Errors, sum.ErrorRate)
	fmt.Fprintf(w, "latency ms: p50=%.2f p90=%.2f p99=%.2f (search p50=%.2f p99=%.2f, ingest p50=%.2f p99=%.2f)\n",
		sum.P50MS, sum.P90MS, sum.P99MS, sum.SearchP50MS, sum.SearchP99MS, sum.IngestP50MS, sum.IngestP99MS)
	fmt.Fprintf(w, "query cache: %d hits / %d misses (%.1f%% hit rate); server rejected %d (unaccounted: %d)\n",
		sum.CacheHits, sum.CacheMisses, sum.CacheHitRate*100, sum.ServerRejected, sum.UnaccountedRejections)

	if shutdown != nil {
		err := shutdown()
		shutdown = nil
		if err != nil {
			return sum, fmt.Errorf("server shutdown: %w", err)
		}
	}
	return sum, nil
}

// postJSON posts v and returns the HTTP status, 0 on transport failure.
// Bodies are drained so connections return to the pool.
func postJSON(client *http.Client, url string, v any) int {
	body, err := json.Marshal(v)
	if err != nil {
		return 0
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// statsShape is the slice of /v1/stats the harness reads.
type statsShape struct {
	Server struct {
		Rejected   int64 `json:"rejected"`
		QueryCache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"query_cache"`
	} `json:"server"`
}

func fetchServerStats(client *http.Client, target string) (statsShape, error) {
	var st statsShape
	resp, err := client.Get(target + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// percentile returns the q-th percentile of values (ms), 0 when empty.
func percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sort.Float64s(values)
	i := int(q * float64(len(values)-1))
	return values[i]
}
