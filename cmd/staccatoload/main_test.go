package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunLoadSelfServe is a small-scale end-to-end pass of the harness:
// in-process server, real loopback HTTP, mixed read/write clients. It
// doubles as the race-detector workout for the serve path under
// concurrent load.
func TestRunLoadSelfServe(t *testing.T) {
	var out bytes.Buffer
	sum, err := runLoad(&out, loadConfig{
		clients:     32,
		duration:    400 * time.Millisecond,
		writeFrac:   0.2,
		docs:        40,
		length:      40,
		chunks:      4,
		k:           3,
		seed:        11,
		top:         5,
		maxInFlight: 16,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if sum.Requests == 0 || sum.OK == 0 {
		t.Fatalf("no successful requests: %+v\n%s", sum, out.String())
	}
	if sum.Errors != 0 {
		t.Errorf("%d transport/server errors in a local run: %+v\n%s", sum.Errors, sum, out.String())
	}
	if sum.QPS <= 0 || sum.P50MS <= 0 || sum.P99MS < sum.P50MS {
		t.Errorf("implausible latency summary: %+v", sum)
	}
	// The acceptance invariant: every admission rejection the server
	// counted was observed by a client as a 429 — nothing dropped
	// silently.
	if sum.UnaccountedRejections != 0 {
		t.Errorf("unaccounted rejections = %d (server counted %d, clients saw %d)",
			sum.UnaccountedRejections, sum.ServerRejected, sum.Rejected429)
	}
	if sum.CacheHits == 0 {
		t.Errorf("query cache saw no hits under a repeating term pool: %+v", sum)
	}
}

// TestLoadMainWritesBenchJSON runs the full CLI path and checks the
// BENCH_serve.json artifact has the fields CI and the perf trajectory
// depend on.
func TestLoadMainWritesBenchJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err := loadMain(&buf, []string{
		"-clients", "8", "-duration", "200ms", "-docs", "16", "-out", out,
	})
	if err != nil {
		t.Fatalf("loadMain: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("BENCH_serve.json is not valid JSON: %v\n%s", err, data)
	}
	for _, key := range []string{"benchmark", "clients", "qps", "p50_ms", "p99_ms", "error_rate", "rejected_429", "unaccounted_rejections"} {
		if _, ok := m[key]; !ok {
			t.Errorf("BENCH_serve.json missing %q:\n%s", key, data)
		}
	}
	if m["benchmark"] != "Serve" {
		t.Errorf("benchmark = %v, want Serve", m["benchmark"])
	}
}

func TestLoadMainFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-clients", "0"}, "-clients must be >= 1"},
		{[]string{"-writefrac", "1.5"}, "-writefrac must be in [0, 1]"},
		{[]string{"stray"}, "unexpected argument"},
	}
	for _, tc := range cases {
		err := loadMain(&bytes.Buffer{}, tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("loadMain(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
