// Command staccatorecall runs the end-to-end recall benchmark: it
// generates an error-model OCR corpus (internal/testgen), ingests it
// into staccatodb at several (chunks, k) dial settings, runs a fixed
// keyword workload against each, and compares recall against the MAP
// baseline (Viterbi strings only) and the exact FullSFST oracle
// (query.EvalFST over the raw transducers). The result is the
// CI-tracked artifact BENCH_recall.json, reproducing the paper's
// headline recall curve: MAP < Staccato(c, k) <= Full.
//
//	staccatorecall [-docs N] [-queries N] [-seed N] [-model SPEC]
//	               [-dials LIST] [-default C,K] [-out FILE] [-gate]
//
// -model takes the error-model wire format ("words=12,subrate=0.06,...",
// see testgen.ParseErrModelConfig); -dials a semicolon-separated list of
// chunks,k pairs ("4,2;6,3;8,4"). With -gate the process exits nonzero
// unless the default dial's recall strictly exceeds MAP's without
// exceeding the oracle's — the CI quality gate.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/paper-repo/staccato-go/internal/recallbench"
	"github.com/paper-repo/staccato-go/internal/testgen"
)

type config struct {
	docs    int
	queries int
	seed    int64
	model   string
	dials   string
	deflt   string
	out     string
	gate    bool
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "staccatorecall:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("staccatorecall", flag.ContinueOnError)
	fs.SetOutput(w)
	cfg := config{}
	fs.IntVar(&cfg.docs, "docs", 1000, "corpus size")
	fs.IntVar(&cfg.queries, "queries", 16, "keyword workload size")
	fs.Int64Var(&cfg.seed, "seed", 1, "seed for the corpus and the workload sample")
	fs.StringVar(&cfg.model, "model", "", "error-model spec, key=value comma-separated (empty = defaults)")
	fs.StringVar(&cfg.dials, "dials", "4,2;6,3;8,4", "semicolon-separated chunks,k dial settings to sweep")
	fs.StringVar(&cfg.deflt, "default", "6,3", "the dial the headline number and -gate read")
	fs.StringVar(&cfg.out, "out", "BENCH_recall.json", "artifact path")
	fs.BoolVar(&cfg.gate, "gate", false, "exit nonzero unless MAP < Staccato(default) <= Full")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	rep, err := runBench(w, cfg)
	if err != nil {
		return err
	}
	if cfg.gate && (!rep.GateMAPBeaten || !rep.GateFullBound) {
		return fmt.Errorf("recall gate failed: map=%.4f staccato=%.4f full=%.4f (want map < staccato <= full)",
			rep.MAPRecall, rep.StaccatoRecall, rep.FullRecall)
	}
	return nil
}

// parseDial parses one "chunks,k" pair.
func parseDial(s string) (recallbench.Dial, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 2 {
		return recallbench.Dial{}, fmt.Errorf("bad dial %q (want chunks,k)", s)
	}
	c, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return recallbench.Dial{}, fmt.Errorf("bad dial %q: %v", s, err)
	}
	k, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return recallbench.Dial{}, fmt.Errorf("bad dial %q: %v", s, err)
	}
	if c < 1 || c > 64 || k < 1 || k > 64 {
		return recallbench.Dial{}, fmt.Errorf("dial %q out of range (chunks and k must be in [1, 64])", s)
	}
	return recallbench.Dial{Chunks: c, K: k}, nil
}

func runBench(w io.Writer, cfg config) (*recallbench.Report, error) {
	model, err := testgen.ParseErrModelConfig(cfg.model)
	if err != nil {
		return nil, err
	}
	model.Seed = cfg.seed
	var dials []recallbench.Dial
	for _, s := range strings.Split(cfg.dials, ";") {
		if strings.TrimSpace(s) == "" {
			continue
		}
		d, err := parseDial(s)
		if err != nil {
			return nil, err
		}
		dials = append(dials, d)
	}
	deflt, err := parseDial(cfg.deflt)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	rep, err := recallbench.Run(context.Background(), recallbench.Options{
		Docs:      cfg.docs,
		Model:     model,
		Queries:   cfg.queries,
		QuerySeed: cfg.seed,
		Dials:     dials,
		Default:   deflt,
	})
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "corpus: %d docs, model %s\n", rep.Docs, rep.Model)
	fmt.Fprintf(w, "workload: %d keyword queries\n", len(rep.Queries))
	fmt.Fprintf(w, "%-14s  %-8s  %-8s  %-8s  %-8s\n",
		"setting", "recall", "avgprec", fmt.Sprintf("p@%d", recallbench.PrecisionK), "mrr")
	fmt.Fprintf(w, "%-14s  %-8.4f  %-8s  %-8s  %-8s\n", "MAP", rep.MAPRecall, "-", "-", "-")
	for _, d := range rep.Dials {
		marker := ""
		if (recallbench.Dial{Chunks: d.Chunks, K: d.K}) == rep.DefaultDial {
			marker = " *"
		}
		fmt.Fprintf(w, "%-14s  %-8.4f  %-8.4f  %-8.4f  %-8.4f\n",
			fmt.Sprintf("Staccato(%d,%d)%s", d.Chunks, d.K, marker),
			d.Recall, d.AvgPrecision, d.PrecisionAtK, d.MRR)
	}
	fmt.Fprintf(w, "%-14s  %-8.4f  %-8s  %-8s  %-8s\n", "FullSFST", rep.FullRecall, "-", "-", "-")
	fmt.Fprintf(w, "gates: map_beaten=%v full_bound=%v (%v elapsed)\n",
		rep.GateMAPBeaten, rep.GateFullBound, time.Since(start).Round(time.Millisecond))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "wrote %s\n", cfg.out)
	return rep, nil
}
