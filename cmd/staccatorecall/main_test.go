package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/recallbench"
)

// TestRecallBenchEndToEnd runs the binary's whole pipeline on a tiny
// corpus and checks the artifact parses back into a report whose gates
// hold — the same invariant CI enforces at full scale.
func TestRecallBenchEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_recall.json")
	var sb strings.Builder
	err := run(&sb, []string{
		"-docs", "60", "-queries", "6", "-seed", "3",
		"-model", "words=10", "-dials", "3,2;6,3", "-default", "6,3",
		"-out", out, "-gate",
	})
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep recallbench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
	}
	if rep.Docs != 60 || len(rep.Dials) != 2 {
		t.Fatalf("artifact shape wrong: %+v", rep)
	}
	if !rep.GateMAPBeaten || !rep.GateFullBound {
		t.Fatalf("gates failed on the test corpus: %+v", rep)
	}
	//lint:allow floateq full recall is exactly 1 by construction
	if rep.FullRecall != 1 {
		t.Fatalf("full_recall = %v, want exactly 1", rep.FullRecall)
	}
	if !strings.Contains(sb.String(), "gates: map_beaten=true full_bound=true") {
		t.Errorf("human report missing the gate line:\n%s", sb.String())
	}
}

// TestRecallBenchValidation pins the flag-error surface.
func TestRecallBenchValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-dials", "nope"},
		{"-dials", "3"},
		{"-default", "0,2"},
		{"-default", "3,999"},
		{"-model", "nope=1"},
		{"-model", "subrate=2"},
		{"positional"},
	} {
		var sb strings.Builder
		if err := run(&sb, args); err == nil {
			t.Errorf("args %v ran without error", args)
		}
	}
}
