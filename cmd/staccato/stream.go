package main

import (
	"context"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// ingestStream generates n synthetic documents and ingests them into db
// in batches of batchSize — one durable commit (and one index log
// record) per batch, never more than one batch of documents live at
// once. Returns how many documents were committed.
func ingestStream(ctx context.Context, db *staccatodb.DB, n int, cfg testgen.Config, chunks, k, batchSize int) (int, error) {
	ingested := 0
	batch := make([]*staccato.Doc, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := db.Ingest(ctx, batch); err != nil {
			return err
		}
		ingested += len(batch)
		batch = batch[:0]
		return nil
	}
	err := testgen.EachDoc(n, cfg, chunks, k, func(dc testgen.DocCase) error {
		batch = append(batch, dc.Doc)
		if len(batch) >= batchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return ingested, err
	}
	return ingested, flush()
}
