package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

func TestServePointerSubcommand(t *testing.T) {
	var out bytes.Buffer
	if err := serveMain(&out, nil); err != nil {
		t.Fatalf("staccato serve: %v", err)
	}
	for _, want := range []string{"staccatod -store", "staccato ingest -store"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("serve pointer output missing %q:\n%s", want, out.String())
		}
	}

	// Flags are a sign the user wanted the real server; the pointer must
	// fail loudly and carry the flags over, not half-succeed.
	err := serveMain(io.Discard, []string{"-store", "x"})
	if err == nil || !strings.Contains(err.Error(), "staccatod -store x") {
		t.Errorf("serve with flags: err = %v, want a staccatod handoff error", err)
	}
}

// TestVerboseStatsJSONShape pins the satellite contract: ingest -v,
// index -v, and search -v all print a `stats:` line whose JSON is the
// canonical staccatodb.Stats encoding — the same object the staccatod
// /v1/stats endpoint serves as "db" — with consistent live doc count
// and index persistence.
func TestVerboseStatsJSONShape(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if _, err := runIngest(&out, ingestConfig{
		store: dir, docs: 12, length: 40, seed: 5, chunks: 4, k: 3, batch: 8, verbose: true,
	}); err != nil {
		t.Fatal(err)
	}
	ingestStats := extractStatsLine(t, out.String())

	out.Reset()
	if _, err := runIndex(&out, indexConfig{store: dir, verbose: true}); err != nil {
		t.Fatal(err)
	}
	indexStats := extractStatsLine(t, out.String())

	out.Reset()
	if _, err := runSearch(&out, searchConfig{
		store: dir, top: 3, mode: "substring", combine: "and", verbose: true,
		terms: []string{"a"},
	}); err != nil {
		t.Fatal(err)
	}
	searchStats := extractStatsLine(t, out.String())

	for name, st := range map[string]staccatodb.Stats{
		"ingest": ingestStats, "index": indexStats, "search": searchStats,
	} {
		if st.Docs != 12 {
			t.Errorf("%s -v stats: docs = %d, want 12", name, st.Docs)
		}
		if !st.IndexEnabled || !st.IndexPersisted {
			t.Errorf("%s -v stats: index enabled=%v persisted=%v, want both true", name, st.IndexEnabled, st.IndexPersisted)
		}
	}

	// The printed line must round-trip into the same struct a live DB
	// reports — one shape, not a hand-maintained copy.
	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if live := db.Stats(); live != indexStats {
		t.Errorf("printed stats %+v differ from live db.Stats() %+v", indexStats, live)
	}
}

// extractStatsLine finds the single `stats: {...}` line and decodes its
// JSON into the canonical Stats struct, failing on unknown fields so
// the CLI line cannot drift from the struct's tags.
func extractStatsLine(t *testing.T, output string) staccatodb.Stats {
	t.Helper()
	for _, line := range strings.Split(output, "\n") {
		rest, ok := strings.CutPrefix(line, "stats: ")
		if !ok {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(rest))
		dec.DisallowUnknownFields()
		var st staccatodb.Stats
		if err := dec.Decode(&st); err != nil {
			t.Fatalf("stats line is not canonical Stats JSON: %v\n%s", err, rest)
		}
		return st
	}
	t.Fatalf("no stats: line in output:\n%s", output)
	return staccatodb.Stats{}
}
