package main

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// printStatsJSON emits the database's canonical stats shape as one
// machine-readable line. The shape is staccatodb.Stats's JSON encoding
// — the exact object the staccatod /v1/stats endpoint serves under
// "db" — so scripts can read live doc count and index persistence the
// same way whether they shell out to the CLI or curl the server.
func printStatsJSON(w io.Writer, st staccatodb.Stats) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "stats: %s\n", data)
	return err
}
