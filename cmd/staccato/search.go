package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/fuzzy"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// searchConfig carries everything the search subcommand needs, so tests
// can drive runSearch without a command line. Exactly one of docs
// (synthetic in-memory corpus) and store (persisted database directory)
// selects where the documents come from.
type searchConfig struct {
	docs     int
	store    string
	length   int
	seed     int64
	chunks   int
	k        int
	workers  int
	top      int
	minProb  float64
	mode     string
	fuzzy    int
	lexicon  string
	combine  string
	not      string
	noIndex  bool
	verbose  bool
	snippets int
	context  int
	terms    []string
}

// searchReport captures the deterministic part of a search run.
type searchReport struct {
	query        string
	scanned      int
	pruned       int
	mode         query.ExecMode
	fetched      int
	skipped      int
	earlyStopped bool
	results      []query.Result
	snips        []query.DocSnippets
}

func searchMain(w io.Writer, args []string) error {
	fs := newFlagSet("search", "search [flags] TERM...",
		"run one probabilistic boolean query over a corpus (synthetic via -docs, or persisted via -store)")
	cfg := searchConfig{}
	fs.IntVar(&cfg.docs, "docs", 0, "query a synthetic in-memory corpus of this many documents")
	fs.StringVar(&cfg.store, "store", "", "query the database previously built by staccato ingest")
	fs.IntVar(&cfg.length, "len", 60, "ground truth length of each document")
	fs.Int64Var(&cfg.seed, "seed", 1, "PRNG seed for the corpus")
	fs.IntVar(&cfg.chunks, "chunks", 6, "chunks per document (the dial's first knob)")
	fs.IntVar(&cfg.k, "k", 3, "paths kept per chunk (the dial's second knob)")
	fs.IntVar(&cfg.workers, "workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.top, "top", 10, "keep only the N best-ranked documents (0 = all)")
	fs.Float64Var(&cfg.minProb, "minprob", 0, "drop documents below this probability")
	fs.StringVar(&cfg.mode, "mode", "substring", "term mode: substring or keyword")
	fs.IntVar(&cfg.fuzzy, "fuzzy", 0, "match terms within this edit distance (1 or 2; 0 = exact)")
	fs.StringVar(&cfg.lexicon, "lexicon", "", "re-weight readings toward dictionary words: a wordlist file, or vocab:N for the built-in synthetic vocabulary")
	fs.StringVar(&cfg.combine, "combine", "and", "combine multiple terms with: and or or")
	fs.StringVar(&cfg.not, "not", "", "additionally require this term to be absent")
	fs.BoolVar(&cfg.noIndex, "noindex", false, "skip the inverted index and scan every document")
	fs.IntVar(&cfg.snippets, "snippets", 0, "print up to N top matching readings per result, with term positions")
	fs.IntVar(&cfg.context, "context", 0, "with -snippets, include N runes of surrounding text around each match")
	fs.BoolVar(&cfg.verbose, "v", false, "print the pruning plan and per-run planner stats")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}
	cfg.terms = fs.Args()
	// flag.Parse stops at the first positional, so a flag placed after a
	// term would silently become a query term; reject the obvious case.
	for _, term := range cfg.terms {
		if strings.HasPrefix(term, "-") {
			return fmt.Errorf("search: term %q looks like a flag; place flags before the first term", term)
		}
	}
	// The corpus-shape flags only parameterize the synthetic -docs corpus;
	// with -store they would be silently ignored, so reject them loudly.
	if cfg.store != "" {
		var stray []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "len", "seed", "chunks", "k":
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			return fmt.Errorf("search: %s: this flag shapes only the synthetic -docs corpus; a -store corpus is already built (re-run ingest to change it)",
				strings.Join(stray, " "))
		}
	}
	_, err := runSearch(w, cfg)
	return err
}

// buildQuery compiles the CLI's term list into one boolean Query.
func buildQuery(cfg searchConfig) (*query.Query, error) {
	if cfg.fuzzy < 0 {
		return nil, fmt.Errorf("search: -fuzzy %d: edit distance cannot be negative", cfg.fuzzy)
	}
	if cfg.fuzzy > 0 && cfg.mode != "substring" {
		return nil, fmt.Errorf("search: -fuzzy replaces the term mode; drop -mode %s", cfg.mode)
	}
	leafFor := func(term string) (*query.Query, error) {
		if cfg.fuzzy > 0 {
			return query.Fuzzy(term, cfg.fuzzy)
		}
		switch cfg.mode {
		case "substring":
			return query.Substring(term)
		case "keyword":
			return query.Keyword(term)
		default:
			return nil, fmt.Errorf("search: unknown -mode %q (want substring or keyword, or use -fuzzy)", cfg.mode)
		}
	}
	if len(cfg.terms) == 0 {
		return nil, fmt.Errorf("search: at least one query term is required")
	}
	leaves := make([]*query.Query, len(cfg.terms))
	for i, term := range cfg.terms {
		q, err := leafFor(term)
		if err != nil {
			return nil, err
		}
		leaves[i] = q
	}
	var q *query.Query
	switch cfg.combine {
	case "and":
		q = query.And(leaves[0], leaves[1:]...)
	case "or":
		q = query.Or(leaves[0], leaves[1:]...)
	default:
		return nil, fmt.Errorf("search: unknown -combine %q (want and or or)", cfg.combine)
	}
	if cfg.not != "" {
		neg, err := leafFor(cfg.not)
		if err != nil {
			return nil, err
		}
		q = query.And(q, query.Not(neg))
	}
	return q, nil
}

// loadLexicon resolves the -lexicon flag into a rescoring dictionary:
// either a newline-separated wordlist file, or "vocab:N" for the first N
// words of the built-in synthetic error-model vocabulary — the exact
// dictionary a -docs corpus was generated from.
func loadLexicon(spec string) (*fuzzy.Lexicon, error) {
	if n, ok := strings.CutPrefix(spec, "vocab:"); ok {
		size, err := strconv.Atoi(n)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("search: -lexicon vocab:N needs a positive word count, got %q", n)
		}
		return fuzzy.NewLexicon(testgen.Vocab(size)), nil
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, fmt.Errorf("search: -lexicon: %w", err)
	}
	defer f.Close()
	lex, err := fuzzy.ReadLexicon(f)
	if err != nil {
		return nil, fmt.Errorf("search: -lexicon %s: %w", spec, err)
	}
	return lex, nil
}

// openCorpus resolves cfg's corpus source into a staccatodb.DB: a
// synthetic in-memory database built on the fly (-docs) or a persisted
// one (-store). It returns the database and its document count.
func openCorpus(w io.Writer, ctx context.Context, cfg searchConfig) (*staccatodb.DB, int, error) {
	var opts []staccatodb.Option
	if cfg.workers != 0 {
		opts = append(opts, staccatodb.WithWorkers(cfg.workers))
	}
	if cfg.noIndex {
		opts = append(opts, staccatodb.WithoutIndex())
	}
	switch {
	case cfg.docs > 0 && cfg.store != "":
		return nil, 0, fmt.Errorf("search: -docs and -store are mutually exclusive; pick one corpus source")
	case cfg.docs <= 0 && cfg.store == "":
		return nil, 0, fmt.Errorf("search: no corpus given; use -docs N for a synthetic corpus or -store DIR for an ingested one")
	case cfg.store != "":
		// Open would initialize a fresh store on any path; a typo'd -store
		// must be an error, not an empty corpus plus junk files on disk.
		if _, err := os.Stat(filepath.Join(cfg.store, "MANIFEST")); err != nil {
			return nil, 0, fmt.Errorf("search: no store at %s (%w); run staccato ingest -store first", cfg.store, err)
		}
		openStart := time.Now()
		db, err := staccatodb.Open(cfg.store, opts...)
		if err != nil {
			return nil, 0, err
		}
		stats := db.Stats()
		fmt.Fprintf(w, "corpus: %d docs from %s (%d segments, %.1f KiB) opened in %v\n",
			stats.Docs, cfg.store, stats.Segments, float64(stats.DiskBytes)/1024,
			time.Since(openStart).Round(time.Millisecond))
		return db, stats.Docs, nil
	default:
		ingestStart := time.Now()
		db, err := staccatodb.OpenMem(opts...)
		if err != nil {
			return nil, 0, err
		}
		// Ingest in bounded batches so a huge -docs corpus never holds
		// every document live at once on top of the store's copies.
		const memBatch = 256
		_, err = ingestStream(ctx, db, cfg.docs,
			testgen.Config{Length: cfg.length, Seed: cfg.seed}, cfg.chunks, cfg.k, memBatch)
		if err != nil {
			db.Close()
			return nil, 0, err
		}
		n := db.Stats().Docs
		fmt.Fprintf(w, "corpus: %d docs (len=%d chunks=%d k=%d) ingested in %v\n",
			n, cfg.length, cfg.chunks, cfg.k, time.Since(ingestStart).Round(time.Millisecond))
		return db, n, nil
	}
}

// runSearch opens the corpus, runs one compiled query through the planner
// and the parallel engine, and prints the ranked matches.
func runSearch(w io.Writer, cfg searchConfig) (searchReport, error) {
	var rep searchReport
	q, err := buildQuery(cfg)
	if err != nil {
		return rep, err
	}
	rep.query = q.String()
	ctx := context.Background()

	db, docCount, err := openCorpus(w, ctx, cfg)
	if err != nil {
		return rep, err
	}
	defer db.Close()
	rep.scanned = docCount
	fmt.Fprintf(w, "query: %s\n", rep.query)
	if cfg.verbose {
		if err := printStatsJSON(w, db.Stats()); err != nil {
			return rep, err
		}
		fmt.Fprintln(w, db.Explain(q))
	}

	searchStart := time.Now()
	sopts := query.SearchOptions{MinProb: cfg.minProb, TopN: cfg.top}
	if cfg.lexicon != "" {
		lex, err := loadLexicon(cfg.lexicon)
		if err != nil {
			return rep, err
		}
		sopts.Rescore = lex.Rescorer(fuzzy.DefaultBoost)
		if cfg.verbose {
			fmt.Fprintf(w, "lexicon: %d words, boost=%g\n", lex.Len(), fuzzy.DefaultBoost)
		}
	}
	var results []query.Result
	var stats query.SearchStats
	if cfg.snippets > 0 {
		// Snippets ride on the same Search; each DocSnippets carries the
		// Result's DocID and probability, so the ranked list is recovered
		// without a second pass.
		rep.snips, stats, err = db.Snippets(ctx, q, sopts,
			query.SnippetOptions{MaxReadings: cfg.snippets, ContextRunes: cfg.context})
		if err != nil {
			return rep, err
		}
		results = make([]query.Result, len(rep.snips))
		for i, sn := range rep.snips {
			results[i] = query.Result{DocID: sn.DocID, Prob: sn.Prob}
		}
	} else {
		results, stats, err = db.Search(ctx, q, sopts)
		if err != nil {
			return rep, err
		}
	}
	rep.results = results
	rep.pruned = stats.DocsPruned
	rep.mode = stats.Mode
	rep.fetched = stats.CandidatesFetched
	rep.skipped = stats.BoundsSkipped
	rep.earlyStopped = stats.EarlyStopped
	elapsed := time.Since(searchStart)
	fmt.Fprintf(w, "engine: elapsed=%v", elapsed.Round(time.Microsecond))
	if elapsed > 0 {
		fmt.Fprintf(w, " (%.0f docs/s)", float64(rep.scanned)/elapsed.Seconds())
	}
	fmt.Fprintln(w)
	if cfg.verbose {
		fmt.Fprintf(w, "planner: mode=%s, %d evaluated, %d pruned of %d docs (candidates fetched: %d, index used: %v, %d grams)\n",
			stats.Mode, stats.DocsScanned, stats.DocsPruned, stats.DocsTotal,
			stats.CandidatesFetched, stats.IndexUsed, stats.PlanGrams)
		if stats.Mode == query.ExecTopK {
			fmt.Fprintf(w, "top-k: early_stopped=%v, bounds_skipped=%d, candidates_deleted=%d\n",
				stats.EarlyStopped, stats.BoundsSkipped, stats.CandidatesDeleted)
		}
	}

	if len(rep.results) == 0 {
		fmt.Fprintln(w, "no documents matched")
		return rep, nil
	}
	fmt.Fprintf(w, "%4s  %-8s  %s\n", "rank", "prob", "doc")
	for i, r := range rep.results {
		fmt.Fprintf(w, "%4d  %-8.4f  %s\n", i+1, r.Prob, r.DocID)
		if cfg.snippets > 0 {
			printSnippets(w, rep.snips[i])
		}
	}
	return rep, nil
}

// printSnippets renders one document's matching readings under its
// result row: per-reading probability, the reading text, and every term
// occurrence as term@byteStart-byteEnd.
func printSnippets(w io.Writer, sn query.DocSnippets) {
	for _, rd := range sn.Readings {
		fmt.Fprintf(w, "      p=%-8.4f %q", rd.Prob, rd.Text)
		for _, sp := range rd.Spans {
			fmt.Fprintf(w, "  %s@%d-%d", sp.Term, sp.Start, sp.End)
			if sp.Context != "" {
				fmt.Fprintf(w, " (…%s…)", sp.Context)
			}
		}
		fmt.Fprintln(w)
	}
	if sn.Truncated {
		fmt.Fprintln(w, "      (enumeration budget hit before all requested readings were found)")
	}
}
