package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// searchConfig carries everything the search subcommand needs, so tests
// can drive runSearch without a command line.
type searchConfig struct {
	docs    int
	length  int
	seed    int64
	chunks  int
	k       int
	workers int
	top     int
	minProb float64
	mode    string
	combine string
	not     string
	terms   []string
}

// searchReport captures the deterministic part of a search run.
type searchReport struct {
	query   string
	scanned int
	results []query.Result
}

func searchMain(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	cfg := searchConfig{}
	fs.IntVar(&cfg.docs, "docs", 100, "number of synthetic documents to ingest")
	fs.IntVar(&cfg.length, "len", 60, "ground truth length of each document")
	fs.Int64Var(&cfg.seed, "seed", 1, "PRNG seed for the corpus")
	fs.IntVar(&cfg.chunks, "chunks", 6, "chunks per document (the dial's first knob)")
	fs.IntVar(&cfg.k, "k", 3, "paths kept per chunk (the dial's second knob)")
	fs.IntVar(&cfg.workers, "workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.top, "top", 10, "keep only the N best-ranked documents (0 = all)")
	fs.Float64Var(&cfg.minProb, "minprob", 0, "drop documents below this probability")
	fs.StringVar(&cfg.mode, "mode", "substring", "term mode: substring or keyword")
	fs.StringVar(&cfg.combine, "combine", "and", "combine multiple terms with: and or or")
	fs.StringVar(&cfg.not, "not", "", "additionally require this term to be absent")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}
	cfg.terms = fs.Args()
	// flag.Parse stops at the first positional, so a flag placed after a
	// term would silently become a query term; reject the obvious case.
	for _, term := range cfg.terms {
		if strings.HasPrefix(term, "-") {
			return fmt.Errorf("search: term %q looks like a flag; place flags before the first term", term)
		}
	}
	_, err := runSearch(w, cfg)
	return err
}

// buildQuery compiles the CLI's term list into one boolean Query.
func buildQuery(cfg searchConfig) (*query.Query, error) {
	leafFor := func(term string) (*query.Query, error) {
		switch cfg.mode {
		case "substring":
			return query.Substring(term)
		case "keyword":
			return query.Keyword(term)
		default:
			return nil, fmt.Errorf("search: unknown -mode %q (want substring or keyword)", cfg.mode)
		}
	}
	if len(cfg.terms) == 0 {
		return nil, fmt.Errorf("search: at least one query term is required")
	}
	leaves := make([]*query.Query, len(cfg.terms))
	for i, term := range cfg.terms {
		q, err := leafFor(term)
		if err != nil {
			return nil, err
		}
		leaves[i] = q
	}
	var q *query.Query
	switch cfg.combine {
	case "and":
		q = query.And(leaves[0], leaves[1:]...)
	case "or":
		q = query.Or(leaves[0], leaves[1:]...)
	default:
		return nil, fmt.Errorf("search: unknown -combine %q (want and or or)", cfg.combine)
	}
	if cfg.not != "" {
		neg, err := leafFor(cfg.not)
		if err != nil {
			return nil, err
		}
		q = query.And(q, query.Not(neg))
	}
	return q, nil
}

// runSearch ingests the synthetic corpus, runs one compiled query through
// the parallel engine, and prints the ranked matches.
func runSearch(w io.Writer, cfg searchConfig) (searchReport, error) {
	var rep searchReport
	q, err := buildQuery(cfg)
	if err != nil {
		return rep, err
	}
	rep.query = q.String()
	ctx := context.Background()

	ingestStart := time.Now()
	cases, err := testgen.Docs(cfg.docs, testgen.Config{Length: cfg.length, Seed: cfg.seed}, cfg.chunks, cfg.k)
	if err != nil {
		return rep, err
	}
	st := store.NewMemStore()
	for _, c := range cases {
		if err := st.Put(ctx, c.Doc); err != nil {
			return rep, err
		}
	}
	rep.scanned = st.Len()
	fmt.Fprintf(w, "corpus: %d docs (len=%d chunks=%d k=%d) ingested in %v\n",
		st.Len(), cfg.length, cfg.chunks, cfg.k, time.Since(ingestStart).Round(time.Millisecond))
	fmt.Fprintf(w, "query: %s\n", rep.query)

	eng := query.NewEngine(st, query.EngineOptions{Workers: cfg.workers})
	searchStart := time.Now()
	rep.results, err = eng.Search(ctx, q, query.SearchOptions{MinProb: cfg.minProb, TopN: cfg.top})
	if err != nil {
		return rep, err
	}
	elapsed := time.Since(searchStart)
	fmt.Fprintf(w, "engine: workers=%d elapsed=%v", eng.Workers(), elapsed.Round(time.Microsecond))
	if elapsed > 0 {
		fmt.Fprintf(w, " (%.0f docs/s)", float64(rep.scanned)/elapsed.Seconds())
	}
	fmt.Fprintln(w)

	if len(rep.results) == 0 {
		fmt.Fprintln(w, "no documents matched")
		return rep, nil
	}
	fmt.Fprintf(w, "%4s  %-8s  %s\n", "rank", "prob", "doc")
	for i, r := range rep.results {
		fmt.Fprintf(w, "%4d  %-8.4f  %s\n", i+1, r.Prob, r.DocID)
	}
	return rep, nil
}
