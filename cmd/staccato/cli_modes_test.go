package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
)

// TestSearchVerboseModeStatsEndToEnd is the CLI acceptance scenario for
// candidate-restricted execution: ingest → search -v on a temp-dir
// store. A selective query with a -top limit must report mode=top-k
// (the bound-driven path Search auto-selects) with candidates fetched ≪
// corpus; -noindex must report mode=scan with identical results; and
// after the index log is deleted, `staccato index` must rebuild it and
// the same search must again run top-k with byte-identical output.
func TestSearchVerboseModeStatsEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	icfg := ingestConfig{store: dir, docs: 40, length: 40, seed: 19, chunks: 5, k: 3, batch: 9}
	if _, err := runIngest(&strings.Builder{}, icfg); err != nil {
		t.Fatal(err)
	}
	cases, err := testgen.Docs(icfg.docs, testgen.Config{Length: icfg.length, Seed: icfg.seed}, icfg.chunks, icfg.k)
	if err != nil {
		t.Fatal(err)
	}
	scfg := searchConfig{
		store: dir, workers: 2, top: 10, mode: "substring", combine: "and",
		verbose: true, terms: []string{cases[21].Doc.MAP()[8:15]},
	}

	var out strings.Builder
	rep, err := runSearch(&out, scfg)
	if err != nil {
		t.Fatalf("runSearch: %v\noutput:\n%s", err, out.String())
	}
	if rep.mode != query.ExecTopK {
		t.Fatalf("selective indexed search with -top ran mode=%q, want %q\noutput:\n%s",
			rep.mode, query.ExecTopK, out.String())
	}
	if rep.fetched == 0 || rep.fetched >= icfg.docs/2 {
		t.Fatalf("candidates fetched = %d, want selective (0 < fetched ≪ %d)", rep.fetched, icfg.docs)
	}
	if rep.fetched+rep.skipped+rep.pruned != icfg.docs {
		t.Fatalf("fetched %d + skipped %d + pruned %d != corpus %d",
			rep.fetched, rep.skipped, rep.pruned, icfg.docs)
	}
	for _, want := range []string{"mode=top-k", "early_stopped=", "bounds_skipped=", "candidates fetched:", "plan:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-v output missing %q:\n%s", want, out.String())
		}
	}

	// The same query with the index off: mode=scan, identical results.
	scanCfg := scfg
	scanCfg.noIndex = true
	var scanOut strings.Builder
	scanRep, err := runSearch(&scanOut, scanCfg)
	if err != nil {
		t.Fatal(err)
	}
	if scanRep.mode != query.ExecScan || scanRep.fetched != 0 {
		t.Fatalf("-noindex search: mode=%q fetched=%d, want %q/0", scanRep.mode, scanRep.fetched, query.ExecScan)
	}
	if !strings.Contains(scanOut.String(), "mode=scan") {
		t.Errorf("-noindex -v output missing mode=scan:\n%s", scanOut.String())
	}
	if !reflect.DeepEqual(scanRep.results, rep.results) {
		t.Fatalf("scan results differ from candidate-only results:\n scan %+v\n cand %+v", scanRep.results, rep.results)
	}

	// Delete the index log, rebuild through the index subcommand, and
	// re-run: candidate-only again, byte-identical again.
	if err := os.Remove(filepath.Join(dir, "INDEX")); err != nil {
		t.Fatal(err)
	}
	var xout strings.Builder
	xrep, err := runIndex(&xout, indexConfig{store: dir})
	if err != nil {
		t.Fatalf("runIndex: %v\noutput:\n%s", err, xout.String())
	}
	if xrep.stats.IndexDocs != icfg.docs {
		t.Fatalf("rebuilt index covers %d docs, want %d", xrep.stats.IndexDocs, icfg.docs)
	}
	var out2 strings.Builder
	rep2, err := runSearch(&out2, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.mode != query.ExecTopK || !reflect.DeepEqual(rep2, rep) {
		t.Fatalf("post-rebuild search differs:\n before %+v\n after  %+v\noutput:\n%s", rep, rep2, out2.String())
	}

	// Through the real command line too: the -v flag must reach the
	// planner stats printer.
	var flagOut strings.Builder
	if err := searchMain(&flagOut, []string{"-store", dir, "-v", "-top", "10", scfg.terms[0]}); err != nil {
		t.Fatalf("searchMain: %v", err)
	}
	if !strings.Contains(flagOut.String(), "mode=top-k") {
		t.Errorf("searchMain -v output missing mode line:\n%s", flagOut.String())
	}
}
