// Command staccato demonstrates the Staccato pipeline. It has four
// subcommands, plus a pointer to the companion server binary:
//
//	staccato demo [flags]            single-document walkthrough (default)
//	staccato ingest -store DIR       persist a synthetic corpus into a database
//	staccato search [flags] TERM...  planner-pruned corpus search
//	staccato index -store DIR        (re)build a database's inverted index
//	staccato serve                   how to serve a database over HTTP (staccatod)
//
// demo generates one synthetic OCR transducer, builds approximated
// documents at a chosen dial setting, persists them through a DocStore,
// and runs probabilistic queries — showing recall beyond the MAP string,
// the paper's headline result:
//
//	staccato demo [-seed N] [-len N] [-chunks N] [-k N] [-term STRING] [-v]
//
// With no -term, the demo searches for a ground-truth substring that the
// MAP string lost and reports the probability Staccato recovers for it.
//
// ingest streams a synthetic corpus into a durable staccatodb database,
// batching many documents per fsync and maintaining the inverted index
// alongside every commit (unless -noindex):
//
//	staccato ingest -store DIR [-docs N] [-len N] [-seed N] [-chunks N]
//	                [-k N] [-batch N] [-compact] [-nosync] [-noindex]
//
// search runs one compiled boolean query against a corpus through the
// pruning planner and the worker-pool engine, printing the ranked
// matches; -fuzzy D matches terms up to edit distance D (1 or 2) via
// Levenshtein-automaton leaves; -lexicon re-weights each document's
// readings toward dictionary words before ranking; -snippets N
// additionally prints each match's top N readings that contain the
// query terms, with per-reading probabilities and term positions
// (-context R adds R runes of surrounding text per match); -v also
// prints the pruning plan and how many documents the index let the
// engine skip. The corpus is either synthetic and in-memory (-docs) or
// a directory previously written by ingest (-store); exactly one must
// be given:
//
//	staccato search {-docs N | -store DIR} [-workers N] [-top N]
//	                [-minprob P] [-mode substring|keyword] [-fuzzy D]
//	                [-lexicon FILE|vocab:N] [-snippets N] [-context R]
//	                [-combine and|or] [-not TERM] [-noindex] [-v] TERM...
//
// index brings the inverted index of an existing database directory up
// to date, rebuilding from a full scan when it is missing, damaged, or
// stale — the recovery tool for stores ingested with -noindex:
//
//	staccato index -store DIR
//
// Serving a database over the network is the companion binary's job:
// staccatod exposes the same database directory over HTTP/JSON for
// sustained concurrent traffic. `staccato serve` prints the handoff:
//
//	staccato ingest -store DIR        # build the corpus
//	staccatod -store DIR -addr :8417  # serve it
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

type config struct {
	seed    int64
	length  int
	chunks  int
	k       int
	term    string
	termLen int
	verbose bool
}

// report captures the demo's outcome for both printing and testing.
type report struct {
	truth     string
	mapString string
	term      string
	probMAP   float64
	probStac  float64
	probExact float64
}

// errFlagParse marks a command line the FlagSet already reported (with
// usage) on stderr; main must not print it a second time.
var errFlagParse = errors.New("invalid command line")

// newFlagSet builds a subcommand FlagSet whose -h/usage output follows
// one shape for every subcommand: a usage line, a one-sentence synopsis,
// then the flag table.
func newFlagSet(name, usage, synopsis string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: staccato %s\n  %s\n", usage, synopsis)
		fs.PrintDefaults()
	}
	return fs
}

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "search":
		err = searchMain(os.Stdout, args[1:])
	case len(args) > 0 && args[0] == "ingest":
		err = ingestMain(os.Stdout, args[1:])
	case len(args) > 0 && args[0] == "index":
		err = indexMain(os.Stdout, args[1:])
	case len(args) > 0 && args[0] == "demo":
		err = demoMain(os.Stdout, args[1:])
	case len(args) > 0 && args[0] == "serve":
		err = serveMain(os.Stdout, args[1:])
	default:
		// No subcommand: keep the historical behavior of running the demo.
		err = demoMain(os.Stdout, args)
	}
	if errors.Is(err, errFlagParse) {
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "staccato:", err)
		os.Exit(1)
	}
}

func demoMain(w io.Writer, args []string) error {
	fs := newFlagSet("demo", "[demo] [flags]",
		"single-document walkthrough: build, approximate, store, and query one synthetic OCR document")
	cfg := config{}
	fs.Int64Var(&cfg.seed, "seed", 42, "PRNG seed for the synthetic document")
	fs.IntVar(&cfg.length, "len", 200, "ground truth length in characters")
	fs.IntVar(&cfg.chunks, "chunks", 10, "number of chunks (the Staccato dial's first knob)")
	fs.IntVar(&cfg.k, "k", 4, "paths kept per chunk (the dial's second knob)")
	fs.StringVar(&cfg.term, "term", "", "query term (default: search for a term MAP lost)")
	fs.IntVar(&cfg.termLen, "termlen", 4, "length of auto-searched terms")
	fs.BoolVar(&cfg.verbose, "v", false, "print the full truth and MAP strings")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}
	// The demo takes no positional arguments; rejecting them catches a
	// mistyped subcommand before it silently runs the default demo.
	if fs.NArg() > 0 {
		return fmt.Errorf("demo: unexpected argument %q (subcommands are demo, ingest, index, search, and serve)", fs.Arg(0))
	}
	_, err := run(w, cfg)
	return err
}

func run(w io.Writer, cfg config) (report, error) {
	var rep report
	ctx := context.Background()

	// Ingest: synthesize the OCR transducer.
	truth, f, err := testgen.Generate(testgen.Config{Length: cfg.length, Seed: cfg.seed})
	if err != nil {
		return rep, err
	}
	rep.truth = truth
	vit := f.Viterbi()
	rep.mapString = vit.Output

	fmt.Fprintf(w, "ingested SFST: %d states, %d arcs, ~%.3g distinct readings\n",
		f.NumStates(), f.NumArcs(), f.NumPaths())
	fmt.Fprintf(w, "MAP string prob: %.3g, edit distance to truth: %d of %d chars\n",
		vit.Prob, editDistance(truth, vit.Output), len(truth))

	// Approximate: one doc at the requested dial, one at the MAP extreme.
	doc, err := staccato.Build(f, "doc-0001", cfg.chunks, cfg.k)
	if err != nil {
		return rep, err
	}
	mapDoc, err := staccato.Build(f, "doc-0001.map", staccato.MaxChunks, 1)
	if err != nil {
		return rep, err
	}

	// Persist and read back through the DocStore, so the demo exercises
	// the same path a real backend will.
	st := store.NewMemStore()
	if err := st.Put(ctx, doc); err != nil {
		return rep, err
	}
	if err := st.Put(ctx, mapDoc); err != nil {
		return rep, err
	}
	if doc, err = st.Get(ctx, "doc-0001"); err != nil {
		return rep, err
	}
	if mapDoc, err = st.Get(ctx, "doc-0001.map"); err != nil {
		return rep, err
	}
	fmt.Fprintf(w, "staccato doc: chunks=%d k=%d, retained mass per chunk min=%.3f\n",
		doc.Params.Chunks, doc.Params.K, minRetained(doc))

	// Query: either the user's term, or hunt for ground truth that the
	// MAP string lost but Staccato still finds.
	term := cfg.term
	if term == "" {
		for n := cfg.termLen; n >= 2 && term == ""; n-- {
			term = findLostTerm(truth, rep.mapString, doc, n)
		}
		if term == "" {
			return rep, fmt.Errorf("no ground-truth n-gram was lost by MAP yet recovered by Staccato; try another seed or a higher -k")
		}
	}
	rep.term = term

	// One compiled query serves every evaluation of the term. probMAP
	// comes from the stored MAP-extreme doc: a degenerate distribution,
	// so the probability is exactly 0 or 1.
	tq, err := query.Substring(term)
	if err != nil {
		return rep, err
	}
	rep.probMAP = tq.Eval(mapDoc)
	rep.probStac = tq.Eval(doc)
	if rep.probExact, err = tq.EvalFST(f); err != nil {
		return rep, err
	}

	if cfg.verbose {
		fmt.Fprintf(w, "truth: %s\n", truth)
		fmt.Fprintf(w, "MAP:   %s\n", rep.mapString)
	}
	fmt.Fprintf(w, "query %q (in truth: %v)\n", term, strings.Contains(truth, term))
	fmt.Fprintf(w, "  P[match | MAP string]   = %.4f\n", rep.probMAP)
	fmt.Fprintf(w, "  P[match | staccato doc] = %.4f\n", rep.probStac)
	fmt.Fprintf(w, "  P[match | full SFST]    = %.4f\n", rep.probExact)
	//lint:allow floateq exact zero is the "MAP string has no match at all" display condition for the demo; near-zero MAP probability is a different (and interesting) outcome
	if rep.probMAP == 0 && rep.probStac > 0 {
		fmt.Fprintf(w, "staccato recovered a reading the MAP string lost\n")
	}
	return rep, nil
}

// findLostTerm scans the ground-truth n-grams absent from the MAP string
// and returns the one Staccato assigns the highest probability, or "" if
// none has positive probability.
func findLostTerm(truth, mapStr string, doc *staccato.Doc, n int) string {
	seen := map[string]bool{}
	best, bestProb := "", 0.0
	for i := 0; i+n <= len(truth); i++ {
		t := truth[i : i+n]
		if seen[t] || strings.Contains(mapStr, t) {
			continue
		}
		seen[t] = true
		q, err := query.Substring(t)
		if err != nil {
			continue
		}
		if p := q.Eval(doc); p > bestProb {
			best, bestProb = t, p
		}
	}
	return best
}

// editDistance is plain Levenshtein distance; positional comparison would
// wildly overstate MAP divergence whenever a deletion or split shifts the
// rest of the string.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minRetained(d *staccato.Doc) float64 {
	min := 1.0
	for _, c := range d.Chunks {
		if c.Retained < min {
			min = c.Retained
		}
	}
	return min
}
