package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// indexConfig carries everything the index subcommand needs, so tests can
// drive runIndex without a command line.
type indexConfig struct {
	store   string
	verbose bool
}

// indexReport captures the deterministic part of an index run.
type indexReport struct {
	stats staccatodb.Stats
}

func indexMain(w io.Writer, args []string) error {
	fs := newFlagSet("index", "index -store DIR",
		"(re)build the inverted q-gram index for an existing database directory")
	cfg := indexConfig{}
	fs.StringVar(&cfg.store, "store", "", "directory of the database to index (required)")
	fs.BoolVar(&cfg.verbose, "v", false, "also print the database stats as one JSON line (the /v1/stats \"db\" shape)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("index: unexpected argument %q (index takes only flags)", fs.Arg(0))
	}
	_, err := runIndex(w, cfg)
	return err
}

// runIndex opens the database with the index enabled, which is itself
// the rebuild: Open loads a fresh index log, and rebuilds from a full
// scan whenever the log is missing, torn, stale, or at a different gram
// size — exactly the states this subcommand exists to recover from
// (stores ingested with -noindex, damaged index files). No forced
// second rebuild: a fresh index is already the desired end state.
func runIndex(w io.Writer, cfg indexConfig) (indexReport, error) {
	var rep indexReport
	if cfg.store == "" {
		return rep, fmt.Errorf("index: -store DIR is required")
	}
	if _, err := os.Stat(filepath.Join(cfg.store, "MANIFEST")); err != nil {
		return rep, fmt.Errorf("index: no store at %s (%w); run staccato ingest -store first", cfg.store, err)
	}
	start := time.Now()
	db, err := staccatodb.Open(cfg.store)
	if err != nil {
		return rep, err
	}
	defer db.Close()
	rep.stats = db.Stats()
	if !rep.stats.IndexPersisted {
		return rep, fmt.Errorf("index: built for %d docs but could not be persisted to %s (read-only directory or full disk?)",
			rep.stats.IndexDocs, cfg.store)
	}
	fmt.Fprintf(w, "indexed %d docs (%d distinct grams, %d overflow) in %s in %v\n",
		rep.stats.IndexDocs, rep.stats.IndexGrams, rep.stats.IndexOverflowDocs,
		cfg.store, time.Since(start).Round(time.Millisecond))
	if cfg.verbose {
		if err := printStatsJSON(w, rep.stats); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
