package main

import (
	"fmt"
	"io"
	"strings"
)

// serveMain is a doc pointer, not an embedded server: serving is the
// staccatod binary's job (long-running process, signal handling, its
// own flag surface), and embedding a second copy here would fork the
// two configurations. This subcommand exists so `staccato serve` — the
// obvious guess — lands on the handoff instead of an unknown-command
// error.
func serveMain(w io.Writer, args []string) error {
	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		args = args[1:]
	}
	fmt.Fprint(w, `serving is the staccatod binary's job; staccato serve only points the way:

  staccato ingest -store DIR        # build a corpus (this binary)
  staccatod -store DIR -addr :8417  # serve it over HTTP/JSON

staccatod shares the database directory and the stats JSON shape with
this CLI; run staccatod -h for its flags (admission limits, request
timeouts, query cache size, drain behavior).
`)
	if len(args) > 0 {
		return fmt.Errorf("serve: flags belong to staccatod; try: staccatod %s", strings.Join(args, " "))
	}
	return nil
}
