package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"time"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// ingestConfig carries everything the ingest subcommand needs, so tests
// can drive runIngest without a command line.
type ingestConfig struct {
	store   string
	docs    int
	length  int
	seed    int64
	chunks  int
	k       int
	batch   int
	compact bool
	noSync  bool
	noIndex bool
	verbose bool
}

// ingestReport captures the deterministic part of an ingest run.
type ingestReport struct {
	ingested int
	stats    staccatodb.Stats
}

func ingestMain(w io.Writer, args []string) error {
	fs := newFlagSet("ingest", "ingest -store DIR [flags]",
		"generate a synthetic OCR corpus and persist it into a staccato database")
	cfg := ingestConfig{}
	fs.StringVar(&cfg.store, "store", "", "directory of the database to ingest into (required)")
	fs.IntVar(&cfg.docs, "docs", 1000, "number of synthetic documents to ingest")
	fs.IntVar(&cfg.length, "len", 60, "ground truth length of each document")
	fs.Int64Var(&cfg.seed, "seed", 1, "PRNG seed for the corpus")
	fs.IntVar(&cfg.chunks, "chunks", 6, "chunks per document (the dial's first knob)")
	fs.IntVar(&cfg.k, "k", 3, "paths kept per chunk (the dial's second knob)")
	fs.IntVar(&cfg.batch, "batch", 256, "documents committed (and fsynced) per write batch")
	fs.BoolVar(&cfg.compact, "compact", false, "compact the store after ingesting")
	fs.BoolVar(&cfg.noSync, "nosync", false, "skip fsync on commit (faster; an OS crash may lose recent batches)")
	fs.BoolVar(&cfg.noIndex, "noindex", false, "do not build or maintain the inverted index (searches will scan; build later with staccato index)")
	fs.BoolVar(&cfg.verbose, "v", false, "also print the database stats as one JSON line (the /v1/stats \"db\" shape)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("ingest: unexpected argument %q (ingest takes only flags)", fs.Arg(0))
	}
	_, err := runIngest(w, cfg)
	return err
}

// runIngest streams the synthetic corpus into the database, committing
// one batch — one fsync, one index log record — per cfg.batch documents.
func runIngest(w io.Writer, cfg ingestConfig) (ingestReport, error) {
	var rep ingestReport
	if cfg.store == "" {
		return rep, fmt.Errorf("ingest: -store DIR is required")
	}
	if cfg.docs < 1 {
		return rep, fmt.Errorf("ingest: -docs must be >= 1, got %d", cfg.docs)
	}
	if cfg.batch < 1 {
		return rep, fmt.Errorf("ingest: -batch must be >= 1, got %d", cfg.batch)
	}
	ctx := context.Background()

	opts := []staccatodb.Option{}
	if cfg.noSync {
		opts = append(opts, staccatodb.WithNoSync())
	}
	if cfg.noIndex {
		opts = append(opts, staccatodb.WithoutIndex())
	}
	db, err := staccatodb.Open(cfg.store, opts...)
	if err != nil {
		return rep, err
	}
	defer db.Close()

	start := time.Now()
	rep.ingested, err = ingestStream(ctx, db, cfg.docs,
		testgen.Config{Length: cfg.length, Seed: cfg.seed}, cfg.chunks, cfg.k, cfg.batch)
	if err != nil {
		return rep, err
	}
	elapsed := time.Since(start)

	if cfg.compact {
		compactStart := time.Now()
		if err := db.Compact(ctx); err != nil {
			return rep, err
		}
		fmt.Fprintf(w, "compacted in %v\n", time.Since(compactStart).Round(time.Millisecond))
	}
	rep.stats = db.Stats()
	fmt.Fprintf(w, "ingested %d docs (len=%d chunks=%d k=%d batch=%d) into %s in %v",
		rep.ingested, cfg.length, cfg.chunks, cfg.k, cfg.batch, cfg.store, elapsed.Round(time.Millisecond))
	if elapsed > 0 {
		fmt.Fprintf(w, " (%.0f docs/s)", float64(rep.ingested)/elapsed.Seconds())
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "store: %d live docs, %d segments, %.1f KiB on disk\n",
		rep.stats.Docs, rep.stats.Segments, float64(rep.stats.DiskBytes)/1024)
	if rep.stats.IndexEnabled {
		fmt.Fprintf(w, "index: %d docs, %d distinct grams\n", rep.stats.IndexDocs, rep.stats.IndexGrams)
	} else {
		fmt.Fprintln(w, "index: disabled (-noindex); build one with: staccato index -store", cfg.store)
	}
	if cfg.verbose {
		if err := printStatsJSON(w, rep.stats); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
