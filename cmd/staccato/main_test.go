package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
)

// TestDemoRecallBeyondMAP runs the demo at its default dial (200-char
// document, chunks=10, k=4) and asserts the acceptance scenario: a
// ground-truth term absent from the MAP string gets non-zero probability
// from the Staccato doc — recall beyond MAP, the paper's headline result.
func TestDemoRecallBeyondMAP(t *testing.T) {
	var out strings.Builder
	rep, err := run(&out, config{seed: 42, length: 200, chunks: 10, k: 4, termLen: 4})
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if rep.term == "" {
		t.Fatal("demo found no term")
	}
	if !strings.Contains(rep.truth, rep.term) {
		t.Errorf("term %q not in ground truth", rep.term)
	}
	if strings.Contains(rep.mapString, rep.term) || rep.probMAP != 0 {
		t.Errorf("term %q should be absent from the MAP string", rep.term)
	}
	if rep.probStac <= 0 {
		t.Errorf("staccato probability = %v, want > 0", rep.probStac)
	}
	if rep.probExact <= 0 {
		t.Errorf("exact full-SFST probability = %v, want > 0", rep.probExact)
	}
	if !strings.Contains(out.String(), "staccato recovered a reading") {
		t.Errorf("demo output missing recovery line:\n%s", out.String())
	}
}

func TestDemoExplicitTerm(t *testing.T) {
	var out strings.Builder
	rep1, err := run(&out, config{seed: 7, length: 100, chunks: 8, k: 3, term: "the"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep1.term != "the" {
		t.Errorf("term = %q, want the explicit term", rep1.term)
	}
	// Deterministic: same config, same report.
	rep2, err := run(&strings.Builder{}, config{seed: 7, length: 100, chunks: 8, k: 3, term: "the"})
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != rep2 {
		t.Errorf("demo not deterministic: %+v vs %+v", rep1, rep2)
	}
}

// TestSearchFindsPlantedDoc plants a query term taken from a document's
// MAP string — guaranteed to have positive probability in that document's
// retained distribution — and checks the search subcommand surfaces it.
func TestSearchFindsPlantedDoc(t *testing.T) {
	cfg := searchConfig{
		docs: 25, length: 40, seed: 5, chunks: 5, k: 3,
		workers: 3, top: 0, mode: "substring", combine: "and",
	}
	cases, err := testgen.Docs(cfg.docs, testgen.Config{Length: cfg.length, Seed: cfg.seed}, cfg.chunks, cfg.k)
	if err != nil {
		t.Fatal(err)
	}
	mapStr := cases[7].Doc.MAP()
	cfg.terms = []string{mapStr[10:14]}

	var out strings.Builder
	rep, err := runSearch(&out, cfg)
	if err != nil {
		t.Fatalf("runSearch: %v\noutput:\n%s", err, out.String())
	}
	if rep.scanned != cfg.docs {
		t.Errorf("scanned %d docs, want %d", rep.scanned, cfg.docs)
	}
	found := false
	for _, r := range rep.results {
		if r.DocID == "doc-0008" {
			found = true
			if r.Prob <= 0 {
				t.Errorf("planted doc has probability %v, want > 0", r.Prob)
			}
		}
	}
	if !found {
		t.Errorf("planted doc-0008 missing from results %+v\noutput:\n%s", rep.results, out.String())
	}
}

// TestSearchDeterministicAcrossWorkers runs the same search at different
// worker counts and requires identical reports.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	base := searchConfig{
		docs: 60, length: 30, seed: 9, chunks: 4, k: 3,
		workers: 1, top: 10, mode: "substring", combine: "or",
		not: "zz", terms: []string{"e", "a"},
	}
	rep1, err := runSearch(&strings.Builder{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.results) == 0 {
		t.Fatal("search matched nothing; broaden the test terms")
	}
	par := base
	par.workers = 8
	rep8, err := runSearch(&strings.Builder{}, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep8) {
		t.Errorf("workers=8 report differs from workers=1:\n%+v\n%+v", rep8, rep1)
	}
}

func TestSearchQueryValidation(t *testing.T) {
	if _, err := runSearch(&strings.Builder{}, searchConfig{docs: 1, mode: "substring", combine: "and"}); err == nil {
		t.Error("search accepted an empty term list")
	}
	if _, err := runSearch(&strings.Builder{}, searchConfig{
		docs: 1, mode: "glob", combine: "and", terms: []string{"x"},
	}); err == nil {
		t.Error("search accepted an unknown mode")
	}
	if _, err := runSearch(&strings.Builder{}, searchConfig{
		docs: 1, mode: "substring", combine: "xor", terms: []string{"x", "y"},
	}); err == nil {
		t.Error("search accepted an unknown combiner")
	}
	if _, err := runSearch(&strings.Builder{}, searchConfig{
		docs: 1, mode: "keyword", combine: "and", terms: []string{"two words"},
	}); err == nil {
		t.Error("keyword search accepted a term with a space")
	}
}

// TestSearchKeywordQueryString checks the flag set maps onto the query
// algebra the way the usage text promises.
func TestSearchKeywordQueryString(t *testing.T) {
	cfg := searchConfig{
		docs: 5, length: 20, seed: 1, chunks: 3, k: 2,
		workers: 1, mode: "keyword", combine: "or",
		not: "bad", terms: []string{"foo", "bar"},
	}
	rep, err := runSearch(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := `and(or(kw("foo"), kw("bar")), not(kw("bad")))`
	if rep.query != want {
		t.Errorf("query = %s, want %s", rep.query, want)
	}
}

// TestIngestSearchParityWithMemStore is the CLI acceptance scenario: a
// corpus ingested into a directory store and reopened by search -store
// must return byte-identical ranked results to the same corpus queried
// through the synthetic MemStore path — including after a simulated torn
// write to the store's last segment.
func TestIngestSearchParityWithMemStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	icfg := ingestConfig{store: dir, docs: 40, length: 40, seed: 5, chunks: 5, k: 3, batch: 7}
	var iout strings.Builder
	irep, err := runIngest(&iout, icfg)
	if err != nil {
		t.Fatalf("runIngest: %v\noutput:\n%s", err, iout.String())
	}
	if irep.ingested != icfg.docs || irep.stats.Docs != icfg.docs {
		t.Fatalf("ingested %d docs, stats %d, want %d", irep.ingested, irep.stats.Docs, icfg.docs)
	}

	base := searchConfig{
		length: 40, seed: 5, chunks: 5, k: 3,
		workers: 4, top: 15, mode: "substring", combine: "or",
		terms: []string{"e", "a"},
	}
	memCfg := base
	memCfg.docs = icfg.docs
	memRep, err := runSearch(&strings.Builder{}, memCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(memRep.results) == 0 {
		t.Fatal("mem search matched nothing; broaden the test terms")
	}
	diskCfg := base
	diskCfg.store = dir
	diskRep, err := runSearch(&strings.Builder{}, diskCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diskRep, memRep) {
		t.Fatalf("search -store report differs from -docs report:\n disk %+v\n mem  %+v", diskRep, memRep)
	}

	// Simulate a torn write: append a partial record to the last segment.
	// Reopening must truncate it away and the results must not change.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files (err=%v)", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0x99}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tornRep, err := runSearch(&strings.Builder{}, diskCfg)
	if err != nil {
		t.Fatalf("runSearch after torn write: %v", err)
	}
	if !reflect.DeepEqual(tornRep, memRep) {
		t.Fatalf("post-torn-write results differ:\n disk %+v\n mem  %+v", tornRep, memRep)
	}
}

// TestIndexSubcommandRecoversNoIndexStore is the new-subcommand
// acceptance scenario: a corpus ingested with -noindex searches by full
// scan; `staccato index` then builds the inverted index, and the same
// search prunes — with byte-identical results.
func TestIndexSubcommandRecoversNoIndexStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	icfg := ingestConfig{store: dir, docs: 30, length: 40, seed: 11, chunks: 5, k: 3, batch: 8, noIndex: true}
	var iout strings.Builder
	irep, err := runIngest(&iout, icfg)
	if err != nil {
		t.Fatalf("runIngest: %v\noutput:\n%s", err, iout.String())
	}
	if irep.stats.IndexEnabled {
		t.Fatal("-noindex ingest built an index anyway")
	}

	cases, err := testgen.Docs(icfg.docs, testgen.Config{Length: icfg.length, Seed: icfg.seed}, icfg.chunks, icfg.k)
	if err != nil {
		t.Fatal(err)
	}
	scfg := searchConfig{
		store: dir, workers: 2, top: 10, mode: "substring", combine: "and",
		terms: []string{cases[12].Doc.MAP()[10:17]},
	}
	// Search opens with the index enabled by default, which auto-rebuilds
	// the missing index — exercise the -noindex scan path first so the
	// parity comparison below is scan vs indexed.
	scanCfg := scfg
	scanCfg.noIndex = true
	scanRep, err := runSearch(&strings.Builder{}, scanCfg)
	if err != nil {
		t.Fatal(err)
	}
	if scanRep.pruned != 0 {
		t.Fatalf("-noindex search pruned %d docs", scanRep.pruned)
	}

	var xout strings.Builder
	xrep, err := runIndex(&xout, indexConfig{store: dir})
	if err != nil {
		t.Fatalf("runIndex: %v\noutput:\n%s", err, xout.String())
	}
	if xrep.stats.IndexDocs != icfg.docs || xrep.stats.IndexGrams == 0 {
		t.Fatalf("index stats after rebuild: %+v", xrep.stats)
	}
	if !strings.Contains(xout.String(), "indexed 30 docs") {
		t.Errorf("index output missing summary:\n%s", xout.String())
	}

	var sout strings.Builder
	vcfg := scfg
	vcfg.verbose = true
	idxRep, err := runSearch(&sout, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if idxRep.pruned == 0 {
		t.Fatalf("indexed search pruned nothing on a selective term\noutput:\n%s", sout.String())
	}
	if !strings.Contains(sout.String(), "planner:") || !strings.Contains(sout.String(), "plan:") {
		t.Errorf("-v output missing planner lines:\n%s", sout.String())
	}
	if !reflect.DeepEqual(idxRep.results, scanRep.results) {
		t.Fatalf("indexed results differ from scan results:\n idx  %+v\n scan %+v", idxRep.results, scanRep.results)
	}
}

func TestIndexSubcommandValidation(t *testing.T) {
	if _, err := runIndex(&strings.Builder{}, indexConfig{}); err == nil {
		t.Error("index accepted an empty -store")
	}
	missing := filepath.Join(t.TempDir(), "nope")
	if _, err := runIndex(&strings.Builder{}, indexConfig{store: missing}); err == nil || !strings.Contains(err.Error(), "no store at") {
		t.Errorf("index on missing store: err = %v, want a no-store error", err)
	}
	if err := indexMain(&strings.Builder{}, []string{"stray"}); err == nil {
		t.Error("index accepted a positional argument")
	}
}

// TestSearchCorpusSourceValidation is the flag-ergonomics contract:
// search must fail with a clear error — not a panic or a usage dump —
// when -docs and -store are both or neither given.
func TestSearchCorpusSourceValidation(t *testing.T) {
	if _, err := runSearch(&strings.Builder{}, searchConfig{
		docs: 10, store: "somewhere", mode: "substring", combine: "and", terms: []string{"x"},
	}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("both -docs and -store: err = %v, want mutually-exclusive error", err)
	}
	if _, err := runSearch(&strings.Builder{}, searchConfig{
		mode: "substring", combine: "and", terms: []string{"x"},
	}); err == nil || !strings.Contains(err.Error(), "no corpus") {
		t.Errorf("neither -docs nor -store: err = %v, want no-corpus error", err)
	}
	// Through the real flag path too: a clean error, not errFlagParse
	// (which would mean the FlagSet dumped usage).
	err := searchMain(&strings.Builder{}, []string{"hello"})
	if err == nil || err == errFlagParse {
		t.Errorf("searchMain with no corpus flags: err = %v, want a descriptive error", err)
	}
	// Synthetic-corpus shape flags are meaningless against -store and must
	// be rejected, not silently ignored.
	err = searchMain(&strings.Builder{}, []string{"-store", "somewhere", "-k", "8", "x"})
	if err == nil || !strings.Contains(err.Error(), "-k") {
		t.Errorf("searchMain with -store and -k: err = %v, want a stray-flag error naming -k", err)
	}
}

// TestSearchStoreMissingPath: a typo'd -store path must error and must
// not leave a freshly-initialized store behind.
func TestSearchStoreMissingPath(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-corpus")
	_, err := runSearch(&strings.Builder{}, searchConfig{
		store: missing, mode: "substring", combine: "and", terms: []string{"x"},
	})
	if err == nil || !strings.Contains(err.Error(), "no store at") {
		t.Errorf("search on missing store path: err = %v, want a no-store error", err)
	}
	if _, statErr := os.Stat(missing); !os.IsNotExist(statErr) {
		t.Errorf("search created %s as a side effect (stat err=%v)", missing, statErr)
	}
}

func TestIngestValidation(t *testing.T) {
	if _, err := runIngest(&strings.Builder{}, ingestConfig{docs: 5, batch: 4}); err == nil {
		t.Error("ingest accepted an empty -store")
	}
	if _, err := runIngest(&strings.Builder{}, ingestConfig{store: "x", docs: 0, batch: 4}); err == nil {
		t.Error("ingest accepted -docs 0")
	}
	if _, err := runIngest(&strings.Builder{}, ingestConfig{store: "x", docs: 5, batch: 0}); err == nil {
		t.Error("ingest accepted -batch 0")
	}
	if err := ingestMain(&strings.Builder{}, []string{"stray"}); err == nil {
		t.Error("ingest accepted a positional argument")
	}
}

// TestIngestIsIdempotent re-ingests the same corpus into the same store
// and checks document count is unchanged (puts supersede, not duplicate),
// then compacts away the superseded records.
func TestIngestIsIdempotent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	cfg := ingestConfig{store: dir, docs: 12, length: 30, seed: 3, chunks: 4, k: 2, batch: 5}
	if _, err := runIngest(&strings.Builder{}, cfg); err != nil {
		t.Fatal(err)
	}
	first, err := runIngest(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.stats.Docs != cfg.docs {
		t.Errorf("after re-ingest: %d live docs, want %d", first.stats.Docs, cfg.docs)
	}
	cfg.compact = true
	again, err := runIngest(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.stats.Docs != cfg.docs {
		t.Errorf("after compacting ingest: %d live docs, want %d", again.stats.Docs, cfg.docs)
	}
	if again.stats.DiskBytes >= first.stats.DiskBytes {
		t.Errorf("compaction did not reclaim space: %d -> %d bytes", first.stats.DiskBytes, again.stats.DiskBytes)
	}
}

// TestDemoRejectsPositionalArgs guards against a mistyped subcommand
// silently running the default demo.
func TestDemoRejectsPositionalArgs(t *testing.T) {
	if err := demoMain(&strings.Builder{}, []string{"serch", "-docs", "5", "e"}); err == nil {
		t.Error("demo accepted a positional argument (likely a typo'd subcommand)")
	}
}

// TestSearchRejectsTrailingFlags guards against flags placed after the
// first term silently becoming query terms.
func TestSearchRejectsTrailingFlags(t *testing.T) {
	if err := searchMain(&strings.Builder{}, []string{"e", "-top", "5"}); err == nil {
		t.Error("search accepted a flag-shaped positional term")
	}
}

// TestSearchSnippetsFlag runs search with -snippets and checks the
// ranked list is unchanged from a plain search, every printed reading
// is rendered with a witnessed span, and the readings appear in the
// output stream.
func TestSearchSnippetsFlag(t *testing.T) {
	cfg := searchConfig{
		docs: 15, length: 40, seed: 5, chunks: 5, k: 3,
		workers: 2, top: 5, mode: "substring", combine: "and",
	}
	cases, err := testgen.Docs(cfg.docs, testgen.Config{Length: cfg.length, Seed: cfg.seed}, cfg.chunks, cfg.k)
	if err != nil {
		t.Fatal(err)
	}
	term := cases[3].Doc.MAP()[10:14]
	cfg.terms = []string{term}

	plain, err := runSearch(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.snippets = 2
	var out strings.Builder
	snip, err := runSearch(&out, cfg)
	if err != nil {
		t.Fatalf("runSearch -snippets: %v\noutput:\n%s", err, out.String())
	}
	if !reflect.DeepEqual(plain.results, snip.results) {
		t.Fatalf("-snippets changed the ranked results\n plain: %+v\n snips: %+v", plain.results, snip.results)
	}
	if len(snip.snips) != len(snip.results) {
		t.Fatalf("%d snippet reports for %d results", len(snip.snips), len(snip.results))
	}
	sawReading := false
	for _, sn := range snip.snips {
		for _, rd := range sn.Readings {
			sawReading = true
			if len(rd.Spans) == 0 {
				t.Errorf("doc %s: reading %q has no spans", sn.DocID, rd.Text)
			}
			for _, sp := range rd.Spans {
				if rd.Text[sp.Start:sp.End] != term {
					t.Errorf("doc %s: span [%d,%d) does not witness %q in %q",
						sn.DocID, sp.Start, sp.End, term, rd.Text)
				}
			}
			if !strings.Contains(out.String(), fmt.Sprintf("%q", rd.Text)) {
				t.Errorf("reading %q not printed in output:\n%s", rd.Text, out.String())
			}
		}
	}
	if !sawReading {
		t.Fatal("no readings reported for any matching document")
	}
}

// TestSearchFuzzyFlag corrupts one rune of a planted document's MAP
// substring and checks -fuzzy 1 still finds the document where the
// exact substring search cannot.
func TestSearchFuzzyFlag(t *testing.T) {
	cfg := searchConfig{
		docs: 25, length: 40, seed: 5, chunks: 5, k: 3,
		workers: 2, top: 0, mode: "substring", combine: "and",
	}
	cases, err := testgen.Docs(cfg.docs, testgen.Config{Length: cfg.length, Seed: cfg.seed}, cfg.chunks, cfg.k)
	if err != nil {
		t.Fatal(err)
	}
	term := []rune(cases[7].Doc.MAP()[10:17])
	term[3] = '0' // a digit never appears in the synthetic alphabet
	cfg.terms = []string{string(term)}

	exact, err := runSearch(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range exact.results {
		if r.DocID == "doc-0008" {
			t.Fatalf("exact search already finds the corrupted term %q; corruption did not take", string(term))
		}
	}

	cfg.fuzzy = 1
	rep, err := runSearch(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("fuzzy(%q, 1)", string(term))
	if rep.query != want {
		t.Errorf("query = %s, want %s", rep.query, want)
	}
	found := false
	for _, r := range rep.results {
		found = found || r.DocID == "doc-0008"
	}
	if !found {
		t.Errorf("fuzzy search for %q missed planted doc-0008: %+v", string(term), rep.results)
	}
}

func TestSearchFuzzyFlagValidation(t *testing.T) {
	base := searchConfig{docs: 1, mode: "substring", combine: "and", terms: []string{"abc"}}
	neg := base
	neg.fuzzy = -1
	if _, err := runSearch(&strings.Builder{}, neg); err == nil {
		t.Error("search accepted a negative -fuzzy distance")
	}
	big := base
	big.fuzzy = 3
	if _, err := runSearch(&strings.Builder{}, big); err == nil {
		t.Error("search accepted -fuzzy 3 beyond the supported maximum")
	}
	kw := base
	kw.fuzzy = 1
	kw.mode = "keyword"
	if _, err := runSearch(&strings.Builder{}, kw); err == nil {
		t.Error("search accepted -fuzzy together with -mode keyword")
	}
}

// TestSearchLexiconFlag checks -lexicon vocab:N re-weights probabilities
// without changing which documents match, and that broken lexicon specs
// are rejected.
func TestSearchLexiconFlag(t *testing.T) {
	cfg := searchConfig{
		docs: 40, length: 30, seed: 9, chunks: 4, k: 3,
		workers: 2, top: 0, mode: "substring", combine: "or",
		terms: []string{"e", "a"},
	}
	plain, err := runSearch(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.results) == 0 {
		t.Fatal("search matched nothing; broaden the test terms")
	}
	cfg.lexicon = "vocab:300"
	scored, err := runSearch(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := func(rep searchReport) []string {
		out := make([]string, len(rep.results))
		for i, r := range rep.results {
			out[i] = r.DocID
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(ids(plain), ids(scored)) {
		t.Errorf("lexicon rescoring changed the matched set\n plain: %v\n lex:   %v", ids(plain), ids(scored))
	}

	for _, bad := range []string{"vocab:", "vocab:0", "vocab:x", filepath.Join(t.TempDir(), "missing.txt")} {
		cfg.lexicon = bad
		if _, err := runSearch(&strings.Builder{}, cfg); err == nil {
			t.Errorf("search accepted broken -lexicon %q", bad)
		}
	}
}

// TestSearchContextFlag checks -context attaches surrounding text to
// every printed span and that the context window contains the match.
func TestSearchContextFlag(t *testing.T) {
	cfg := searchConfig{
		docs: 15, length: 40, seed: 5, chunks: 5, k: 3,
		workers: 2, top: 5, mode: "substring", combine: "and",
		snippets: 2, context: 6,
	}
	cases, err := testgen.Docs(cfg.docs, testgen.Config{Length: cfg.length, Seed: cfg.seed}, cfg.chunks, cfg.k)
	if err != nil {
		t.Fatal(err)
	}
	term := cases[3].Doc.MAP()[10:14]
	cfg.terms = []string{term}

	var out strings.Builder
	rep, err := runSearch(&out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, sn := range rep.snips {
		for _, rd := range sn.Readings {
			for _, sp := range rd.Spans {
				saw = true
				if sp.Context == "" {
					t.Errorf("doc %s: span %s@%d-%d has no context", sn.DocID, sp.Term, sp.Start, sp.End)
					continue
				}
				if !strings.Contains(sp.Context, rd.Text[sp.Start:sp.End]) {
					t.Errorf("doc %s: context %q does not contain the match %q",
						sn.DocID, sp.Context, rd.Text[sp.Start:sp.End])
				}
				if !strings.Contains(rd.Text, sp.Context) {
					t.Errorf("doc %s: context %q is not a window of reading %q", sn.DocID, sp.Context, rd.Text)
				}
			}
		}
	}
	if !saw {
		t.Fatal("no spans reported for any matching document")
	}
}
