package main

import (
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
)

// TestDemoRecallBeyondMAP runs the demo at its default dial (200-char
// document, chunks=10, k=4) and asserts the acceptance scenario: a
// ground-truth term absent from the MAP string gets non-zero probability
// from the Staccato doc — recall beyond MAP, the paper's headline result.
func TestDemoRecallBeyondMAP(t *testing.T) {
	var out strings.Builder
	rep, err := run(&out, config{seed: 42, length: 200, chunks: 10, k: 4, termLen: 4})
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if rep.term == "" {
		t.Fatal("demo found no term")
	}
	if !strings.Contains(rep.truth, rep.term) {
		t.Errorf("term %q not in ground truth", rep.term)
	}
	if strings.Contains(rep.mapString, rep.term) || rep.probMAP != 0 {
		t.Errorf("term %q should be absent from the MAP string", rep.term)
	}
	if rep.probStac <= 0 {
		t.Errorf("staccato probability = %v, want > 0", rep.probStac)
	}
	if rep.probExact <= 0 {
		t.Errorf("exact full-SFST probability = %v, want > 0", rep.probExact)
	}
	if !strings.Contains(out.String(), "staccato recovered a reading") {
		t.Errorf("demo output missing recovery line:\n%s", out.String())
	}
}

func TestDemoExplicitTerm(t *testing.T) {
	var out strings.Builder
	rep1, err := run(&out, config{seed: 7, length: 100, chunks: 8, k: 3, term: "the"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep1.term != "the" {
		t.Errorf("term = %q, want the explicit term", rep1.term)
	}
	// Deterministic: same config, same report.
	rep2, err := run(&strings.Builder{}, config{seed: 7, length: 100, chunks: 8, k: 3, term: "the"})
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != rep2 {
		t.Errorf("demo not deterministic: %+v vs %+v", rep1, rep2)
	}
}

// TestSearchFindsPlantedDoc plants a query term taken from a document's
// MAP string — guaranteed to have positive probability in that document's
// retained distribution — and checks the search subcommand surfaces it.
func TestSearchFindsPlantedDoc(t *testing.T) {
	cfg := searchConfig{
		docs: 25, length: 40, seed: 5, chunks: 5, k: 3,
		workers: 3, top: 0, mode: "substring", combine: "and",
	}
	cases, err := testgen.Docs(cfg.docs, testgen.Config{Length: cfg.length, Seed: cfg.seed}, cfg.chunks, cfg.k)
	if err != nil {
		t.Fatal(err)
	}
	mapStr := cases[7].Doc.MAP()
	cfg.terms = []string{mapStr[10:14]}

	var out strings.Builder
	rep, err := runSearch(&out, cfg)
	if err != nil {
		t.Fatalf("runSearch: %v\noutput:\n%s", err, out.String())
	}
	if rep.scanned != cfg.docs {
		t.Errorf("scanned %d docs, want %d", rep.scanned, cfg.docs)
	}
	found := false
	for _, r := range rep.results {
		if r.DocID == "doc-0008" {
			found = true
			if r.Prob <= 0 {
				t.Errorf("planted doc has probability %v, want > 0", r.Prob)
			}
		}
	}
	if !found {
		t.Errorf("planted doc-0008 missing from results %+v\noutput:\n%s", rep.results, out.String())
	}
}

// TestSearchDeterministicAcrossWorkers runs the same search at different
// worker counts and requires identical reports.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	base := searchConfig{
		docs: 60, length: 30, seed: 9, chunks: 4, k: 3,
		workers: 1, top: 10, mode: "substring", combine: "or",
		not: "zz", terms: []string{"e", "a"},
	}
	rep1, err := runSearch(&strings.Builder{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.results) == 0 {
		t.Fatal("search matched nothing; broaden the test terms")
	}
	par := base
	par.workers = 8
	rep8, err := runSearch(&strings.Builder{}, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep8) {
		t.Errorf("workers=8 report differs from workers=1:\n%+v\n%+v", rep8, rep1)
	}
}

func TestSearchQueryValidation(t *testing.T) {
	if _, err := runSearch(&strings.Builder{}, searchConfig{docs: 1, mode: "substring", combine: "and"}); err == nil {
		t.Error("search accepted an empty term list")
	}
	if _, err := runSearch(&strings.Builder{}, searchConfig{
		docs: 1, mode: "glob", combine: "and", terms: []string{"x"},
	}); err == nil {
		t.Error("search accepted an unknown mode")
	}
	if _, err := runSearch(&strings.Builder{}, searchConfig{
		docs: 1, mode: "substring", combine: "xor", terms: []string{"x", "y"},
	}); err == nil {
		t.Error("search accepted an unknown combiner")
	}
	if _, err := runSearch(&strings.Builder{}, searchConfig{
		docs: 1, mode: "keyword", combine: "and", terms: []string{"two words"},
	}); err == nil {
		t.Error("keyword search accepted a term with a space")
	}
}

// TestSearchKeywordQueryString checks the flag set maps onto the query
// algebra the way the usage text promises.
func TestSearchKeywordQueryString(t *testing.T) {
	cfg := searchConfig{
		docs: 5, length: 20, seed: 1, chunks: 3, k: 2,
		workers: 1, mode: "keyword", combine: "or",
		not: "bad", terms: []string{"foo", "bar"},
	}
	rep, err := runSearch(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := `and(or(kw("foo"), kw("bar")), not(kw("bad")))`
	if rep.query != want {
		t.Errorf("query = %s, want %s", rep.query, want)
	}
}

// TestDemoRejectsPositionalArgs guards against a mistyped subcommand
// silently running the default demo.
func TestDemoRejectsPositionalArgs(t *testing.T) {
	if err := demoMain(&strings.Builder{}, []string{"serch", "-docs", "5", "e"}); err == nil {
		t.Error("demo accepted a positional argument (likely a typo'd subcommand)")
	}
}

// TestSearchRejectsTrailingFlags guards against flags placed after the
// first term silently becoming query terms.
func TestSearchRejectsTrailingFlags(t *testing.T) {
	if err := searchMain(&strings.Builder{}, []string{"e", "-top", "5"}); err == nil {
		t.Error("search accepted a flag-shaped positional term")
	}
}
