package main

import (
	"strings"
	"testing"
)

// TestDemoRecallBeyondMAP runs the demo at its default dial (200-char
// document, chunks=10, k=4) and asserts the acceptance scenario: a
// ground-truth term absent from the MAP string gets non-zero probability
// from the Staccato doc — recall beyond MAP, the paper's headline result.
func TestDemoRecallBeyondMAP(t *testing.T) {
	var out strings.Builder
	rep, err := run(&out, config{seed: 42, length: 200, chunks: 10, k: 4, termLen: 4})
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if rep.term == "" {
		t.Fatal("demo found no term")
	}
	if !strings.Contains(rep.truth, rep.term) {
		t.Errorf("term %q not in ground truth", rep.term)
	}
	if strings.Contains(rep.mapString, rep.term) || rep.probMAP != 0 {
		t.Errorf("term %q should be absent from the MAP string", rep.term)
	}
	if rep.probStac <= 0 {
		t.Errorf("staccato probability = %v, want > 0", rep.probStac)
	}
	if rep.probExact <= 0 {
		t.Errorf("exact full-SFST probability = %v, want > 0", rep.probExact)
	}
	if !strings.Contains(out.String(), "staccato recovered a reading") {
		t.Errorf("demo output missing recovery line:\n%s", out.String())
	}
}

func TestDemoExplicitTerm(t *testing.T) {
	var out strings.Builder
	rep1, err := run(&out, config{seed: 7, length: 100, chunks: 8, k: 3, term: "the"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep1.term != "the" {
		t.Errorf("term = %q, want the explicit term", rep1.term)
	}
	// Deterministic: same config, same report.
	rep2, err := run(&strings.Builder{}, config{seed: 7, length: 100, chunks: 8, k: 3, term: "the"})
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != rep2 {
		t.Errorf("demo not deterministic: %+v vs %+v", rep1, rep2)
	}
}
