// Command staccatod is the staccato network service: a long-running
// HTTP/JSON server over a staccatodb database directory, built for
// sustained concurrent traffic where the staccato CLI is built for
// one-shot runs. The two binaries share the database format and the
// stats JSON shape: build a corpus with `staccato ingest -store DIR`,
// serve it with `staccatod -store DIR`, and keep using `staccato
// search -store DIR` against the same directory between runs.
//
//	staccatod -store DIR [-addr :8417] [-create] [-workers N]
//	          [-maxinflight N] [-timeout D] [-drain D] [-cachesize N]
//	          [-nosync] [-noindex] [-lexicon FILE]
//
// Endpoints (all JSON; see pkg/server for the request shapes):
//
//	POST   /v1/ingest     batched document writes
//	POST   /v1/search     ranked probabilistic search (terms, mode,
//	                      distance, lexicon, combine, not, min_prob,
//	                      top, timeout_ms)
//	POST   /v1/explain    plan + executed SearchStats for a query
//	GET    /v1/docs/{id}  point read
//	DELETE /v1/docs/{id}  delete
//	GET    /v1/stats      database + service counters
//	GET    /healthz       liveness (503 while draining)
//	GET    /debug/vars    expvar metrics
//
// The server bounds in-flight requests (-maxinflight; excess load is
// rejected with 429 + Retry-After), runs every request under a deadline
// (-timeout), caches compiled queries (-cachesize), and on SIGINT or
// SIGTERM drains in-flight requests (up to -drain) before closing the
// database.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/paper-repo/staccato-go/pkg/fuzzy"
	"github.com/paper-repo/staccato-go/pkg/server"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// serveConfig carries everything the server needs, so tests can drive
// runServe without a command line or signals.
type serveConfig struct {
	addr         string
	store        string
	create       bool
	workers      int
	maxInFlight  int
	timeout      time.Duration
	drainTimeout time.Duration
	cacheSize    int
	noSync       bool
	noIndex      bool
	lexicon      string

	// ready, when non-nil, receives the bound listen address once the
	// server is accepting connections — the test seam for -addr :0.
	ready func(addr string)
}

// errFlagParse marks a command line the FlagSet already reported on
// stderr; main must not print it a second time.
var errFlagParse = errors.New("invalid command line")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := serveMain(ctx, os.Stdout, os.Args[1:])
	if errors.Is(err, errFlagParse) {
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "staccatod:", err)
		os.Exit(1)
	}
}

func serveMain(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("staccatod", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: staccatod -store DIR [flags]\n  serve a staccato database over HTTP/JSON (build one with: staccato ingest -store DIR)\n")
		fs.PrintDefaults()
	}
	cfg := serveConfig{}
	fs.StringVar(&cfg.addr, "addr", ":8417", "listen address")
	fs.StringVar(&cfg.store, "store", "", "directory of the database to serve (required)")
	fs.BoolVar(&cfg.create, "create", false, "initialize an empty database if none exists at -store")
	fs.IntVar(&cfg.workers, "workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.maxInFlight, "maxinflight", server.DefaultMaxInFlight, "max concurrent requests before 429 rejection")
	fs.DurationVar(&cfg.timeout, "timeout", server.DefaultRequestTimeout, "per-request deadline")
	fs.DurationVar(&cfg.drainTimeout, "drain", 30*time.Second, "shutdown drain limit for in-flight requests")
	fs.IntVar(&cfg.cacheSize, "cachesize", server.DefaultQueryCacheSize, "compiled-query LRU cache capacity")
	fs.BoolVar(&cfg.noSync, "nosync", false, "skip fsync on commit (faster writes; an OS crash may lose recent batches)")
	fs.BoolVar(&cfg.noIndex, "noindex", false, "serve without the inverted index (every query scans)")
	fs.StringVar(&cfg.lexicon, "lexicon", "", "wordlist file enabling lexicon rescoring for requests with \"lexicon\": true")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (staccatod takes only flags)", fs.Arg(0))
	}
	return runServe(ctx, w, cfg)
}

// openServeDB validates cfg's store selection — with the same message
// shape as the staccato CLI's ingest/search validation — and opens it.
func openServeDB(cfg serveConfig) (*staccatodb.DB, error) {
	if cfg.store == "" {
		return nil, fmt.Errorf("-store DIR is required")
	}
	if !cfg.create {
		// Open would initialize a fresh store on any path; a typo'd -store
		// must be an error, not an empty corpus plus junk files on disk.
		if _, err := os.Stat(filepath.Join(cfg.store, "MANIFEST")); err != nil {
			return nil, fmt.Errorf("no store at %s (%w); run staccato ingest -store first, or pass -create to initialize an empty database", cfg.store, err)
		}
	}
	var opts []staccatodb.Option
	if cfg.workers != 0 {
		opts = append(opts, staccatodb.WithWorkers(cfg.workers))
	}
	if cfg.noSync {
		opts = append(opts, staccatodb.WithNoSync())
	}
	if cfg.noIndex {
		opts = append(opts, staccatodb.WithoutIndex())
	}
	return staccatodb.Open(cfg.store, opts...)
}

// runServe opens the database, serves it until ctx is canceled, then
// drains in-flight requests and closes the database. The request
// lifecycle invariant lives in pkg/server; this function only wires the
// listener and the signal-driven shutdown around it.
func runServe(ctx context.Context, w io.Writer, cfg serveConfig) error {
	if cfg.drainTimeout <= 0 {
		cfg.drainTimeout = 30 * time.Second
	}
	var lex *fuzzy.Lexicon
	if cfg.lexicon != "" {
		f, err := os.Open(cfg.lexicon)
		if err != nil {
			return fmt.Errorf("-lexicon: %w", err)
		}
		lex, err = fuzzy.ReadLexicon(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("-lexicon %s: %w", cfg.lexicon, err)
		}
	}
	db, err := openServeDB(cfg)
	if err != nil {
		return err
	}
	// server.New resolves its own zero options, so the startup banner
	// reads them back from one place rather than re-deriving defaults.
	srv := server.New(db, server.Options{
		MaxInFlight:    cfg.maxInFlight,
		RequestTimeout: cfg.timeout,
		QueryCacheSize: cfg.cacheSize,
		Lexicon:        lex,
	})
	shutdown := func() error {
		sctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		return srv.Shutdown(sctx)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		shutdown()
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	st := db.Stats()
	resolved := srv.Options()
	fmt.Fprintf(w, "staccatod: serving %s (%d docs, index enabled=%v persisted=%v) on http://%s\n",
		cfg.store, st.Docs, st.IndexEnabled, st.IndexPersisted, ln.Addr())
	fmt.Fprintf(w, "staccatod: max in-flight %d, request timeout %v, query cache %d entries\n",
		resolved.MaxInFlight, resolved.RequestTimeout, resolved.QueryCacheSize)
	if lex != nil {
		fmt.Fprintf(w, "staccatod: lexicon rescoring available (%d words, boost %g)\n",
			lex.Len(), resolved.LexiconBoost)
	}
	if cfg.ready != nil {
		cfg.ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		// Serve only returns on listener failure; still drain and close.
		shutdown()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(w, "staccatod: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		fmt.Fprintf(w, "staccatod: connection drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(w, "staccatod: stopped cleanly")
	return nil
}
