package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// TestStoreFlagValidation pins the clean-error contract the CLI
// subcommands established: a missing flag and a typo'd directory fail
// with the same message shapes as staccato ingest/search, before
// anything touches the disk.
func TestStoreFlagValidation(t *testing.T) {
	ctx := context.Background()

	err := runServe(ctx, io.Discard, serveConfig{})
	if err == nil || !strings.Contains(err.Error(), "-store DIR is required") {
		t.Errorf("no -store: err = %v, want \"-store DIR is required\"", err)
	}

	missing := t.TempDir() + "/nope"
	err = runServe(ctx, io.Discard, serveConfig{store: missing})
	if err == nil || !strings.Contains(err.Error(), "no store at "+missing) ||
		!strings.Contains(err.Error(), "staccato ingest -store") {
		t.Errorf("typo'd -store: err = %v, want the no-store-at message pointing at staccato ingest", err)
	}
}

func TestUnexpectedArgumentRejected(t *testing.T) {
	err := serveMain(context.Background(), io.Discard, []string{"serve"})
	if err == nil || !strings.Contains(err.Error(), "unexpected argument") {
		t.Errorf("err = %v, want unexpected-argument error", err)
	}
}

// TestServeEndToEnd boots the real binary path — open store, listen,
// serve, drain on cancel — against a pre-ingested directory, issues a
// search over the wire, and confirms a clean signal-driven exit.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cases, err := testgen.Docs(8, testgen.Config{Length: 40, Seed: 3}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*staccato.Doc, len(cases))
	for i, c := range cases {
		docs[i] = c.Doc
	}
	if err := db.Ingest(context.Background(), docs); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- runServe(ctx, &out, serveConfig{
			store: dir,
			addr:  "127.0.0.1:0",
			ready: func(addr string) { addrCh <- addr },
		})
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	base := "http://" + addr
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	term := docs[0].MAP()[:4]
	body, _ := json.Marshal(map[string]any{"terms": []string{term}, "top": 5})
	resp, err = http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d, body %s", resp.StatusCode, data)
	}
	var sr struct {
		Results []struct {
			DocID string  `json:"doc_id"`
			Prob  float64 `json:"prob"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) == 0 {
		t.Fatalf("served search for %q returned no results: %s", term, data)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down after cancel")
	}
	if !strings.Contains(out.String(), "stopped cleanly") {
		t.Errorf("missing clean-shutdown line in output:\n%s", out.String())
	}
}
