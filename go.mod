module github.com/paper-repo/staccato-go

go 1.24
