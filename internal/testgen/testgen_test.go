package testgen

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/pkg/fst"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Length: 50, Seed: 11}
	t1, f1 := MustGenerate(cfg)
	t2, f2 := MustGenerate(cfg)
	if t1 != t2 {
		t.Error("same seed produced different truth strings")
	}
	if f1.NumStates() != f2.NumStates() || f1.NumArcs() != f2.NumArcs() {
		t.Error("same seed produced structurally different SFSTs")
	}
	if f1.Viterbi() != f2.Viterbi() {
		t.Error("same seed produced different MAP decodings")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	t1, _ := MustGenerate(Config{Length: 50, Seed: 1})
	t2, _ := MustGenerate(Config{Length: 50, Seed: 2})
	if t1 == t2 {
		t.Error("different seeds produced identical truth strings")
	}
}

func TestGenerateShape(t *testing.T) {
	truth, f := MustGenerate(Config{Length: 80, Seed: 5})
	if len(truth) != 80 {
		t.Errorf("truth length = %d, want 80", len(truth))
	}
	if strings.Contains(truth, "  ") || strings.HasPrefix(truth, " ") || strings.HasSuffix(truth, " ") {
		t.Errorf("truth has malformed spacing: %q", truth)
	}
	// One state per position plus start, plus extra states for splits.
	if f.NumStates() < 81 {
		t.Errorf("NumStates = %d, want >= 81", f.NumStates())
	}
	// Position-level probabilities must sum to 1: total path mass is 1.
	var mass func() float64 = func() float64 {
		m := make([]float64, f.NumStates())
		m[0] = 1
		var total float64
		for s := 0; s < f.NumStates(); s++ {
			if f.IsFinal(fst.StateID(s)) {
				total += m[s]
			}
			for _, a := range f.Arcs(fst.StateID(s)) {
				m[a.To] += m[s] * math.Exp(-a.Weight)
			}
		}
		return total
	}
	if got := mass(); math.Abs(got-1) > 1e-9 {
		t.Errorf("total path mass = %v, want 1 (per-position distributions must normalize)", got)
	}
}

func TestGenerateHardPositionsDivergeMAP(t *testing.T) {
	// With the default hard rate, a 200-char document must have positions
	// where Viterbi disagrees with the truth — the recall gap the rest of
	// the system exists to measure.
	truth, f := MustGenerate(Config{Length: 200, Seed: 42})
	mapStr := f.Viterbi().Output
	if truth == mapStr {
		t.Error("MAP string equals truth; generator produced no hard positions")
	}
}

func TestCorpus(t *testing.T) {
	cases, err := Corpus(4, Config{Length: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 4 {
		t.Fatalf("len = %d", len(cases))
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if c.FST == nil || len(c.Truth) != 30 {
			t.Fatalf("malformed case %+v", c)
		}
		seen[c.Truth] = true
	}
	if len(seen) != 4 {
		t.Error("corpus cases are not distinct")
	}
}

func TestDocs(t *testing.T) {
	docs, err := Docs(3, Config{Length: 25, Seed: 4}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("len = %d, want 3", len(docs))
	}
	for i, dc := range docs {
		wantID := fmt.Sprintf("doc-%04d", i+1)
		if dc.Doc == nil || dc.Doc.ID != wantID {
			t.Errorf("doc %d ID = %q, want %q", i, dc.Doc.ID, wantID)
		}
		if len(dc.Truth) != 25 {
			t.Errorf("doc %d truth length = %d", i, len(dc.Truth))
		}
	}
	again, err := Docs(3, Config{Length: 25, Seed: 4}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(docs, again) {
		t.Error("Docs is not deterministic for a fixed config")
	}
}

// TestEachDocStreamsSameCorpus pins the ingest-path invariant: the
// streamed corpus is element-for-element identical to the materialized
// one, and a callback error aborts the stream immediately.
func TestEachDocStreamsSameCorpus(t *testing.T) {
	want, err := Docs(4, Config{Length: 25, Seed: 4}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []DocCase
	if err := EachDoc(4, Config{Length: 25, Seed: 4}, 4, 2, func(dc DocCase) error {
		got = append(got, dc)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("EachDoc stream differs from Docs corpus")
	}

	sentinel := fmt.Errorf("stop here")
	calls := 0
	err = EachDoc(4, Config{Length: 25, Seed: 4}, 4, 2, func(DocCase) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Errorf("EachDoc error = %v, want the callback's sentinel", err)
	}
	if calls != 2 {
		t.Errorf("EachDoc made %d calls after an error at call 2", calls)
	}
}

func TestCorpusRejectsNegativeSize(t *testing.T) {
	if _, err := Corpus(-1, Config{}); err == nil {
		t.Error("Corpus accepted a negative size")
	}
	if _, err := Docs(-1, Config{}, 4, 2); err == nil {
		t.Error("Docs accepted a negative size")
	}
}
