package testgen

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/pkg/fst"
)

// checkErrModelInvariants verifies the structural contract of one
// generated (truth, SFST) pair: every state with outgoing arcs
// distributes exactly probability 1 over them, every arc probability is
// positive, and the ground truth is an accepting path — which is what
// guarantees the FullSFST baseline's recall is always 1.
func checkErrModelInvariants(t *testing.T, truth string, f *fst.SFST) {
	t.Helper()
	for s := 0; s < f.NumStates(); s++ {
		arcs := f.Arcs(fst.StateID(s))
		if len(arcs) == 0 {
			continue
		}
		sum := 0.0
		for _, a := range arcs {
			p := a.Prob()
			if p <= 0 || p > 1 {
				t.Fatalf("state %d: arc probability %v out of (0, 1]", s, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("state %d: outgoing probability mass %v, want 1", s, sum)
		}
	}

	// Reachability DP over (state, truth prefix): the truth must spell a
	// start→final path.
	cur := map[fst.StateID]bool{f.Start(): true}
	for _, r := range truth {
		next := map[fst.StateID]bool{}
		for s := range cur {
			for _, a := range f.Arcs(s) {
				if a.Label == r {
					next[a.To] = true
				}
			}
		}
		if len(next) == 0 {
			t.Fatalf("truth %q is not spellable by the transducer", truth)
		}
		cur = next
	}
	accepted := false
	for s := range cur {
		if f.IsFinal(s) {
			accepted = true
		}
	}
	if !accepted {
		t.Fatalf("truth %q spells only non-accepting paths", truth)
	}
}

func TestErrModelDeterministic(t *testing.T) {
	cfg := ErrModelConfig{Words: 10, Seed: 17}
	t1, f1, err := GenerateErrModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, f2, err := GenerateErrModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatalf("truths differ: %q vs %q", t1, t2)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("same config produced structurally different SFSTs")
	}
}

func TestErrModelInvariants(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		truth, f, err := GenerateErrModel(ErrModelConfig{Words: 12, Seed: seed, BurstRate: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		checkErrModelInvariants(t, truth, f)
	}
}

// TestErrModelSharedVocabulary pins the property the recall workload
// depends on: documents generated with different seeds draw tokens from
// one vocabulary keyed only on VocabSize, so terms recur across the
// corpus.
func TestErrModelSharedVocabulary(t *testing.T) {
	cfg := ErrModelConfig{Words: 30, VocabSize: 40}
	vocab := map[string]bool{}
	for _, w := range errVocab(cfg.VocabSize) {
		vocab[w] = true
	}
	tokens := func(seed int64) map[string]bool {
		c := cfg
		c.Seed = seed
		truth, _, err := GenerateErrModel(c)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, tok := range strings.Fields(truth) {
			if !vocab[tok] {
				t.Fatalf("seed %d: token %q is not in the shared vocabulary", seed, tok)
			}
			out[tok] = true
		}
		return out
	}
	a, b := tokens(3), tokens(4)
	shared := 0
	for tok := range a {
		if b[tok] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("two documents share no tokens; the Zipf draw is not concentrating on the shared vocabulary")
	}
}

// TestErrModelOpensRecallGap checks the raw material of the benchmark:
// across a small corpus, hard positions and bursts make some MAP strings
// diverge from their ground truths — without that, MAP recall would be 1
// and the CI gate (MAP < Staccato) could never hold.
func TestErrModelOpensRecallGap(t *testing.T) {
	cases, err := ErrDocs(20, ErrModelConfig{Words: 12, Seed: 5}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	for _, c := range cases {
		if c.Doc.MAP() != c.Truth {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("every MAP string equals its truth; the error model injected no effective noise")
	}
	if diverged == len(cases) {
		t.Log("every MAP diverged — harsh but not wrong at these rates")
	}
}

func TestParseErrModelConfig(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		cfg, err := ParseErrModelConfig("")
		if err != nil {
			t.Fatal(err)
		}
		want := ErrModelConfig{}.withDefaults()
		if cfg != want {
			t.Fatalf("empty spec = %+v, want all defaults %+v", cfg, want)
		}
	})
	t.Run("round trip", func(t *testing.T) {
		cfg, err := ParseErrModelConfig("words=20, seed=9 ,vocab=50,zipf=1.4,subrate=0.1,burstrate=0.05,burstlen=8,burstsubrate=0.6,maxalts=4")
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseErrModelConfig(cfg.String())
		if err != nil {
			t.Fatal(err)
		}
		if back.String() != cfg.String() {
			t.Fatalf("round trip changed the config: %s vs %s", back.String(), cfg.String())
		}
		if cfg.Words != 20 || cfg.Seed != 9 || cfg.BurstLen != 8 {
			t.Fatalf("parsed values wrong: %+v", cfg)
		}
	})
	for _, bad := range []string{
		"words",             // no value
		"nope=1",            // unknown key
		"words=abc",         // unparsable int
		"zipf=NaN",          // NaN rejected
		"subrate=1.5",       // out of range
		"burstsubrate=-0.1", // out of range
		"words=0x10",        // not base-10
		"words=-3",          // negative
		"vocab=99999",       // over the cap
		"maxalts=9",         // over the cap
	} {
		if _, err := ParseErrModelConfig(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// FuzzErrModelParse fuzzes the config wire format end to end: any spec
// that parses must validate, survive a render/re-parse round trip, and
// generate a deterministic transducer satisfying the model invariants.
func FuzzErrModelParse(f *testing.F) {
	for _, s := range []string{
		"",
		"words=8,seed=3",
		"vocab=50,zipf=1.3",
		"subrate=0.5,burstrate=0.2,burstlen=4,burstsubrate=0.9",
		"maxalts=5,seed=-7",
		"words=abc",
		"nope=1",
		" words = 9 , vocab = 12 ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseErrModelConfig(s)
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("parse accepted an invalid config %+v: %v", cfg, err)
		}
		back, err := ParseErrModelConfig(cfg.String())
		if err != nil {
			t.Fatalf("rendered config %q does not re-parse: %v", cfg.String(), err)
		}
		if back.String() != cfg.String() {
			t.Fatalf("round trip changed the config: %s vs %s", back.String(), cfg.String())
		}
		// Clamp the cost knobs (the parse already bounded them; this keeps
		// per-exec time low), then generate twice and check the machine.
		cfg.Words = cfg.Words%16 + 1
		cfg.VocabSize = cfg.VocabSize%32 + 1
		cfg.BurstLen = cfg.BurstLen%16 + 1
		truth, fst1, err := GenerateErrModel(cfg)
		if err != nil {
			t.Fatalf("valid config failed to generate: %v", err)
		}
		truth2, fst2, err := GenerateErrModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if truth != truth2 || !reflect.DeepEqual(fst1, fst2) {
			t.Fatal("generation is not deterministic for a fixed config")
		}
		checkErrModelInvariants(t, truth, fst1)
	})
}
