// Package testgen deterministically generates synthetic OCR output for
// tests, benchmarks, and the demo CLI. Given a seed it fabricates a ground
// truth string and an SFST modeling an OCR engine's uncertainty about it:
// each position carries confusable alternatives with pseudo-random
// probabilities, some positions are "hard" (the true character is NOT the
// engine's top guess, so the MAP string diverges from the truth — the
// recall gap Staccato exists to close), and a sprinkling of deletions
// (epsilon arcs) and two-character splits ('m' read as "rn") gives the
// transducer non-trivial topology for the chunker to work around.
package testgen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/pkg/fst"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Config controls generation. Zero values take the documented defaults.
type Config struct {
	// Length of the ground truth string (default 100).
	Length int
	// Seed for the deterministic PRNG (default 1).
	Seed int64
	// HardRate is the probability that a position is hard: the true
	// character gets lower probability than its best confusable, so
	// Viterbi decodes the wrong character there (default 0.15).
	HardRate float64
	// DeleteRate is the probability a position also carries an epsilon
	// (deletion) alternative (default 0.05).
	DeleteRate float64
	// SplitRate is the probability a position also carries a
	// two-character alternative routed through an extra state
	// (default 0.05).
	SplitRate float64
	// MaxConfusables bounds the single-character confusables per position
	// (default 3).
	MaxConfusables int
}

//lint:allow floateq the zero value means "field unset, apply the default" — an exact sentinel, not a computed probability
func (c Config) withDefaults() Config {
	if c.Length == 0 {
		c.Length = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HardRate == 0 {
		c.HardRate = 0.15
	}
	if c.DeleteRate == 0 {
		c.DeleteRate = 0.05
	}
	if c.SplitRate == 0 {
		c.SplitRate = 0.05
	}
	if c.MaxConfusables == 0 {
		c.MaxConfusables = 3
	}
	return c
}

// confusions maps characters to their classic OCR confusables. Characters
// not listed draw random lowercase letters instead.
var confusions = map[rune][]rune{
	'o': {'c', 'e', 'a'},
	'c': {'o', 'e'},
	'e': {'c', 'o'},
	'l': {'i', 't', 'f'},
	'i': {'l', 'j', 't'},
	'm': {'n', 'w'},
	'n': {'m', 'r'},
	'u': {'v', 'w'},
	'v': {'u', 'y'},
	'h': {'b', 'k'},
	'b': {'h', 'd'},
	'g': {'q', 'y'},
	'q': {'g', 'p'},
	's': {'z', 'x'},
	'z': {'s', 'x'},
}

// splits maps characters to a two-character sequence OCR engines confuse
// them with.
var splits = map[rune]string{
	'm': "rn",
	'w': "vv",
	'd': "cl",
	'b': "lo",
	'n': "ri",
}

const letters = "abcdefghijklmnopqrstuvwxyz"

// Generate fabricates a ground truth string and its OCR transducer. The
// same Config always yields the same (truth, SFST) pair.
func Generate(cfg Config) (string, *fst.SFST, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	truth := genTruth(rng, cfg.Length)

	b := fst.NewBuilder()
	cur := b.AddState()
	b.SetStart(cur)
	for _, t := range truth {
		next := b.AddState()
		addPosition(b, rng, cfg, cur, next, t)
		cur = next
	}
	b.SetFinal(cur)
	f, err := b.Build()
	if err != nil {
		return "", nil, fmt.Errorf("testgen: %w", err)
	}
	return truth, f, nil
}

// MustGenerate is Generate for tests and benchmarks, panicking on the
// internal errors that a well-formed Config cannot produce.
func MustGenerate(cfg Config) (string, *fst.SFST) {
	truth, f, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return truth, f
}

// Case is one generated document of a corpus.
type Case struct {
	Truth string
	FST   *fst.SFST
}

// Corpus generates n documents by advancing the seed, for property tests
// that want variety while staying deterministic.
func Corpus(n int, cfg Config) ([]Case, error) {
	if n < 0 {
		return nil, fmt.Errorf("testgen: corpus size must be >= 0, got %d", n)
	}
	cfg = cfg.withDefaults()
	out := make([]Case, n)
	for i := range out {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		truth, f, err := Generate(c)
		if err != nil {
			return nil, err
		}
		out[i] = Case{Truth: truth, FST: f}
	}
	return out, nil
}

// DocCase pairs one approximated corpus document with its ground truth.
type DocCase struct {
	Truth string
	Doc   *staccato.Doc
}

// EachDoc streams the corpus Docs materializes, one document at a time:
// the i-th document is generated from cfg with seed cfg.Seed+i and
// carries the ID "doc-%04d" (1-based). Only one SFST and document are
// alive at once, so corpus size is bounded by disk (the ingest path),
// not memory. fn errors — including store.ErrStopScan-style sentinels —
// abort generation and are returned as-is.
func EachDoc(n int, cfg Config, chunks, k int, fn func(DocCase) error) error {
	if n < 0 {
		return fmt.Errorf("testgen: corpus size must be >= 0, got %d", n)
	}
	cfg = cfg.withDefaults()
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		truth, f, err := Generate(c)
		if err != nil {
			return err
		}
		d, err := staccato.Build(f, fmt.Sprintf("doc-%04d", i+1), chunks, k)
		if err != nil {
			return fmt.Errorf("testgen: doc %d: %w", i+1, err)
		}
		if err := fn(DocCase{Truth: truth, Doc: d}); err != nil {
			return err
		}
	}
	return nil
}

// Docs builds a corpus of n Staccato documents at the (chunks, k) dial
// setting by collecting EachDoc's stream, so corpus contents — and any
// scan over them — are fully deterministic and identical to what a
// streamed ingest writes.
func Docs(n int, cfg Config, chunks, k int) ([]DocCase, error) {
	out := make([]DocCase, 0, max(n, 0))
	if err := EachDoc(n, cfg, chunks, k, func(dc DocCase) error {
		out = append(out, dc)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// genTruth builds a random string of lowercase words separated by single
// spaces, with word lengths between 3 and 8.
func genTruth(rng *rand.Rand, length int) string {
	var sb strings.Builder
	wordLeft := 3 + rng.Intn(6)
	for sb.Len() < length {
		if wordLeft == 0 && sb.Len() < length-1 {
			sb.WriteByte(' ')
			wordLeft = 3 + rng.Intn(6)
			continue
		}
		sb.WriteByte(letters[rng.Intn(len(letters))])
		if wordLeft > 0 {
			wordLeft--
		}
	}
	return sb.String()
}

// addPosition emits the arcs for one truth character between states cur
// and next: the true character, its confusables, and optionally a
// deletion and a two-character split, with probabilities summing to 1.
func addPosition(b *fst.Builder, rng *rand.Rand, cfg Config, cur, next fst.StateID, t rune) {
	alts := pickConfusables(rng, cfg, t)
	hard := rng.Float64() < cfg.HardRate

	// Probability of the true character: dominant on easy positions,
	// beaten by the first confusable on hard ones.
	var pTrue float64
	if hard {
		pTrue = 0.10 + 0.15*rng.Float64() // <= 0.25
	} else {
		pTrue = 0.55 + 0.40*rng.Float64()
	}
	remaining := 1 - pTrue

	// Optional deletion and split alternatives take a small slice first.
	var pDel, pSplit float64
	var splitText string
	if t != ' ' && rng.Float64() < cfg.DeleteRate {
		pDel = remaining * (0.05 + 0.10*rng.Float64())
		remaining -= pDel
	}
	if s, ok := splits[t]; ok && rng.Float64() < cfg.SplitRate {
		splitText = s
		pSplit = remaining * (0.10 + 0.15*rng.Float64())
		remaining -= pSplit
	}

	// Split the rest over the confusables. On hard positions the first
	// confusable gets the lion's share so it strictly beats pTrue.
	probs := make([]float64, len(alts))
	if hard {
		probs[0] = remaining
		if len(alts) > 1 {
			probs[0] = remaining * 0.6
			rest := remaining - probs[0]
			for i := 1; i < len(alts); i++ {
				probs[i] = rest / float64(len(alts)-1)
			}
		}
	} else {
		raw := make([]float64, len(alts))
		var sum float64
		for i := range raw {
			raw[i] = 0.1 + rng.Float64()
			sum += raw[i]
		}
		for i := range raw {
			probs[i] = remaining * raw[i] / sum
		}
	}

	b.AddArc(cur, next, t, core.WeightFromProb(pTrue))
	for i, c := range alts {
		b.AddArc(cur, next, c, core.WeightFromProb(probs[i]))
	}
	if pDel > 0 {
		b.AddArc(cur, next, fst.Epsilon, core.WeightFromProb(pDel))
	}
	if pSplit > 0 {
		mid := b.AddState()
		r := []rune(splitText)
		b.AddArc(cur, mid, r[0], core.WeightFromProb(pSplit))
		b.AddArc(mid, next, r[1], core.WeightFromProb(1))
	}
}

// pickConfusables returns 1..MaxConfusables distinct characters != t,
// preferring the curated confusion table and falling back to random
// letters.
func pickConfusables(rng *rand.Rand, cfg Config, t rune) []rune {
	n := 1 + rng.Intn(cfg.MaxConfusables)
	seen := map[rune]bool{t: true}
	var out []rune
	for _, c := range confusions[t] {
		if len(out) == n {
			break
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for len(out) < n {
		c := rune(letters[rng.Intn(len(letters))])
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
