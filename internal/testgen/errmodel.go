// Error-model corpus generation: a more realistic OCR noise model than
// Generate's uniform confusions, built for recall benchmarking. Documents
// are sequences of tokens drawn Zipf-style from one shared vocabulary (so
// a query term recurs across documents), and noise follows a weighted
// confusion matrix of classic OCR errors — rn↔m merges and splits, l↔1
// and o↔0 letter/digit swaps — with burst regions where the substitution
// rate jumps, modeling a smudged or low-contrast patch of the page. Hard
// positions (the true character beaten by its top confusable) are exactly
// what opens the MAP-vs-Staccato recall gap the benchmark measures.
package testgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/pkg/fst"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// ErrModelConfig controls error-model generation. Zero values take the
// documented defaults; Validate bounds every knob so a hostile config
// (fuzzing, a CLI flag) cannot buy unbounded work.
type ErrModelConfig struct {
	// Words is the number of tokens per document (default 12).
	Words int
	// Seed drives the per-document PRNG (default 1). The vocabulary does
	// NOT depend on Seed: documents with different seeds share tokens, so
	// a workload term recurs across the corpus.
	Seed int64
	// VocabSize is the shared vocabulary's size (default 200).
	VocabSize int
	// ZipfS is the Zipf exponent for token frequencies (default 1.1):
	// rank-r words are drawn with weight r^-ZipfS.
	ZipfS float64
	// SubRate is the per-position probability outside bursts that the
	// position is hard — the true character loses to its top confusable
	// (default 0.06).
	SubRate float64
	// BurstRate is the per-position probability that a burst-noise region
	// starts there (default 0.03).
	BurstRate float64
	// BurstLen is how many positions a burst covers (default 6).
	BurstLen int
	// BurstSubRate replaces SubRate inside a burst (default 0.45).
	BurstSubRate float64
	// MaxAlts bounds the single-character confusables per position
	// (default 3).
	MaxAlts int
}

//lint:allow floateq the zero value means "field unset, apply the default" — an exact sentinel, not a computed probability
func (c ErrModelConfig) withDefaults() ErrModelConfig {
	if c.Words == 0 {
		c.Words = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.VocabSize == 0 {
		c.VocabSize = 200
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.SubRate == 0 {
		c.SubRate = 0.06
	}
	if c.BurstRate == 0 {
		c.BurstRate = 0.03
	}
	if c.BurstLen == 0 {
		c.BurstLen = 6
	}
	if c.BurstSubRate == 0 {
		c.BurstSubRate = 0.45
	}
	if c.MaxAlts == 0 {
		c.MaxAlts = 3
	}
	return c
}

// Validate bounds every knob. It expects a config that already went
// through withDefaults (zero values are rejected, not defaulted).
func (c ErrModelConfig) Validate() error {
	switch {
	case c.Words < 1 || c.Words > 100000:
		return fmt.Errorf("testgen: words must be in [1, 100000], got %d", c.Words)
	case c.VocabSize < 1 || c.VocabSize > 10000:
		return fmt.Errorf("testgen: vocab must be in [1, 10000], got %d", c.VocabSize)
	case math.IsNaN(c.ZipfS) || c.ZipfS <= 0 || c.ZipfS > 8:
		return fmt.Errorf("testgen: zipf must be in (0, 8], got %v", c.ZipfS)
	case math.IsNaN(c.SubRate) || c.SubRate < 0 || c.SubRate > 1:
		return fmt.Errorf("testgen: subrate must be in [0, 1], got %v", c.SubRate)
	case math.IsNaN(c.BurstRate) || c.BurstRate < 0 || c.BurstRate > 1:
		return fmt.Errorf("testgen: burstrate must be in [0, 1], got %v", c.BurstRate)
	case c.BurstLen < 1 || c.BurstLen > 1024:
		return fmt.Errorf("testgen: burstlen must be in [1, 1024], got %d", c.BurstLen)
	case math.IsNaN(c.BurstSubRate) || c.BurstSubRate < 0 || c.BurstSubRate > 1:
		return fmt.Errorf("testgen: burstsubrate must be in [0, 1], got %v", c.BurstSubRate)
	case c.MaxAlts < 1 || c.MaxAlts > 8:
		return fmt.Errorf("testgen: maxalts must be in [1, 8], got %d", c.MaxAlts)
	}
	return nil
}

// ParseErrModelConfig parses a "key=value,key=value" spec — the CLI and
// benchmark wire format — into a validated config. The empty string
// selects all defaults. Keys: words, seed, vocab, zipf, subrate,
// burstrate, burstlen, burstsubrate, maxalts.
func ParseErrModelConfig(s string) (ErrModelConfig, error) {
	var cfg ErrModelConfig
	if t := strings.TrimSpace(s); t != "" {
		for _, part := range strings.Split(t, ",") {
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				return cfg, fmt.Errorf("testgen: bad error-model field %q (want key=value)", part)
			}
			key := strings.ToLower(strings.TrimSpace(kv[0]))
			val := strings.TrimSpace(kv[1])
			var err error
			switch key {
			case "words":
				cfg.Words, err = strconv.Atoi(val)
			case "seed":
				cfg.Seed, err = strconv.ParseInt(val, 10, 64)
			case "vocab":
				cfg.VocabSize, err = strconv.Atoi(val)
			case "zipf":
				cfg.ZipfS, err = strconv.ParseFloat(val, 64)
			case "subrate":
				cfg.SubRate, err = strconv.ParseFloat(val, 64)
			case "burstrate":
				cfg.BurstRate, err = strconv.ParseFloat(val, 64)
			case "burstlen":
				cfg.BurstLen, err = strconv.Atoi(val)
			case "burstsubrate":
				cfg.BurstSubRate, err = strconv.ParseFloat(val, 64)
			case "maxalts":
				cfg.MaxAlts, err = strconv.Atoi(val)
			default:
				return cfg, fmt.Errorf("testgen: unknown error-model key %q", key)
			}
			if err != nil {
				return cfg, fmt.Errorf("testgen: error-model %s=%q: %v", key, val, err)
			}
		}
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return ErrModelConfig{}, err
	}
	return cfg, nil
}

// String renders the config back into ParseErrModelConfig's wire form.
func (c ErrModelConfig) String() string {
	return fmt.Sprintf("words=%d,seed=%d,vocab=%d,zipf=%g,subrate=%g,burstrate=%g,burstlen=%d,burstsubrate=%g,maxalts=%d",
		c.Words, c.Seed, c.VocabSize, c.ZipfS, c.SubRate, c.BurstRate, c.BurstLen, c.BurstSubRate, c.MaxAlts)
}

// errConfusable is one weighted entry of the confusion matrix.
type errConfusable struct {
	r rune
	w float64
}

// errConfusions is the weighted OCR confusion matrix. Weights are
// relative frequencies, not probabilities; the generator scales them into
// whatever mass a position grants its confusables. The digit swaps (l↔1,
// o↔0, s↔5, b↔8) dominate their rows, matching scanner behaviour on
// degraded print.
var errConfusions = map[rune][]errConfusable{
	'l': {{'1', 5}, {'i', 3}, {'t', 1}},
	'i': {{'l', 4}, {'1', 3}, {'j', 1}},
	'o': {{'0', 5}, {'c', 2}, {'e', 1}},
	'c': {{'o', 3}, {'e', 2}, {'(', 1}},
	'e': {{'c', 3}, {'o', 2}, {'a', 1}},
	's': {{'5', 4}, {'z', 2}, {'x', 1}},
	'z': {{'2', 3}, {'s', 2}},
	'b': {{'8', 3}, {'h', 2}, {'6', 1}},
	'g': {{'9', 3}, {'q', 2}, {'y', 1}},
	'q': {{'g', 3}, {'p', 1}},
	'a': {{'o', 3}, {'e', 2}, {'u', 1}},
	'u': {{'v', 3}, {'w', 1}},
	'v': {{'u', 3}, {'y', 1}},
	'h': {{'b', 3}, {'n', 2}, {'k', 1}},
	'n': {{'m', 3}, {'r', 2}, {'h', 1}},
	'm': {{'n', 3}, {'w', 1}},
	't': {{'f', 3}, {'l', 2}, {'+', 1}},
	'f': {{'t', 3}, {'r', 1}},
	'r': {{'n', 2}, {'t', 1}},
}

// errSplits maps a character to the two-character sequence OCR engines
// read it as (the transducer routes it through an extra mid state), and
// errMerges the inverse: a two-character truth sequence read as one.
var errSplits = map[rune]string{
	'm': "rn",
	'w': "vv",
	'd': "cl",
}

var errMerges = map[string]rune{
	"rn": 'm',
	"vv": 'w',
	"cl": 'd',
}

// errVocabSeed fixes the vocabulary PRNG. The vocabulary is a function of
// VocabSize alone — never of a document's Seed — so every document of a
// corpus, and every corpus at the same VocabSize, shares tokens.
const errVocabSeed = 0x57acca70

// Vocab returns the shared error-model vocabulary of the given size —
// the exact word list GenerateErrModel draws tokens from at the same
// VocabSize. Exposed so consumers (the CLI's built-in fuzzy-rescoring
// lexicon, benchmarks) can hold the dictionary the synthetic corpus was
// written in.
func Vocab(size int) []string { return errVocab(size) }

// errVocab builds the shared vocabulary: size distinct lowercase words of
// length 4..8, rank order fixed by generation order (rank 0 is the most
// frequent under the Zipf draw).
func errVocab(size int) []string {
	rng := rand.New(rand.NewSource(errVocabSeed))
	seen := make(map[string]bool, size)
	out := make([]string, 0, size)
	for len(out) < size {
		n := 4 + rng.Intn(5)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		w := sb.String()
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// zipfCum precomputes the cumulative Zipf weights sum_{i<=r} i^-s.
func zipfCum(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	return cum
}

// zipfSample draws a rank from the cumulative weights.
func zipfSample(rng *rand.Rand, cum []float64) int {
	u := rng.Float64() * cum[len(cum)-1]
	idx := sort.SearchFloat64s(cum, u)
	if idx >= len(cum) {
		idx = len(cum) - 1
	}
	return idx
}

// GenerateErrModel fabricates one document under the error model: the
// ground truth (Zipf-drawn tokens from the shared vocabulary) and an SFST
// whose arc probabilities reflect the injected noise — weighted
// confusions, splits, merges, and burst regions. The same config always
// yields the same (truth, SFST) pair.
func GenerateErrModel(cfg ErrModelConfig) (string, *fst.SFST, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return "", nil, err
	}
	vocab := errVocab(cfg.VocabSize)
	cum := zipfCum(cfg.VocabSize, cfg.ZipfS)
	rng := rand.New(rand.NewSource(cfg.Seed))

	toks := make([]string, cfg.Words)
	for i := range toks {
		toks[i] = vocab[zipfSample(rng, cum)]
	}
	truth := strings.Join(toks, " ")
	runes := []rune(truth)

	// Burst mask: each position may start a burst covering the next
	// BurstLen positions; overlaps just extend the smudge.
	burst := make([]bool, len(runes))
	for i := range runes {
		if rng.Float64() < cfg.BurstRate {
			for j := i; j < len(runes) && j < i+cfg.BurstLen; j++ {
				burst[j] = true
			}
		}
	}

	b := fst.NewBuilder()
	states := make([]fst.StateID, len(runes)+1)
	for i := range states {
		states[i] = b.AddState()
	}
	b.SetStart(states[0])
	b.SetFinal(states[len(runes)])
	for i := range runes {
		addErrPosition(b, rng, cfg, states, runes, i, burst[i])
	}
	f, err := b.Build()
	if err != nil {
		return "", nil, fmt.Errorf("testgen: error model: %w", err)
	}
	return truth, f, nil
}

// addErrPosition emits the arcs reading truth position i: the true
// character, weighted confusables (hard positions give the top confusable
// more mass than the truth), an optional split through a mid state, and —
// when positions i,i+1 form a mergeable pair — a jump arc straight to
// state i+2 reading both as one character. Outgoing probability mass at
// states[i] always sums to 1.
func addErrPosition(b *fst.Builder, rng *rand.Rand, cfg ErrModelConfig, states []fst.StateID, runes []rune, i int, inBurst bool) {
	cur, next := states[i], states[i+1]
	t := runes[i]
	if t == ' ' {
		// Token boundaries are read reliably; keeping them certain keeps
		// keyword tokenization aligned between truth and readings.
		b.AddArc(cur, next, t, core.WeightFromProb(1))
		return
	}
	rate := cfg.SubRate
	if inBurst {
		rate = cfg.BurstSubRate
	}
	hard := rng.Float64() < rate
	remaining := 1.0

	// Merge: the pair starting here read as one character, jumping over
	// state i+1. The jumped-over state keeps its own arcs for the paths
	// that do pass through it.
	if i+2 < len(states) {
		if merged, ok := errMerges[string(runes[i:i+2])]; ok && rng.Float64() < rate {
			pMerge := remaining * (0.08 + 0.12*rng.Float64())
			b.AddArc(cur, states[i+2], merged, core.WeightFromProb(pMerge))
			remaining -= pMerge
		}
	}
	// Split: this character read as two, through a fresh mid state.
	if s, ok := errSplits[t]; ok && rng.Float64() < rate {
		pSplit := remaining * (0.08 + 0.12*rng.Float64())
		mid := b.AddState()
		r := []rune(s)
		b.AddArc(cur, mid, r[0], core.WeightFromProb(pSplit))
		b.AddArc(mid, next, r[1], core.WeightFromProb(1))
		remaining -= pSplit
	}

	alts := pickErrConfusables(rng, cfg, t)
	var pTrue float64
	probs := make([]float64, len(alts))
	if hard {
		// The top confusable strictly beats the truth, so Viterbi decodes
		// the wrong character here — the recall gap's raw material.
		pTrue = remaining * (0.12 + 0.10*rng.Float64())
		if len(alts) == 1 {
			// The lone confusable absorbs everything the truth lost.
			probs[0] = remaining - pTrue
		} else {
			top := remaining * (0.50 + 0.10*rng.Float64())
			probs[0] = top
			spreadErrWeights(alts[1:], probs[1:], remaining-pTrue-top)
		}
	} else {
		pTrue = remaining * (0.70 + 0.25*rng.Float64())
		spreadErrWeights(alts, probs, remaining-pTrue)
	}
	b.AddArc(cur, next, t, core.WeightFromProb(pTrue))
	for j, a := range alts {
		if probs[j] > 0 {
			b.AddArc(cur, next, a.r, core.WeightFromProb(probs[j]))
		}
	}
}

// spreadErrWeights distributes mass over alts proportionally to their
// matrix weights.
func spreadErrWeights(alts []errConfusable, probs []float64, mass float64) {
	if len(alts) == 0 || mass <= 0 {
		return
	}
	total := 0.0
	for _, a := range alts {
		total += a.w
	}
	if total <= 0 {
		return
	}
	for j, a := range alts {
		probs[j] = mass * a.w / total
	}
}

// pickErrConfusables returns 1..MaxAlts distinct single-rune confusables
// for t in descending weight order, drawn from the weighted matrix and
// topped up with random letters (weight 1) when the row is short.
func pickErrConfusables(rng *rand.Rand, cfg ErrModelConfig, t rune) []errConfusable {
	n := 1 + rng.Intn(cfg.MaxAlts)
	seen := map[rune]bool{t: true}
	var out []errConfusable
	for _, c := range errConfusions[t] {
		if len(out) == n {
			break
		}
		if !seen[c.r] {
			seen[c.r] = true
			out = append(out, c)
		}
	}
	for len(out) < n {
		c := rune(letters[rng.Intn(len(letters))])
		if !seen[c] {
			seen[c] = true
			out = append(out, errConfusable{c, 1})
		}
	}
	return out
}

// EachErrDoc streams n error-model documents, one at a time like EachDoc:
// the i-th document uses seed cfg.Seed+i and carries the ID "doc-%04d"
// (1-based), approximated at the (chunks, k) dial.
func EachErrDoc(n int, cfg ErrModelConfig, chunks, k int, fn func(DocCase) error) error {
	if n < 0 {
		return fmt.Errorf("testgen: corpus size must be >= 0, got %d", n)
	}
	cfg = cfg.withDefaults()
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		truth, f, err := GenerateErrModel(c)
		if err != nil {
			return err
		}
		d, err := staccato.Build(f, fmt.Sprintf("doc-%04d", i+1), chunks, k)
		if err != nil {
			return fmt.Errorf("testgen: error-model doc %d: %w", i+1, err)
		}
		if err := fn(DocCase{Truth: truth, Doc: d}); err != nil {
			return err
		}
	}
	return nil
}

// ErrDocs collects EachErrDoc's stream.
func ErrDocs(n int, cfg ErrModelConfig, chunks, k int) ([]DocCase, error) {
	out := make([]DocCase, 0, max(n, 0))
	if err := EachErrDoc(n, cfg, chunks, k, func(dc DocCase) error {
		out = append(out, dc)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ErrCorpusFSTs generates n (truth, SFST) pairs under the error model —
// the raw transducers the FullSFST recall baseline evaluates directly.
func ErrCorpusFSTs(n int, cfg ErrModelConfig) ([]Case, error) {
	if n < 0 {
		return nil, fmt.Errorf("testgen: corpus size must be >= 0, got %d", n)
	}
	cfg = cfg.withDefaults()
	out := make([]Case, n)
	for i := range out {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		truth, f, err := GenerateErrModel(c)
		if err != nil {
			return nil, err
		}
		out[i] = Case{Truth: truth, FST: f}
	}
	return out, nil
}
