package recallbench

import (
	"context"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
)

// TestRecallMonotonicityProperty is the PR's recall-monotonicity
// property: across seeds, retrieval sets are nested — every document MAP
// retrieves is retrieved by Staccato at any dial, and every document
// Staccato retrieves is retrieved by the FullSFST oracle. Averaged
// recalls inherit the same ordering. The nesting is structural (the MAP
// reading is retained at every dial with k >= 1, and every retained
// reading is an accepting path of the transducer), so a single violation
// is a bug, not noise.
func TestRecallMonotonicityProperty(t *testing.T) {
	ctx := context.Background()
	dials := []Dial{{3, 2}, {5, 3}, {8, 4}}
	for _, seed := range []int64{1, 101, 5001} {
		r, err := newRun(Options{
			Docs:      60,
			Model:     testgen.ErrModelConfig{Words: 10, Seed: seed},
			Queries:   8,
			QuerySeed: seed,
			Dials:     dials,
			Default:   dials[1],
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range dials {
			sets, _, err := r.dialSets(ctx, d)
			if err != nil {
				t.Fatalf("seed %d dial %s: %v", seed, d, err)
			}
			for qi, term := range r.terms {
				for id := range r.mapSets[qi] {
					if !sets[qi][id] {
						t.Errorf("seed %d dial %s term %q: MAP retrieves %s but Staccato does not",
							seed, d, term, id)
					}
				}
				for id := range sets[qi] {
					if !r.fullSets[qi][id] {
						t.Errorf("seed %d dial %s term %q: Staccato retrieves %s but the FullSFST oracle does not",
							seed, d, term, id)
					}
				}
			}
			staccatoRecall := r.recallOf(sets)
			if mapRecall := r.recallOf(r.mapSets); staccatoRecall < mapRecall {
				t.Errorf("seed %d dial %s: staccato recall %v below MAP recall %v",
					seed, d, staccatoRecall, mapRecall)
			}
			if fullRecall := r.recallOf(r.fullSets); staccatoRecall > fullRecall {
				t.Errorf("seed %d dial %s: staccato recall %v above FullSFST recall %v",
					seed, d, staccatoRecall, fullRecall)
			}
		}
	}
}

// TestFullRecallIsOne pins the oracle invariant the gate leans on: the
// ground truth is an accepting path of its own transducer, so the
// FullSFST baseline retrieves every relevant document.
func TestFullRecallIsOne(t *testing.T) {
	r, err := newRun(Options{Docs: 40, Model: testgen.ErrModelConfig{Words: 10, Seed: 3}, Queries: 6})
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow floateq full recall is a ratio of equal integer counts, exactly 1 by construction
	if got := r.recallOf(r.fullSets); got != 1 {
		t.Fatalf("FullSFST recall = %v, want exactly 1", got)
	}
}

// TestRunReportShape runs a small end-to-end benchmark and checks the
// artifact's internal consistency: the default dial's entry carries the
// headline number, the sweep covers every requested dial, and the gate
// booleans match the recalls they summarize.
func TestRunReportShape(t *testing.T) {
	rep, err := Run(context.Background(), Options{
		Docs:    80,
		Model:   testgen.ErrModelConfig{Words: 10, Seed: 7},
		Queries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Docs != 80 || len(rep.Queries) == 0 {
		t.Fatalf("report header incomplete: %+v", rep)
	}
	if len(rep.Dials) != 3 {
		t.Fatalf("default sweep has %d dials, want 3: %+v", len(rep.Dials), rep)
	}
	found := false
	for _, d := range rep.Dials {
		if (Dial{d.Chunks, d.K}) == rep.DefaultDial {
			found = true
			//lint:allow floateq the headline number is copied from this entry, not recomputed
			if d.Recall != rep.StaccatoRecall {
				t.Errorf("default dial recall %v != staccato_recall %v", d.Recall, rep.StaccatoRecall)
			}
		}
		if d.Recall < 0 || d.Recall > 1 || d.AvgPrecision < 0 || d.AvgPrecision > 1 {
			t.Errorf("dial (%d,%d) metrics out of range: %+v", d.Chunks, d.K, d)
		}
		if d.PrecisionAtK < 0 || d.PrecisionAtK > 1 || d.MRR < 0 || d.MRR > 1 {
			t.Errorf("dial (%d,%d) ranking metrics out of range: %+v", d.Chunks, d.K, d)
		}
		// Retrieval is probability-ranked and every retrieved set here is
		// non-empty on the reference corpus, so a zero MRR would mean the
		// ranked lists never surface a single relevant document — a wiring
		// bug, not a quality finding.
		//lint:allow floateq MRR is a finite sum of exact reciprocals; 0 means no relevant hit at all
		if d.MRR == 0 {
			t.Errorf("dial (%d,%d) has MRR 0 on the reference corpus: %+v", d.Chunks, d.K, d)
		}
	}
	if !found {
		t.Fatalf("default dial %v missing from sweep %+v", rep.DefaultDial, rep.Dials)
	}
	if rep.GateMAPBeaten != (rep.StaccatoRecall > rep.MAPRecall) {
		t.Errorf("gate_map_beaten inconsistent with recalls: %+v", rep)
	}
	if rep.GateFullBound != (rep.StaccatoRecall <= rep.FullRecall) {
		t.Errorf("gate_full_bound inconsistent with recalls: %+v", rep)
	}
	// At these noise rates the benchmark's whole point must materialize:
	// a strict MAP < Staccato gap under the exact upper bound.
	if !rep.GateMAPBeaten || !rep.GateFullBound {
		t.Errorf("gates failed on the reference corpus: map=%v staccato=%v full=%v",
			rep.MAPRecall, rep.StaccatoRecall, rep.FullRecall)
	}
}
