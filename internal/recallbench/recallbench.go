// Package recallbench measures end-to-end retrieval quality on an
// error-model corpus: the same keyword workload is run against the MAP
// baseline (Viterbi strings only), the Staccato approximation at several
// (chunks, k) dial settings ingested through staccatodb, and the exact
// FullSFST oracle (query.EvalFST over the raw transducers). Retrieval is
// "match probability > 0" throughout, which makes the three recalls
// provably nested — MAP ≤ Staccato(c, k) ≤ Full = 1 — so the benchmark
// reproduces the paper's headline recall curve and its CI gate (Staccato
// strictly above MAP, never above Full) is structural, not statistical.
package recallbench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// Dial is one (chunks, k) approximation setting.
type Dial struct {
	Chunks int `json:"chunks"`
	K      int `json:"k"`
}

func (d Dial) String() string { return fmt.Sprintf("(%d,%d)", d.Chunks, d.K) }

// Options configures one benchmark run. Zero values take the documented
// defaults.
type Options struct {
	// Docs is the corpus size (default 200).
	Docs int
	// Model shapes the error-model corpus; its Seed seeds the whole run.
	Model testgen.ErrModelConfig
	// Queries is the keyword workload size (default 12).
	Queries int
	// QuerySeed seeds workload sampling (default 1).
	QuerySeed int64
	// Dials are the Staccato settings to sweep (default (4,2),(6,3),(8,4)).
	Dials []Dial
	// Default is the dial the gate booleans and the headline
	// staccato_recall number read (default (6,3); it is appended to Dials
	// if absent).
	Default Dial
}

func (o Options) withDefaults() Options {
	if o.Docs == 0 {
		o.Docs = 200
	}
	if o.Queries == 0 {
		o.Queries = 12
	}
	if o.QuerySeed == 0 {
		o.QuerySeed = 1
	}
	if len(o.Dials) == 0 {
		o.Dials = []Dial{{4, 2}, {6, 3}, {8, 4}}
	}
	if o.Default == (Dial{}) {
		o.Default = Dial{6, 3}
	}
	found := false
	for _, d := range o.Dials {
		if d == o.Default {
			found = true
		}
	}
	if !found {
		o.Dials = append(o.Dials, o.Default)
	}
	return o
}

// DialResult is one dial's sweep entry.
type DialResult struct {
	Chunks int `json:"chunks"`
	K      int `json:"k"`
	// Recall is the macro-averaged fraction of relevant documents
	// retrieved with probability > 0.
	Recall float64 `json:"recall"`
	// AvgPrecision is the macro-averaged average precision of the ranked
	// result lists — sensitive to ordering, unlike Recall.
	AvgPrecision float64 `json:"avg_precision"`
	// PrecisionAtK is the macro-averaged fraction of the top PrecisionK
	// ranked results that are relevant.
	PrecisionAtK float64 `json:"precision_at_k"`
	// MRR is the macro-averaged reciprocal rank of the first relevant
	// result (0 for a query whose ranked list has none).
	MRR float64 `json:"mrr"`
	// Retrieved is the mean retrieved-set size per query.
	Retrieved float64 `json:"retrieved"`
}

// PrecisionK is the ranked-list cutoff the sweep's PrecisionAtK metric
// reads.
const PrecisionK = 10

// Report is the benchmark's JSON artifact (BENCH_recall.json).
type Report struct {
	Docs    int      `json:"docs"`
	Model   string   `json:"model"`
	Queries []string `json:"queries"`
	// MAPRecall is the Viterbi-strings-only baseline.
	MAPRecall float64 `json:"map_recall"`
	// StaccatoRecall is the default dial's recall.
	StaccatoRecall float64 `json:"staccato_recall"`
	// FullRecall is the exact FullSFST oracle's recall (always 1: the
	// ground truth is an accepting path of its own transducer).
	FullRecall  float64      `json:"full_recall"`
	DefaultDial Dial         `json:"default_dial"`
	Dials       []DialResult `json:"dials"`
	// GateMAPBeaten: the default dial's recall strictly exceeds MAP's —
	// the approximation is buying real recall, the paper's headline claim.
	GateMAPBeaten bool `json:"gate_map_beaten"`
	// GateFullBound: the default dial's recall does not exceed the exact
	// oracle's — the approximation never hallucinates relevant documents.
	GateFullBound bool `json:"gate_full_bound"`
}

// run holds one benchmark's materialized state, shared between Run and
// the property tests (which need the raw retrieval sets, not just the
// averaged recalls).
type run struct {
	opts     Options
	cases    []testgen.Case
	terms    []string
	relevant []map[string]bool // per term: doc IDs whose truth contains it
	queries  []*query.Query
	mapSets  []map[string]bool // per term: MAP-baseline retrieval set
	fullSets []map[string]bool // per term: FullSFST retrieval set
}

// docID matches testgen.EachErrDoc's naming, so DB results join back to
// the corpus.
func docID(i int) string { return fmt.Sprintf("doc-%04d", i+1) }

// newRun generates the corpus, samples the workload, and evaluates the
// MAP and FullSFST baselines.
func newRun(opts Options) (*run, error) {
	opts = opts.withDefaults()
	r := &run{opts: opts}
	var err error
	if r.cases, err = testgen.ErrCorpusFSTs(opts.Docs, opts.Model); err != nil {
		return nil, err
	}

	// Workload: distinct tokens of length >= 4 sampled from random
	// truths, so every query has a non-empty relevant set.
	rng := rand.New(rand.NewSource(opts.QuerySeed))
	seen := map[string]bool{}
	for attempts := 0; len(r.terms) < opts.Queries && attempts < opts.Queries*200; attempts++ {
		toks := strings.Fields(r.cases[rng.Intn(len(r.cases))].Truth)
		if len(toks) == 0 {
			continue
		}
		tok := toks[rng.Intn(len(toks))]
		if len(tok) < 4 || seen[tok] {
			continue
		}
		seen[tok] = true
		r.terms = append(r.terms, tok)
	}
	if len(r.terms) == 0 {
		return nil, fmt.Errorf("recallbench: sampled no workload terms from %d documents", len(r.cases))
	}
	sort.Strings(r.terms)

	r.queries = make([]*query.Query, len(r.terms))
	r.relevant = make([]map[string]bool, len(r.terms))
	r.mapSets = make([]map[string]bool, len(r.terms))
	r.fullSets = make([]map[string]bool, len(r.terms))
	for qi, term := range r.terms {
		q, err := query.Keyword(term)
		if err != nil {
			return nil, fmt.Errorf("recallbench: term %q: %w", term, err)
		}
		r.queries[qi] = q
		r.relevant[qi] = map[string]bool{}
		r.mapSets[qi] = map[string]bool{}
		r.fullSets[qi] = map[string]bool{}
		for i, c := range r.cases {
			id := docID(i)
			if hasToken(c.Truth, term) {
				r.relevant[qi][id] = true
			}
			// MAP baseline: retrieval over the Viterbi string alone.
			if matched, _ := q.MatchText(c.FST.Viterbi().Output); matched {
				r.mapSets[qi][id] = true
			}
			// FullSFST oracle: exact positive-probability retrieval over
			// the raw transducer.
			p, err := q.EvalFST(c.FST)
			if err != nil {
				return nil, fmt.Errorf("recallbench: EvalFST doc %s term %q: %w", id, term, err)
			}
			if p > 0 {
				r.fullSets[qi][id] = true
			}
		}
	}
	return r, nil
}

// hasToken reports whether truth contains term as a whole token.
func hasToken(truth, term string) bool {
	for _, tok := range strings.Fields(truth) {
		if tok == term {
			return true
		}
	}
	return false
}

// recallOf macro-averages |retrieved ∩ relevant| / |relevant| over the
// workload, skipping queries with no relevant documents.
func (r *run) recallOf(sets []map[string]bool) float64 {
	var sum float64
	n := 0
	for qi, rel := range r.relevant {
		if len(rel) == 0 {
			continue
		}
		hit := 0
		for id := range rel {
			if sets[qi][id] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(rel))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// dialSets builds the corpus at one dial, ingests it into an in-memory
// staccatodb, and runs the workload end to end through Search, returning
// per-query retrieval sets and ranked ID lists.
func (r *run) dialSets(ctx context.Context, d Dial) ([]map[string]bool, [][]string, error) {
	sets := make([]map[string]bool, len(r.queries))
	ranked := make([][]string, len(r.queries))
	db, err := staccatodb.OpenMem()
	if err != nil {
		return nil, nil, err
	}
	defer db.Close()
	const batch = 128
	docs := make([]*staccato.Doc, 0, batch)
	flush := func() error {
		if len(docs) == 0 {
			return nil
		}
		err := db.Ingest(ctx, docs)
		docs = docs[:0]
		return err
	}
	for i, c := range r.cases {
		doc, err := staccato.Build(c.FST, docID(i), d.Chunks, d.K)
		if err != nil {
			return nil, nil, fmt.Errorf("recallbench: build %s at %s: %w", docID(i), d, err)
		}
		docs = append(docs, doc)
		if len(docs) == batch {
			if err := flush(); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, nil, err
	}
	for qi, q := range r.queries {
		results, _, err := db.Search(ctx, q, query.SearchOptions{})
		if err != nil {
			return nil, nil, fmt.Errorf("recallbench: search %q at %s: %w", r.terms[qi], d, err)
		}
		sets[qi] = map[string]bool{}
		for _, res := range results {
			ranked[qi] = append(ranked[qi], res.DocID)
			sets[qi][res.DocID] = true
		}
	}
	return sets, ranked, nil
}

// avgPrecision macro-averages the ranked lists' average precision.
func (r *run) avgPrecision(ranked [][]string) float64 {
	var sum float64
	n := 0
	for qi, rel := range r.relevant {
		if len(rel) == 0 {
			continue
		}
		hits, ap := 0, 0.0
		for rank, id := range ranked[qi] {
			if rel[id] {
				hits++
				ap += float64(hits) / float64(rank+1)
			}
		}
		sum += ap / float64(len(rel))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// precisionAtK macro-averages the fraction of each ranked list's top k
// entries that are relevant, over queries with a non-empty relevant set.
// A list shorter than k is charged for the missing slots — retrieving
// too little costs precision@k just as retrieving junk does.
func (r *run) precisionAtK(ranked [][]string, k int) float64 {
	var sum float64
	n := 0
	for qi, rel := range r.relevant {
		if len(rel) == 0 {
			continue
		}
		hits := 0
		for rank, id := range ranked[qi] {
			if rank >= k {
				break
			}
			if rel[id] {
				hits++
			}
		}
		sum += float64(hits) / float64(k)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// mrr macro-averages the reciprocal rank of the first relevant result,
// over queries with a non-empty relevant set.
func (r *run) mrr(ranked [][]string) float64 {
	var sum float64
	n := 0
	for qi, rel := range r.relevant {
		if len(rel) == 0 {
			continue
		}
		for rank, id := range ranked[qi] {
			if rel[id] {
				sum += 1 / float64(rank+1)
				break
			}
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Run executes the benchmark and assembles the report.
func Run(ctx context.Context, opts Options) (*Report, error) {
	r, err := newRun(opts)
	if err != nil {
		return nil, err
	}
	opts = r.opts
	rep := &Report{
		Docs:        opts.Docs,
		Model:       opts.Model.String(),
		Queries:     r.terms,
		MAPRecall:   r.recallOf(r.mapSets),
		FullRecall:  r.recallOf(r.fullSets),
		DefaultDial: opts.Default,
	}
	for _, d := range opts.Dials {
		sets, ranked, err := r.dialSets(ctx, d)
		if err != nil {
			return nil, err
		}
		var retrieved float64
		for _, s := range sets {
			retrieved += float64(len(s))
		}
		dr := DialResult{
			Chunks:       d.Chunks,
			K:            d.K,
			Recall:       r.recallOf(sets),
			AvgPrecision: r.avgPrecision(ranked),
			PrecisionAtK: r.precisionAtK(ranked, PrecisionK),
			MRR:          r.mrr(ranked),
			Retrieved:    retrieved / float64(len(sets)),
		}
		rep.Dials = append(rep.Dials, dr)
		if d == opts.Default {
			rep.StaccatoRecall = dr.Recall
		}
	}
	rep.GateMAPBeaten = rep.StaccatoRecall > rep.MAPRecall
	rep.GateFullBound = rep.StaccatoRecall <= rep.FullRecall
	return rep, nil
}
