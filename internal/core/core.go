package core
