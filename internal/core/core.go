// Package core provides the shared numeric primitives used throughout the
// Staccato system. Probabilities are carried in the negative-log domain
// ("weights"): an arc with probability p has weight -ln(p), so path weights
// add and the minimum-weight path is the maximum-a-posteriori (MAP) path.
// Keeping conversions and log-domain sums here gives every layer (fst,
// staccato, query) one consistent, numerically careful implementation.
package core

import (
	"math"
	"unicode"
)

// InfWeight is the weight of an impossible event (probability zero).
var InfWeight = math.Inf(1)

// WeightFromProb converts a probability in [0, 1] to a negative-log weight.
// Probabilities of zero (or below, from rounding) map to InfWeight.
func WeightFromProb(p float64) float64 {
	if p <= 0 {
		return InfWeight
	}
	return -math.Log(p)
}

// ProbFromWeight converts a negative-log weight back to a probability.
func ProbFromWeight(w float64) float64 {
	return math.Exp(-w)
}

// LogAddWeights returns the weight of the union of two disjoint events given
// their weights: -ln(e^-a + e^-b), computed stably even when a and b are
// large.
func LogAddWeights(a, b float64) float64 {
	if math.IsInf(a, 1) {
		return b
	}
	if math.IsInf(b, 1) {
		return a
	}
	if b < a {
		a, b = b, a
	}
	// a <= b, so e^-a dominates: -ln(e^-a (1 + e^{a-b})).
	return a - math.Log1p(math.Exp(a-b))
}

// ProbEps is the tolerance ProbEq compares under. Probabilities in this
// codebase come out of log-domain accumulation (LogAddWeights) and
// exp/log round trips, which cost a few ulps per arc; 1e-12 absorbs that
// noise while staying far below any probability mass the ranking layers
// treat as meaningful.
const ProbEps = 1e-12

// ProbEq reports whether two probabilities are equal to within ProbEps.
// Use it instead of == whenever two independently accumulated
// probabilities are compared; exact float equality is reserved for
// sort-comparator tie-breaks and zero-sentinel checks, which must be
// annotated //lint:allow floateq where they occur.
func ProbEq(a, b float64) bool {
	return math.Abs(a-b) <= ProbEps
}

// StringFromReversed builds a string from runes collected in reverse
// order — the shape every backpointer traceback (Viterbi, top-k paths)
// produces.
func StringFromReversed(rev []rune) string {
	out := make([]rune, len(rev))
	for i, r := range rev {
		out[len(rev)-1-i] = r
	}
	return string(out)
}

// IsWordRune reports whether r counts as a word character for keyword
// (token-boundary) matching: letters and digits are word runes, everything
// else — space, punctuation, the chunk padding — is a boundary.
func IsWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}
