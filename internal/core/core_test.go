package core

import (
	"math"
	"testing"
)

func TestWeightProbRoundTrip(t *testing.T) {
	for _, p := range []float64{1, 0.5, 0.01, 1e-30} {
		if got := ProbFromWeight(WeightFromProb(p)); math.Abs(got-p) > 1e-12*p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
	if !math.IsInf(WeightFromProb(0), 1) {
		t.Errorf("WeightFromProb(0) = %v, want +Inf", WeightFromProb(0))
	}
	if got := ProbFromWeight(InfWeight); got != 0 {
		t.Errorf("ProbFromWeight(+Inf) = %v, want 0", got)
	}
}

func TestLogAddWeights(t *testing.T) {
	// -ln(0.3) ⊕ -ln(0.2) should be -ln(0.5).
	got := LogAddWeights(WeightFromProb(0.3), WeightFromProb(0.2))
	want := WeightFromProb(0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LogAddWeights = %v, want %v", got, want)
	}
	// Symmetric.
	if a, b := LogAddWeights(1, 7), LogAddWeights(7, 1); math.Abs(a-b) > 1e-12 {
		t.Errorf("not symmetric: %v vs %v", a, b)
	}
	// Identity with the impossible event.
	if got := LogAddWeights(InfWeight, 2.5); got != 2.5 {
		t.Errorf("LogAddWeights(Inf, 2.5) = %v", got)
	}
	if got := LogAddWeights(2.5, InfWeight); got != 2.5 {
		t.Errorf("LogAddWeights(2.5, Inf) = %v", got)
	}
	// Stable for large weights: -ln(2e-200) without underflow.
	w := WeightFromProb(1e-200)
	if got, want := LogAddWeights(w, w), w-math.Log(2); math.Abs(got-want) > 1e-9 {
		t.Errorf("large-weight sum = %v, want %v", got, want)
	}
}

func TestIsWordRune(t *testing.T) {
	for _, r := range "abzA9é" {
		if !IsWordRune(r) {
			t.Errorf("IsWordRune(%q) = false", r)
		}
	}
	for _, r := range " .,-\t'" {
		if IsWordRune(r) {
			t.Errorf("IsWordRune(%q) = true", r)
		}
	}
}

func TestProbEq(t *testing.T) {
	if !ProbEq(0.5, 0.5) {
		t.Errorf("ProbEq(0.5, 0.5) = false")
	}
	// Differences at the accumulated-rounding scale are equal...
	if !ProbEq(0.5, 0.5+ProbEps/2) {
		t.Errorf("ProbEq did not absorb sub-epsilon noise")
	}
	if !ProbEq(0.5+ProbEps/2, 0.5) {
		t.Errorf("ProbEq is not symmetric")
	}
	// ...but anything meaningfully apart is not.
	if ProbEq(0.5, 0.5+2*ProbEps) {
		t.Errorf("ProbEq equated values %v apart", 2*ProbEps)
	}
	if ProbEq(0, 1) {
		t.Errorf("ProbEq(0, 1) = true")
	}
	// A round trip through the log domain lands within ProbEps.
	if p := 0.37; !ProbEq(p, ProbFromWeight(WeightFromProb(p))) {
		t.Errorf("log-domain round trip of %v drifted past ProbEps", p)
	}
}
