package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadModulePackage loads one real package of the enclosing module
// and checks the fields analyzers rely on.
func TestLoadModulePackage(t *testing.T) {
	l, err := New("")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pkgs, err := l.Load("./internal/core")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.RelPath != "internal/core" {
		t.Errorf("RelPath = %q, want internal/core", p.RelPath)
	}
	if !strings.HasSuffix(p.PkgPath, "/internal/core") {
		t.Errorf("PkgPath = %q, want a /internal/core import path", p.PkgPath)
	}
	if p.Types == nil || p.Types.Scope().Lookup("ProbEq") == nil {
		t.Errorf("package was not typechecked: ProbEq not found in scope")
	}
	if len(p.Files) == 0 || p.Info == nil {
		t.Errorf("package is missing files or type info")
	}
}

// TestLoadSkipsFixtureDirs expands ./... under a subtree that contains
// testdata fixtures and checks none of them leak into the result.
func TestLoadSkipsFixtureDirs(t *testing.T) {
	l, err := New("")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pkgs, err := l.Load("./internal/analysis/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Load matched no packages under internal/analysis")
	}
	for _, p := range pkgs {
		if strings.Contains(p.RelPath, "testdata") {
			t.Errorf("Load leaked fixture package %q", p.RelPath)
		}
	}
}

// TestLoadDirStdlibOnly checks the bare loader used by analysistest:
// no module context, stdlib imports typechecked from source.
func TestLoadDirStdlibOnly(t *testing.T) {
	dir := t.TempDir()
	src := `package fix

import "sort"

func Sorted(xs []string) []string {
	sort.Strings(xs)
	return xs
}
`
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := NewBare().LoadDir(dir, "pkg/fix")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if p.RelPath != "pkg/fix" {
		t.Errorf("RelPath = %q, want the import path verbatim", p.RelPath)
	}
	if p.Types.Scope().Lookup("Sorted") == nil {
		t.Errorf("fixture was not typechecked: Sorted not found")
	}
}

// TestLoadHardTypeErrorFails ensures broken source is an error, not a
// silently half-analyzed package.
func TestLoadHardTypeErrorFails(t *testing.T) {
	dir := t.TempDir()
	src := `package fix

func Broken() int {
	return "not an int"
}
`
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBare().LoadDir(dir, "fix"); err == nil {
		t.Fatalf("LoadDir typechecked a package with a hard type error")
	}
}
