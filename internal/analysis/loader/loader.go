// Package loader parses and type-checks packages for the staccatolint
// analyzers using only the standard library. It is the stand-in for
// golang.org/x/tools/go/packages, which the build environment does not
// provide: packages inside the enclosing module are located by walking
// the module tree, and imports outside it (the standard library) are
// type-checked from source through go/importer's "source" compiler.
//
// The loader analyzes each package's non-test compilation units — the
// same set `go build` compiles — selected per the host build context
// with cgo disabled, so a run's findings do not depend on CGO_ENABLED.
package loader

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("github.com/.../pkg/query", or the
	// bare fixture path for LoadDir).
	PkgPath string
	// RelPath is PkgPath relative to the module root, or PkgPath itself
	// outside a module.
	RelPath string
	// Dir is the directory holding the package's sources.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages of one module (or bare directories, for
// analysistest fixtures). It caches type-checked imports, so loading
// every package of the repo type-checks each dependency — standard
// library included — once. A Loader is not safe for concurrent use.
type Loader struct {
	fset    *token.FileSet
	ctxt    build.Context
	std     types.ImporterFrom
	modPath string
	modRoot string
	// cache maps import path → type-checked package for module-internal
	// imports; the source importer keeps its own cache for the rest.
	cache map[string]*types.Package
	// loading guards against import cycles while recursing.
	loading map[string]bool
}

// New returns a Loader rooted at the module containing dir (the nearest
// ancestor with a go.mod). Pass "" to root at the current directory.
func New(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.modPath = modPath
	l.modRoot = root
	return l, nil
}

// NewBare returns a Loader with no module: every import resolves
// through the standard library importer. LoadDir is the only useful
// entry point on a bare loader; analysistest uses it for fixtures.
func NewBare() *Loader {
	return newLoader()
}

func newLoader() *Loader {
	l := &Loader{
		fset:    token.NewFileSet(),
		ctxt:    build.Default,
		cache:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	// Findings must not depend on the host's CGO_ENABLED: with cgo off,
	// the build context and the source importer both select the pure-Go
	// variants of cgo-optional packages (net, os/user).
	l.ctxt.CgoEnabled = false
	build.Default.CgoEnabled = false
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	return l
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			mp := parseModulePath(data)
			if mp == "" {
				return "", "", fmt.Errorf("loader: %s/go.mod has no module directive", dir)
			}
			return dir, mp, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", errors.New("loader: no go.mod found in any parent directory")
		}
		dir = parent
	}
}

func parseModulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load resolves the given patterns to module packages and type-checks
// each. Supported patterns are the `go build` local forms: "./..."
// (every package under the module root), "./dir/..." (a subtree), and
// "./dir" (one package). Results are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if l.modRoot == "" {
		return nil, errors.New("loader: Load requires a module-rooted loader")
	}
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		if err := l.expandPattern(pat, dirs); err != nil {
			return nil, err
		}
	}
	rels := make([]string, 0, len(dirs))
	for rel := range dirs {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	var pkgs []*Package
	for _, rel := range rels {
		pkg, err := l.loadPackageDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)), rel)
		if errors.Is(err, errNoGoFiles) {
			continue
		}
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expandPattern adds the module-relative directories pattern names to
// dirs. testdata trees and hidden directories never match "...", the
// same exclusions the go tool applies.
func (l *Loader) expandPattern(pat string, dirs map[string]bool) error {
	if pat == "all" || pat == "std" {
		return fmt.Errorf("loader: unsupported pattern %q (use ./... forms)", pat)
	}
	orig := pat
	pat = strings.TrimPrefix(pat, "./")
	if rest, ok := strings.CutSuffix(pat, "..."); ok {
		rest = strings.TrimSuffix(rest, "/")
		base := filepath.Join(l.modRoot, filepath.FromSlash(rest))
		return filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				if os.IsNotExist(err) && p == base {
					return fmt.Errorf("loader: pattern %q matches no directory", orig)
				}
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			rel, err := filepath.Rel(l.modRoot, p)
			if err != nil {
				return err
			}
			dirs[filepath.ToSlash(rel)] = true
			return nil
		})
	}
	if pat == "" || pat == "." {
		dirs["."] = true
		return nil
	}
	dirs[path.Clean(pat)] = true
	return nil
}

var errNoGoFiles = errors.New("no buildable Go files")

// loadPackageDir parses and type-checks the package in dir, whose
// module-relative path is rel.
func (l *Loader) loadPackageDir(dir, rel string) (*Package, error) {
	importPath := l.modPath
	if rel != "." {
		importPath = l.modPath + "/" + rel
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := l.check(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	relPath := rel
	if rel == "." {
		relPath = ""
	}
	return &Package{
		PkgPath: importPath,
		RelPath: relPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// LoadDir type-checks the single package in dir under the given import
// path, resolving its imports through the standard library only — the
// analysistest entry point for fixture packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := l.check(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: importPath,
		RelPath: importPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// parseDir parses dir's non-test Go files as selected by the build
// context (build tags, GOOS/GOARCH), with comments retained for the
// //lint:allow machinery.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		var noGo *build.NoGoError
		if errors.As(err, &noGo) {
			return nil, errNoGoFiles
		}
		return nil, fmt.Errorf("loader: %s: %w", dir, err)
	}
	names := append([]string{}, bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, errNoGoFiles
	}
	return files, nil
}

// check type-checks files as package importPath, resolving imports
// through the loader.
func (l *Loader) check(importPath, dir string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	// Soft errors (unused variables and the like, common in lint
	// fixtures that exist only to exhibit a shape) do not stop
	// analysis; any hard type error does.
	var hard error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			var terr types.Error
			if errors.As(err, &terr) && terr.Soft {
				return
			}
			if hard == nil {
				hard = err
			}
		},
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if hard != nil {
		return nil, nil, fmt.Errorf("loader: type-checking %s: %w", importPath, hard)
	}
	return tpkg, info, nil
}

// loaderImporter adapts the Loader to types.ImporterFrom: module-
// internal paths are located under the module root and type-checked
// recursively (with caching); everything else goes to the source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(p string) (*types.Package, error) {
	return li.ImportFrom(p, "", 0)
}

func (li *loaderImporter) ImportFrom(p, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if l.modPath != "" && (p == l.modPath || strings.HasPrefix(p, l.modPath+"/")) {
		return l.importModulePackage(p)
	}
	return l.std.ImportFrom(p, srcDir, mode)
}

func (l *Loader) importModulePackage(importPath string) (*types.Package, error) {
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("loader: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	dir := l.modRoot
	if rel != "" {
		dir = filepath.Join(l.modRoot, filepath.FromSlash(rel))
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: importing %s: %w", importPath, err)
	}
	tpkg, _, err := l.check(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	l.cache[importPath] = tpkg
	return tpkg, nil
}
