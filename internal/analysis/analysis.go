// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that the staccatolint suite is
// written against. The build environment bakes in only the standard
// library, so instead of gating the linters on an unavailable module the
// suite carries its own framework: an Analyzer is a named check over one
// type-checked package, a Pass hands it the syntax trees and type
// information, and diagnostics flow back through Report.
//
// The deliberate differences from x/tools are small: there are no Facts
// (no analyzer here needs cross-package state), drivers load packages
// through internal/analysis/loader rather than go/packages, and
// suppression via //lint:allow directives (see allow.go) is part of the
// framework so every analyzer shares one escape-hatch contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant check. Run is invoked once per
// analyzed package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> <reason> directives. It must be a valid
	// identifier.
	Name string
	// Doc states the invariant the analyzer enforces, shown by
	// `staccatovet -list`.
	Doc string
	// Run performs the check. It must not retain the Pass.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked form to an
// analyzer, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test compilation units.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the package's import path as the driver resolved it.
	PkgPath string
	// RelPath is PkgPath relative to the enclosing module ("pkg/query",
	// "cmd/staccatovet"), the form the analyzers' path gates match
	// against. Outside a module (fixture loads) it equals PkgPath.
	RelPath string
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned within the Pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Callee resolves a call's static callee, unwrapping parens; nil for
// dynamic calls (function values, closures) and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// PathMatches reports whether rel (a module-relative package path)
// matches any of the given gate patterns. A pattern matches its exact
// package and every package beneath it: "pkg/query" matches "pkg/query"
// and "pkg/query/sub", and "pkg" matches the whole public tree. The
// analyzers use it to scope themselves to the packages whose invariants
// they guard.
func PathMatches(rel string, patterns []string) bool {
	for _, pat := range patterns {
		if rel == pat {
			return true
		}
		if len(rel) > len(pat) && rel[:len(pat)] == pat && rel[len(pat)] == '/' {
			return true
		}
	}
	return false
}
