package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file implements the suite-wide escape hatch:
//
//	//lint:allow <analyzer> <reason>
//
// A directive suppresses <analyzer>'s diagnostics on its own line and on
// the line directly below it (so it can sit above the flagged statement),
// and a directive inside a function's doc comment suppresses the whole
// function body — the shape used when a function is intentionally built
// around the flagged pattern (diskstore.Compact holds the write lock
// across file I/O by design, for example).
//
// The reason is mandatory. An allow with no reason is itself a
// diagnostic: the point of the hatch is that every suppressed finding
// documents why the invariant does not apply, not that it disappears.

const allowPrefix = "lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	pos      token.Pos
	line     int
	analyzer string
	reason   string
	// funcEnd is set when the directive lives in a function's doc
	// comment: the directive then covers [pos, funcEnd].
	funcEnd token.Pos
}

// parseDirectives extracts every //lint:allow directive from files.
// Malformed directives — a missing analyzer name or an empty reason —
// are returned as diagnostics in bad.
func parseDirectives(fset *token.FileSet, files []*ast.File) (dirs []directive, bad []Diagnostic) {
	for _, f := range files {
		// Map each function's doc comment to the function it documents,
		// so doc-level directives can cover the whole body.
		docEnd := make(map[*ast.CommentGroup]token.Pos)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docEnd[fd.Doc] = fd.End()
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					bad = append(bad, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				d := directive{
					pos:      c.Pos(),
					line:     fset.Position(c.Pos()).Line,
					analyzer: name,
					reason:   reason,
				}
				if end, ok := docEnd[cg]; ok {
					d.funcEnd = end
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, bad
}

// ApplyAllows filters diags, dropping any diagnostic covered by a
// //lint:allow directive for the named analyzer. The returned slice is
// sorted by position.
func ApplyAllows(name string, fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	dirs, _ := parseDirectives(fset, files)
	var kept []Diagnostic
	for _, d := range diags {
		if !suppressed(name, fset, dirs, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept
}

func suppressed(name string, fset *token.FileSet, dirs []directive, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, dir := range dirs {
		if dir.analyzer != name {
			continue
		}
		dirFile := fset.Position(dir.pos).Filename
		if dirFile != pos.Filename {
			continue
		}
		if dir.funcEnd.IsValid() {
			if d.Pos >= dir.pos && d.Pos <= dir.funcEnd {
				return true
			}
			continue
		}
		if pos.Line == dir.line || pos.Line == dir.line+1 {
			return true
		}
	}
	return false
}

// CheckDirectives returns a diagnostic for every malformed //lint:allow
// in files, plus one for every directive naming an analyzer not in
// known. Drivers run it once per package so a typo'd analyzer name
// cannot silently suppress nothing.
func CheckDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) []Diagnostic {
	dirs, bad := parseDirectives(fset, files)
	for _, d := range dirs {
		if !known[d.analyzer] {
			bad = append(bad, Diagnostic{
				Pos:     d.pos,
				Message: "//lint:allow names unknown analyzer " + d.analyzer,
			})
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].Pos < bad[j].Pos })
	return bad
}
