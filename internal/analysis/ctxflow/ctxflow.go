// Package ctxflow enforces the context discipline PR 6 threaded through
// the repo: deadlines and cancellation must flow from the caller to
// every blocking callee. It makes two checks:
//
//  1. context.Background() and context.TODO() may not appear in library
//     code (the packages named by Paths): a fresh root context there
//     severs whatever deadline the caller attached. Entry points (main,
//     tests) own their roots; libraries thread what they are given.
//
//  2. Anywhere, an exported function or method that takes a
//     context.Context must not call a context-taking callee with a
//     fresh Background()/TODO() — that silently drops the caller's
//     deadline mid-flight. (Inside Paths packages check 1 already flags
//     the fresh context itself, so check 2 reports only where check 1
//     does not.)
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/paper-repo/staccato-go/internal/analysis"
)

// Paths gates check 1 to library packages. Default: the public tree.
var Paths = []string{"pkg"}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/TODO() in library packages and exported ctx-taking " +
		"functions that hand callees a fresh context instead of the caller's",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inLibrary := analysis.PathMatches(pass.RelPath, Paths)
	reported := make(map[token.Pos]bool)
	if inLibrary {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, fresh := freshContext(pass.TypesInfo, call); fresh {
					reported[call.Pos()] = true
					pass.Reportf(call.Pos(),
						"context.%s() in library code severs the caller's deadline; accept and thread a ctx parameter (or //lint:allow ctxflow <reason>)",
						name)
				}
				return true
			})
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !hasCtxParam(pass.TypesInfo, fd) {
				continue
			}
			checkForwards(pass, fd, reported)
		}
	}
	return nil
}

// checkForwards flags calls inside fd that pass a fresh context to a
// context-taking callee even though fd received one.
func checkForwards(pass *analysis.Pass, fd *ast.FuncDecl, reported map[token.Pos]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
		if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
			return true
		}
		argCall, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
		if !ok || reported[argCall.Pos()] {
			return true
		}
		if name, fresh := freshContext(pass.TypesInfo, argCall); fresh {
			pass.Reportf(argCall.Pos(),
				"%s receives a ctx but passes context.%s() to %s, dropping the caller's deadline; forward the ctx parameter",
				fd.Name.Name, name, callName(call))
		}
		return true
	})
}

// freshContext reports whether call is context.Background() or
// context.TODO(), returning the function name.
func freshContext(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// callName renders the callee for the diagnostic.
func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "the callee"
}
