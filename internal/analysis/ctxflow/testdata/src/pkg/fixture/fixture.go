// Package fixture exercises ctxflow's library-code check: fresh
// context roots are flagged, threading the caller's ctx is not.
package fixture

import "context"

func freshRoot() context.Context {
	return context.Background() // want "context.Background\(\) in library code severs the caller's deadline"
}

func todoRoot() {
	ctx := context.TODO() // want "context.TODO\(\) in library code severs the caller's deadline"
	_ = ctx
}

// Threads reuses the ctx it was given — the blessed shape.
func Threads(ctx context.Context) error {
	return helper(ctx)
}

// DoubleFault receives a ctx yet hands its callee a fresh root; inside
// the Paths gate check 1 reports the fresh context itself and check 2
// stays quiet, so exactly one diagnostic lands on this line.
func DoubleFault(ctx context.Context) error {
	return helper(context.Background()) // want "context.Background\(\) in library code severs the caller's deadline"
}

func helper(ctx context.Context) error {
	return ctx.Err()
}

//lint:allow ctxflow startup work in this fixture has no caller deadline to inherit
func annotated() context.Context {
	return context.Background()
}
