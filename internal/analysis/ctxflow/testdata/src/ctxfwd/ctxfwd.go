// Package ctxfwd exercises ctxflow's forwarding check outside the
// Paths gate: fresh roots are legal here (entry-point territory), but
// an exported function that RECEIVES a ctx must not hand its callee a
// fresh one.
package ctxfwd

import "context"

func helper(ctx context.Context) error {
	return ctx.Err()
}

// Drops receives a ctx and throws it away mid-flight.
func Drops(ctx context.Context) error {
	return helper(context.Background()) // want "Drops receives a ctx but passes context\.Background\(\) to helper"
}

// DropsTODO does the same with TODO.
func DropsTODO(ctx context.Context) error {
	return helper(context.TODO()) // want "DropsTODO receives a ctx but passes context\.TODO\(\) to helper"
}

// Forwards is the correct shape.
func Forwards(ctx context.Context) error {
	return helper(ctx)
}

// Root takes no ctx, so it legitimately owns a fresh root.
func Root() error {
	return helper(context.Background())
}

// drops is unexported: callers inside the package can see the context
// flow end to end, so the check leaves it alone.
func drops(ctx context.Context) error {
	return helper(context.Background())
}

type client struct{}

func (client) do(ctx context.Context) error { return ctx.Err() }

// DropsMethod drops its ctx calling a method through a selector.
func DropsMethod(ctx context.Context, c client) error {
	return c.do(context.Background()) // want "DropsMethod receives a ctx but passes context\.Background\(\) to c.do"
}
