package ctxflow_test

import (
	"testing"

	"github.com/paper-repo/staccato-go/internal/analysis/analysistest"
	"github.com/paper-repo/staccato-go/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	// pkg/fixture exercises check 1 (no fresh roots in library code);
	// ctxfwd sits outside the Paths gate so only check 2 (exported
	// ctx-taking functions must forward their ctx) fires there.
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "pkg/fixture", "ctxfwd")
}
