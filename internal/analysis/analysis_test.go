package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func TestPathMatches(t *testing.T) {
	cases := []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{"pkg/query", []string{"pkg/query"}, true},
		{"pkg/query/sub", []string{"pkg/query"}, true},
		{"pkg/queryx", []string{"pkg/query"}, false},
		{"pkg", []string{"pkg/query"}, false},
		{"pkg/index", []string{"pkg/query", "pkg/index"}, true},
		{"cmd/tool", []string{"pkg"}, false},
		{"anything", nil, false},
	}
	for _, c := range cases {
		if got := PathMatches(c.rel, c.patterns); got != c.want {
			t.Errorf("PathMatches(%q, %v) = %v, want %v", c.rel, c.patterns, got, c.want)
		}
	}
}

func TestReportf(t *testing.T) {
	var got []Diagnostic
	p := &Pass{Report: func(d Diagnostic) { got = append(got, d) }}
	p.Reportf(token.Pos(42), "found %d %s", 3, "things")
	if len(got) != 1 || got[0].Pos != token.Pos(42) || got[0].Message != "found 3 things" {
		t.Fatalf("Reportf produced %+v", got)
	}
}

// TestCallee typechecks a snippet and resolves each call shape: plain
// function, method via selector, dynamic function value, builtin.
func TestCallee(t *testing.T) {
	src := `package p

type T struct{}

func (T) M() {}

func f() {}

func g() {
	f()
	T{}.M()
	fn := f
	fn()
	_ = len("x")
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Uses: make(map[*ast.Ident]types.Object)}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	var names []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := Callee(info, call); fn != nil {
			names = append(names, fn.Name())
		} else {
			names = append(names, "<nil>")
		}
		return true
	})
	want := []string{"f", "M", "<nil>", "<nil>"}
	if len(names) != len(want) {
		t.Fatalf("resolved %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("call %d resolved to %q, want %q", i, names[i], want[i])
		}
	}
}
