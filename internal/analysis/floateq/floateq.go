// Package floateq flags == and != between floating-point values.
// Probabilities in this repo are float64s produced by long chains of
// multiplications and (deterministically ordered) additions; exact
// equality on them is almost always a latent bug that epsilon
// comparison — internal/core.ProbEq — expresses honestly. internal/core
// itself is exempt: it is where the epsilon helpers live, and helpers
// like WeightFromProb legitimately branch on exact boundary values.
//
// The few exact comparisons that are genuinely intended (skipping
// exactly-zero mass in a DP, for instance) carry a
// //lint:allow floateq <reason> annotation instead of weakening the
// check.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/paper-repo/staccato-go/internal/analysis"
)

// ExemptPaths lists module-relative packages where exact float
// comparison is allowed wholesale — the home of the epsilon helpers.
var ExemptPaths = []string{"internal/core"}

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on floating-point values outside internal/core; " +
		"use core.ProbEq or annotate the intended exact comparison",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathMatches(pass.RelPath, ExemptPaths) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(be.X)) && !isFloat(pass.TypesInfo.TypeOf(be.Y)) {
				return true
			}
			pass.Reportf(be.OpPos,
				"exact %s on floating-point values; probabilities need core.ProbEq (or //lint:allow floateq <reason> if exactness is the point)",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
