// Package fixture exercises floateq: exact ==/!= with a float operand
// is flagged, integer comparison and annotated sentinels are not.
package fixture

func eq(a, b float64) bool {
	return a == b // want "exact == on floating-point values"
}

func neq(a, b float32) bool {
	return a != b // want "exact != on floating-point values"
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want "exact == on floating-point values"
}

func ints(a, b int) bool {
	return a == b
}

func ordered(a, b float64) bool {
	return a < b
}

func zeroSentinel(p float64) bool {
	//lint:allow floateq exact zero is the unset sentinel in this fixture
	return p == 0
}
