// Package core stands in for the repo's internal/core: the exempt
// package where epsilon helpers live, so exact comparison is allowed
// wholesale and nothing here may be reported.
package core

func probEq(a, b float64) bool {
	return a == b
}

func boundary(p float64) bool {
	return p != 1
}
