package floateq_test

import (
	"testing"

	"github.com/paper-repo/staccato-go/internal/analysis/analysistest"
	"github.com/paper-repo/staccato-go/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	// pkg/fixture is ordinary library code; internal/core is the exempt
	// home of the epsilon helpers and must stay silent.
	analysistest.Run(t, "testdata", floateq.Analyzer, "pkg/fixture", "internal/core")
}
