// Package driver loads packages and runs the staccatolint suite over
// them — the engine behind cmd/staccatovet. It is a separate package so
// the whole flow (pattern expansion, analysis, //lint:allow filtering,
// diagnostic formatting, exit status) is testable without executing a
// child process.
package driver

import (
	"fmt"
	"io"
	"sort"

	"github.com/paper-repo/staccato-go/internal/analysis"
	"github.com/paper-repo/staccato-go/internal/analysis/loader"
	"github.com/paper-repo/staccato-go/internal/analysis/staccatolint"
)

// Run analyzes the packages matched by patterns (default "./...")
// under the module containing dir, writing findings to out. It returns
// the number of findings; an error means the analysis itself could not
// run (bad pattern, unparseable source).
func Run(dir string, patterns []string, out io.Writer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := loader.New(dir)
	if err != nil {
		return 0, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return 0, err
	}
	analyzers := staccatolint.Analyzers()
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	findings := 0
	for _, pkg := range pkgs {
		// A malformed or misaddressed //lint:allow is itself a finding:
		// the escape hatch must never silently suppress nothing.
		for _, d := range analysis.CheckDirectives(pkg.Fset, pkg.Files, known) {
			findings++
			fmt.Fprintf(out, "%s: lint: %s\n", pkg.Fset.Position(d.Pos), d.Message)
		}
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				RelPath:   pkg.RelPath,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return findings, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
			diags = analysis.ApplyAllows(a.Name, pkg.Fset, pkg.Files, diags)
			sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
			for _, d := range diags {
				findings++
				fmt.Fprintf(out, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
			}
		}
	}
	return findings, nil
}

// List writes each analyzer's name and doc to out, for -list.
func List(out io.Writer) {
	for _, a := range staccatolint.Analyzers() {
		fmt.Fprintf(out, "%-13s %s\n", a.Name, a.Doc)
	}
}
