package driver

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a synthetic module whose files map from
// module-relative path to source.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunReportsAndCounts(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/scratch\n\ngo 1.21\n",
		// One mapiter violation (pkg/query is inside the default gate),
		// one floateq violation, one directive naming a nonexistent
		// analyzer, and one reasonless allow.
		"pkg/query/q.go": `package query

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func same(a, b float64) bool {
	//lint:allow nosuch not a real analyzer
	//lint:allow floateq
	return a == b
}
`,
	})
	var buf strings.Builder
	findings, err := Run(dir, []string{"./..."}, &buf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := buf.String()
	// mapiter + floateq + unknown analyzer + malformed allow = 4.
	if findings != 4 {
		t.Fatalf("Run returned %d findings, want 4; output:\n%s", findings, out)
	}
	for _, wantSub := range []string{
		"map iteration order is randomized",
		"exact == on floating-point values",
		"unknown analyzer nosuch",
		"malformed //lint:allow",
	} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("output does not mention %q; output:\n%s", wantSub, out)
		}
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/scratch\n\ngo 1.21\n",
		"pkg/query/q.go": `package query

import "sort"

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`,
	})
	var buf strings.Builder
	findings, err := Run(dir, nil, &buf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if findings != 0 {
		t.Fatalf("Run on a clean module returned %d findings; output:\n%s", findings, buf.String())
	}
}

func TestRunAllowWithReasonSuppresses(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/scratch\n\ngo 1.21\n",
		"pkg/query/q.go": `package query

func same(a, b float64) bool {
	//lint:allow floateq exactness is the point here
	return a == b
}
`,
	})
	var buf strings.Builder
	findings, err := Run(dir, []string{"./pkg/query"}, &buf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if findings != 0 {
		t.Fatalf("a well-formed allow did not suppress: %d findings; output:\n%s", findings, buf.String())
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	var buf strings.Builder
	List(&buf)
	out := buf.String()
	for _, name := range []string{"ctxflow", "expvarglobal", "floateq", "lockio", "mapiter"} {
		if !strings.Contains(out, name) {
			t.Errorf("List output is missing %s:\n%s", name, out)
		}
	}
}
