// Package staccatolint assembles the repo's analyzer suite — the five
// checks that machine-enforce the coding invariants the Staccato
// correctness story rests on:
//
//	mapiter      bit-deterministic probabilities: no order-dependent
//	             map iteration in pkg/query, pkg/index, pkg/fst,
//	             internal/core
//	floateq      no exact ==/!= on floats outside internal/core's
//	             epsilon helpers
//	ctxflow      context deadlines thread end-to-end; no fresh
//	             Background()/TODO() roots inside pkg/
//	expvarglobal no process-global expvar registration under pkg/;
//	             servers must coexist in one process
//	lockio       diskstore reads bytes under its locks and decodes
//	             outside them; no avoidable I/O in critical sections
//
// cmd/staccatovet runs the suite; each analyzer honors
// //lint:allow <name> <reason> with a mandatory reason.
package staccatolint

import (
	"github.com/paper-repo/staccato-go/internal/analysis"
	"github.com/paper-repo/staccato-go/internal/analysis/ctxflow"
	"github.com/paper-repo/staccato-go/internal/analysis/expvarglobal"
	"github.com/paper-repo/staccato-go/internal/analysis/floateq"
	"github.com/paper-repo/staccato-go/internal/analysis/lockio"
	"github.com/paper-repo/staccato-go/internal/analysis/mapiter"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		expvarglobal.Analyzer,
		floateq.Analyzer,
		lockio.Analyzer,
		mapiter.Analyzer,
	}
}
