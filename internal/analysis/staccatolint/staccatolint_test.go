package staccatolint_test

import (
	"sort"
	"testing"

	"github.com/paper-repo/staccato-go/internal/analysis/staccatolint"
)

func TestAnalyzers(t *testing.T) {
	as := staccatolint.Analyzers()
	want := []string{"ctxflow", "expvarglobal", "floateq", "lockio", "mapiter"}
	if len(as) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(as), len(want))
	}
	var names []string
	for _, a := range as {
		if a.Run == nil || a.Doc == "" {
			t.Errorf("analyzer %s is missing Run or Doc", a.Name)
		}
		names = append(names, a.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("suite order %v is not stable-sorted", names)
	}
	for i, n := range names {
		if n != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, n, want[i])
		}
	}
}
