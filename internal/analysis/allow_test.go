package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc parses one synthetic file and returns the pieces tests need.
func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return fset, []*ast.File{f}
}

// diagAt fabricates a diagnostic at the start of the given 1-based line.
func diagAt(t *testing.T, fset *token.FileSet, line int) Diagnostic {
	t.Helper()
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return Diagnostic{Pos: pos, Message: "synthetic finding"}
}

func TestApplyAllowsLineScope(t *testing.T) {
	src := `package p

func f() {
	//lint:allow demo the next line is fine
	_ = 1
	_ = 2
}
`
	fset, files := parseSrc(t, src)
	onDirective := diagAt(t, fset, 4) // same line as the directive
	lineBelow := diagAt(t, fset, 5)   // directly below: suppressed
	twoBelow := diagAt(t, fset, 6)    // out of range: kept
	kept := ApplyAllows("demo", fset, files, []Diagnostic{onDirective, lineBelow, twoBelow})
	if len(kept) != 1 || kept[0].Pos != twoBelow.Pos {
		t.Fatalf("ApplyAllows kept %d diagnostics, want only the line-6 one: %+v", len(kept), kept)
	}
}

func TestApplyAllowsAnalyzerMismatch(t *testing.T) {
	src := `package p

//lint:allow other this names a different analyzer
var x = 1
`
	fset, files := parseSrc(t, src)
	d := diagAt(t, fset, 4)
	if kept := ApplyAllows("demo", fset, files, []Diagnostic{d}); len(kept) != 1 {
		t.Fatalf("a directive for another analyzer suppressed a demo diagnostic")
	}
}

func TestApplyAllowsFuncScope(t *testing.T) {
	src := `package p

// f is built around the flagged pattern.
//
//lint:allow demo the whole body is intentional
func f() {
	_ = 1
	_ = 2
}

func g() {
	_ = 3
}
`
	fset, files := parseSrc(t, src)
	inF := diagAt(t, fset, 8)  // deep inside f: suppressed
	inG := diagAt(t, fset, 12) // in g: kept
	kept := ApplyAllows("demo", fset, files, []Diagnostic{inF, inG})
	if len(kept) != 1 || kept[0].Pos != inG.Pos {
		t.Fatalf("function-scope allow: kept %d diagnostics, want only g's: %+v", len(kept), kept)
	}
}

func TestCheckDirectives(t *testing.T) {
	src := `package p

//lint:allow demo a well-formed directive
var a = 1

//lint:allow demo
var b = 2

//lint:allow
var c = 3

//lint:allow nosuch the analyzer name is a typo
var d = 4
`
	fset, files := parseSrc(t, src)
	bad := CheckDirectives(fset, files, map[string]bool{"demo": true})
	if len(bad) != 3 {
		t.Fatalf("CheckDirectives returned %d diagnostics, want 3: %+v", len(bad), bad)
	}
	for i, wantSub := range []string{"malformed", "malformed", "unknown analyzer nosuch"} {
		if !strings.Contains(bad[i].Message, wantSub) {
			t.Errorf("diagnostic %d = %q, want it to mention %q", i, bad[i].Message, wantSub)
		}
	}
}
