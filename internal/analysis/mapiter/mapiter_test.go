package mapiter_test

import (
	"testing"

	"github.com/paper-repo/staccato-go/internal/analysis/analysistest"
	"github.com/paper-repo/staccato-go/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	// pkg/query/fixture sits inside the analyzer's default Paths gate;
	// other/fixture holds the same violations outside it and must stay
	// silent.
	analysistest.Run(t, "testdata", mapiter.Analyzer, "pkg/query/fixture", "other/fixture")
}
