// Package fixture holds mapiter violations in a package outside the
// analyzer's Paths gate; none of them may be reported.
package fixture

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func accumulateFloat(m map[string]float64) float64 {
	total := 0.0
	for _, p := range m {
		total += p
	}
	return total
}
