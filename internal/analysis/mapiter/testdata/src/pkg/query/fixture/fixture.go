// Package fixture exercises mapiter: order-dependent effects under map
// ranges are flagged; extract-and-sort, non-map ranges, and annotated
// loops are not.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "appends to a slice that is not sorted afterwards"
		out = append(out, k)
	}
	return out
}

func appendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendSortSlice(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func accumulateFloat(m map[string]float64) float64 {
	total := 0.0
	for _, p := range m { // want "accumulates a float"
		total += p
	}
	return total
}

func accumulateRewrite(m map[string]float64) float64 {
	total := 0.0
	for _, p := range m { // want "accumulates a float"
		total = total * p
	}
	return total
}

func writesOutput(m map[string]int) {
	for k := range m { // want "writes output via fmt.Println"
		fmt.Println(k)
	}
}

func writesBuilder(m map[string]int, sb *strings.Builder) {
	for k := range m { // want "writes output via WriteString"
		sb.WriteString(k)
	}
}

func writesFprintf(m map[string]int, sb *strings.Builder) {
	for k := range m { // want "writes output via fmt.Fprintf"
		fmt.Fprintf(sb, "%s ", k)
	}
}

func incFloat(m map[string]bool) float64 {
	x := 0.0
	for range m { // want "accumulates a float"
		x++
	}
	return x
}

func accumulateInt(m map[string]int) int {
	// Integer addition commutes exactly; only float accumulation is
	// order-dependent.
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func annotated(m map[string]float64) float64 {
	t := 0.0
	//lint:allow mapiter this fixture tolerates addition reordering on purpose
	for _, p := range m {
		t += p
	}
	return t
}
