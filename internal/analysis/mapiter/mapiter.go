// Package mapiter flags `for range` over maps in determinism-critical
// packages when the loop body has an order-dependent effect: appending
// to a slice, accumulating a float, or writing output. Go randomizes
// map iteration order, so any such loop makes results differ run to
// run — which breaks the repo's core promise that every query
// probability is bit-deterministic (same Doc, same Query, same bits,
// at any worker count).
//
// The blessed pattern is extract-and-sort: range the map only to
// collect keys into a slice, sort it, then iterate the slice (see
// query.sortedKeys). A loop whose only appends feed slices that are
// sorted later in the same function is therefore not flagged.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/paper-repo/staccato-go/internal/analysis"
)

// Paths gates the analyzer to the packages whose outputs must be
// bit-deterministic. Tests may override it to point at fixtures.
var Paths = []string{"pkg/query", "pkg/index", "pkg/fst", "pkg/fuzzy", "pkg/staccatodb", "internal/core"}

var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flags map iteration with order-dependent effects (slice append, float accumulation, output) " +
		"in determinism-critical packages; extract and sort the keys first",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.RelPath, Paths) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fd, rs)
		return true
	})
}

// checkMapRange reports the first order-dependent effect in one
// map-range body, unless every such effect is a sorted-later append.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	var effect string // description of the first non-exempt effect
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(pass, s) {
				if !sortedLater(pass, fd, rs, s) {
					effect = "appends to a slice that is not sorted afterwards"
				}
				return true
			}
			if name, ok := outputCall(pass, s); ok {
				effect = "writes output via " + name
			}
		case *ast.AssignStmt:
			if isFloatAccumulation(pass, s) {
				effect = "accumulates a float"
			}
		case *ast.IncDecStmt:
			if isFloat(pass.TypesInfo.TypeOf(s.X)) {
				effect = "accumulates a float"
			}
		}
		return true
	})
	if effect == "" {
		return
	}
	pass.Reportf(rs.For,
		"map iteration order is randomized, but this loop %s; iterate extracted-and-sorted keys instead, or annotate //lint:allow mapiter <reason>",
		effect)
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether the append target is a plain variable
// that some statement after the range loop, in the same function,
// passes to a sort call — the extract-and-sort exemption.
func sortedLater(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sc, ok := n.(*ast.CallExpr)
		if !ok || sc.Pos() < rs.End() || !isSortCall(pass, sc) {
			return true
		}
		for _, arg := range sc.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if mid, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[mid] == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

var sortFuncs = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeutilCallee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names := sortFuncs[fn.Pkg().Path()]
	return names != nil && names[fn.Name()]
}

// outputCall reports calls that emit bytes somewhere: the fmt print
// family and Write-shaped methods.
func outputCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := typeutilCallee(pass, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name, true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return name, true
		}
	}
	return "", false
}

// isFloatAccumulation reports compound assignments onto float lvalues
// (x += p, m[k] *= w) and x = x <op> y rewrites of the same shape.
func isFloatAccumulation(pass *analysis.Pass, as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 {
		return false
	}
	if !isFloat(pass.TypesInfo.TypeOf(as.Lhs[0])) {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			return false
		}
		uses := false
		ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
			if rid, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[rid] == obj {
				uses = true
			}
			return !uses
		})
		return uses
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func typeutilCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	return analysis.Callee(pass.TypesInfo, call)
}
