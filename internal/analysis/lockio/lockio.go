// Package lockio enforces the diskstore locking discipline: no codec
// decoding and no avoidable file I/O while a sync.Mutex/RWMutex is
// held. The store's locks exist to pin index and segment state, not to
// serialize CPU work — GetBatch reads raw payloads under one RLock and
// decodes after releasing it precisely so concurrent readers never wait
// on each other's decoding (PRs 5–6).
//
// The analysis is intra-procedural with package-local call summaries: a
// region is "locked" from a statement-level x.Lock()/x.RLock() until
// the matching Unlock in the same statement sequence (a deferred Unlock
// holds to function end), and within locked regions every call that —
// directly or through same-package callees — decodes (a function named
// Decode or Unmarshal) or touches the filesystem (os.File read/write/
// sync/truncate methods, os file-management functions, io.ReadFull and
// friends) is flagged. Calls into function literals are not traced;
// branch bodies are analyzed with a copy of the lock state, so an
// early-unlock-and-return inside an if does not leak past it.
//
// Deliberate holds — the serialized write path, compaction's exclusive
// rewrite, the RLock pinning segments open across a ReadAt — are
// annotated //lint:allow lockio <reason> rather than special-cased
// here.
package lockio

import (
	"go/ast"
	"go/types"

	"github.com/paper-repo/staccato-go/internal/analysis"
)

// Paths gates the analyzer to the packages that own the discipline.
var Paths = []string{"pkg/store/diskstore"}

var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: "flags file I/O, fsync, and codec decode performed while a sync mutex is provably held " +
		"in pkg/store/diskstore; read bytes under the lock, decode outside it",
	Run: run,
}

// decodeNames are function/method names treated as codec decodes.
var decodeNames = map[string]bool{"Decode": true, "Unmarshal": true}

// osFileMethods are the (*os.File) methods that hit the filesystem in a
// way worth keeping out of critical sections. Close is deliberately
// absent: closing handles at shutdown or during compaction swaps is
// part of the state the locks protect.
var osFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"WriteString": true, "Sync": true, "Truncate": true, "Seek": true,
}

// osFuncs are package-level os functions that touch the filesystem.
var osFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Mkdir": true, "MkdirAll": true, "Truncate": true,
}

// ioFuncs are io helpers that drive reads on whatever they are given.
var ioFuncs = map[string]bool{"ReadFull": true, "ReadAll": true, "Copy": true, "CopyN": true}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.RelPath, Paths) {
		return nil
	}
	sums := buildSummaries(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanStmts(pass, sums, fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

// summary records what a package-local function reaches.
type summary struct {
	io     bool
	decode bool
}

// buildSummaries computes, by fixpoint over the package's call graph,
// which functions perform or transitively reach file I/O or decoding.
func buildSummaries(pass *analysis.Pass) map[*types.Func]summary {
	type funcInfo struct {
		decl *ast.FuncDecl
		sum  summary
	}
	funcs := make(map[*types.Func]*funcInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				funcs[obj] = &funcInfo{decl: fd}
			}
		}
	}
	// Seed with direct effects, then propagate through same-package
	// static calls until stable.
	for _, fi := range funcs {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			d := directEffect(pass, call)
			fi.sum.io = fi.sum.io || d.io
			fi.sum.decode = fi.sum.decode || d.decode
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.Callee(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				if ci, ok := funcs[callee]; ok {
					if ci.sum.io && !fi.sum.io {
						fi.sum.io = true
						changed = true
					}
					if ci.sum.decode && !fi.sum.decode {
						fi.sum.decode = true
						changed = true
					}
				}
				return true
			})
		}
	}
	out := make(map[*types.Func]summary, len(funcs))
	for obj, fi := range funcs {
		out[obj] = fi.sum
	}
	return out
}

// directEffect classifies one call's own behavior, ignoring callees.
func directEffect(pass *analysis.Pass, call *ast.CallExpr) summary {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return summary{}
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if osFileMethods[name] && isOSFileRecv(sig.Recv().Type()) {
			return summary{io: true}
		}
		if decodeNames[name] {
			return summary{decode: true}
		}
		return summary{}
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "os":
			if osFuncs[name] {
				return summary{io: true}
			}
		case "io":
			if ioFuncs[name] {
				return summary{io: true}
			}
		}
	}
	if decodeNames[name] {
		return summary{decode: true}
	}
	return summary{}
}

func isOSFileRecv(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// scanStmts walks one statement sequence tracking which mutexes are
// held. Nested control-flow bodies get a copy of the state: changes
// inside a branch do not affect the fall-through path, which is exactly
// right for the early-unlock-and-return idiom.
func scanStmts(pass *analysis.Pass, sums map[*types.Func]summary, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, locks, ok := lockCall(pass, s.X); ok {
				if locks {
					held[key] = true
				} else {
					delete(held, key)
				}
				continue
			}
			checkTree(pass, sums, s, held)
		case *ast.DeferStmt:
			// A deferred Unlock keeps the region held to function end;
			// other deferred work runs at an unknowable lock state, so
			// it is not checked.
			continue
		case *ast.BlockStmt:
			scanStmts(pass, sums, s.List, held)
		case *ast.IfStmt:
			checkNode(pass, sums, s.Init, held)
			checkNode(pass, sums, s.Cond, held)
			scanStmts(pass, sums, s.Body.List, copyHeld(held))
			if s.Else != nil {
				scanStmts(pass, sums, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			checkNode(pass, sums, s.Init, held)
			checkNode(pass, sums, s.Cond, held)
			checkNode(pass, sums, s.Post, held)
			scanStmts(pass, sums, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			checkNode(pass, sums, s.X, held)
			scanStmts(pass, sums, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			checkNode(pass, sums, s.Init, held)
			checkNode(pass, sums, s.Tag, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, sums, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, sums, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanStmts(pass, sums, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			scanStmts(pass, sums, []ast.Stmt{s.Stmt}, held)
		default:
			checkTree(pass, sums, stmt, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func checkNode(pass *analysis.Pass, sums map[*types.Func]summary, n ast.Node, held map[string]bool) {
	if n == nil || len(held) == 0 {
		return
	}
	checkTree(pass, sums, n, held)
}

// checkTree flags I/O- or decode-reaching calls anywhere in n while a
// lock is held. Function literal bodies are skipped: when they run is
// not knowable here.
func checkTree(pass *analysis.Pass, sums map[*types.Func]summary, n ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	lock := anyKey(held)
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		eff := directEffect(pass, call)
		if callee := analysis.Callee(pass.TypesInfo, call); callee != nil {
			if s, ok := sums[callee]; ok {
				eff.io = eff.io || s.io
				eff.decode = eff.decode || s.decode
			}
		}
		switch {
		case eff.decode:
			pass.Reportf(call.Pos(),
				"%s decodes while %s is held; read the raw bytes under the lock and decode after releasing it (or //lint:allow lockio <reason>)",
				describeCall(call), lock)
		case eff.io:
			pass.Reportf(call.Pos(),
				"%s performs file I/O while %s is held; move the I/O outside the critical section (or //lint:allow lockio <reason>)",
				describeCall(call), lock)
		}
		return true
	})
}

func anyKey(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// lockCall classifies expr as a statement-level mutex transition,
// returning the lock's receiver rendering and whether it acquires.
func lockCall(pass *analysis.Pass, expr ast.Expr) (key string, locks, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return "", false, false
	}
	return types.ExprString(sel.X), locks, true
}

// describeCall renders a call target for diagnostics.
func describeCall(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return types.ExprString(f)
	}
	return "call"
}
