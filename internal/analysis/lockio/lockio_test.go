package lockio_test

import (
	"testing"

	"github.com/paper-repo/staccato-go/internal/analysis/analysistest"
	"github.com/paper-repo/staccato-go/internal/analysis/lockio"
)

func TestLockio(t *testing.T) {
	// The fixture lives under the pkg/store/diskstore Paths gate;
	// other/fixture holds the same shapes outside it and must stay
	// silent.
	analysistest.Run(t, "testdata", lockio.Analyzer, "pkg/store/diskstore/fixture", "other/fixture")
}
