// Package fixture holds lockio violations outside the analyzer's
// Paths gate; none of them may be reported.
package fixture

import (
	"encoding/json"
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	f  *os.File
}

func (s *store) decodeUnderLock(buf []byte, v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Unmarshal(buf, v)
}
