// Package fixture exercises lockio: decoding or touching the
// filesystem while a mutex is provably held is flagged — directly or
// through a same-package callee — while the read-then-release idiom,
// early-unlocked branches, and annotated holds are not.
package fixture

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

type store struct {
	mu  sync.RWMutex
	f   *os.File
	off int64
}

func (s *store) decodeUnderLock(buf []byte, v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Unmarshal(buf, v) // want "json.Unmarshal decodes while s.mu is held"
}

func (s *store) readUnderLock(buf []byte) error {
	s.mu.RLock()
	_, err := s.f.ReadAt(buf, 0) // want "s.f.ReadAt performs file I/O while s.mu is held"
	s.mu.RUnlock()
	return err
}

func (s *store) syncViaHelper() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fsync() // want "s.fsync performs file I/O while s.mu is held"
}

// fsync reaches file I/O; callers holding s.mu inherit the violation
// through the package-local summary.
func (s *store) fsync() error {
	return s.f.Sync()
}

// readThenDecode is the blessed shape: copy bytes under the lock
// (annotated — the lock pins the file open), decode after releasing.
func (s *store) readThenDecode(v any) error {
	s.mu.RLock()
	buf := make([]byte, 64)
	//lint:allow lockio the lock pins the file open across the read; the decode below runs outside it
	_, err := s.f.ReadAt(buf, s.off)
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}

// branchUnlock releases inside the branch before reading, so the read
// is clean even though the fall-through path still holds the lock.
func (s *store) branchUnlock(cond bool, buf []byte) error {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		_, err := s.f.Read(buf)
		return err
	}
	s.mu.Unlock()
	return nil
}

// unlockedIO never takes the lock at all.
func (s *store) unlockedIO(buf []byte) error {
	_, err := s.f.ReadAt(buf, s.off)
	return err
}

func (s *store) loopRead(bufs [][]byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := 0; i < len(bufs); i++ {
		if _, err := s.f.Read(bufs[i]); err != nil { // want "s.f.Read performs file I/O while s.mu is held"
			return err
		}
	}
	return nil
}

func (s *store) rangeRead(bufs [][]byte) {
	s.mu.Lock()
	for _, b := range bufs {
		s.f.Read(b) // want "s.f.Read performs file I/O while s.mu is held"
	}
	s.mu.Unlock()
}

func (s *store) switchRead(mode int, buf []byte) {
	s.mu.Lock()
	switch mode {
	case 0:
		s.f.Read(buf) // want "s.f.Read performs file I/O while s.mu is held"
	default:
	}
	s.mu.Unlock()
}

func (s *store) typeSwitchRead(v any, buf []byte) {
	s.mu.Lock()
	switch v.(type) {
	case int:
		s.f.Read(buf) // want "s.f.Read performs file I/O while s.mu is held"
	}
	s.mu.Unlock()
}

func (s *store) selectRead(ch chan struct{}, buf []byte) {
	s.mu.Lock()
	select {
	case <-ch:
		s.f.Read(buf) // want "s.f.Read performs file I/O while s.mu is held"
	default:
	}
	s.mu.Unlock()
}

func (s *store) labeledRead(buf []byte) {
	s.mu.Lock()
again:
	if _, err := s.f.Read(buf); err == nil { // want "s.f.Read performs file I/O while s.mu is held"
		goto again
	}
	s.mu.Unlock()
}

func (s *store) blockRead(buf []byte) {
	s.mu.Lock()
	{
		s.f.Read(buf) // want "s.f.Read performs file I/O while s.mu is held"
	}
	s.mu.Unlock()
}

func (s *store) osFuncUnderLock(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Remove(path) // want "os.Remove performs file I/O while s.mu is held"
}

func (s *store) ioFuncUnderLock(r io.Reader, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := io.ReadFull(r, buf) // want "io.ReadFull performs file I/O while s.mu is held"
	return err
}

// funcLitNotTraced returns a closure whose run time — and lock state —
// is unknowable here, so its body is not checked.
func (s *store) funcLitNotTraced() func() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() error { return s.f.Sync() }
}

// closeAllowed: Close is deliberately not treated as I/O — swapping
// handles is part of the state the locks protect.
func (s *store) closeAllowed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
