package expvarglobal_test

import (
	"testing"

	"github.com/paper-repo/staccato-go/internal/analysis/analysistest"
	"github.com/paper-repo/staccato-go/internal/analysis/expvarglobal"
)

func TestExpvarglobal(t *testing.T) {
	// pkg/fixture is library code where global registration is banned;
	// cmd/fixture is entry-point territory outside the Paths gate.
	analysistest.Run(t, "testdata", expvarglobal.Analyzer, "pkg/fixture", "cmd/fixture")
}
