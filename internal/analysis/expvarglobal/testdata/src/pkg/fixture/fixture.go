// Package fixture exercises expvarglobal: registering into expvar's
// process-global table is flagged in library code; the per-server
// new(expvar.Map).Init() shape is not.
package fixture

import "expvar"

var hits = expvar.NewInt("fixture_hits") // want "expvar.NewInt registers a process-global var"

func publish(m *expvar.Map) {
	expvar.Publish("fixture_map", m) // want "expvar.Publish registers a process-global var"
}

func newMap() *expvar.Map {
	return expvar.NewMap("fixture_m") // want "expvar.NewMap registers a process-global var"
}

// perServer builds the allowed shape: an unregistered map the server
// exposes through its own handler.
func perServer() *expvar.Map {
	return new(expvar.Map).Init()
}

// plainValues are fine too — only registration is global.
var counter expvar.Int

//lint:allow expvarglobal this fixture deliberately owns one process-wide var
var annotated = expvar.NewInt("fixture_annotated")
