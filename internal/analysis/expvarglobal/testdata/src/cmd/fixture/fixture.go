// Package fixture registers global expvars outside the Paths gate —
// entry-point territory, where owning the process registry is fine.
package fixture

import "expvar"

var requests = expvar.NewInt("cmd_requests")

func publish(m *expvar.Map) {
	expvar.Publish("cmd_map", m)
}
