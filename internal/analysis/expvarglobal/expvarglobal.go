// Package expvarglobal forbids process-global expvar registration in
// library code. expvar.Publish (and the NewMap/NewInt/NewFloat/NewString
// helpers that call it) register into a process-wide table and panic on
// duplicate names — which is exactly what happens when two servers
// coexist in one process, as every pkg/server test and the embedded
// staccatoload harness do. The allowed shape is the one
// pkg/server/metrics.go uses: build vars with new(expvar.Map).Init()
// and plain expvar.Int/Float values, and serve them from the server's
// own handler.
package expvarglobal

import (
	"go/ast"

	"github.com/paper-repo/staccato-go/internal/analysis"
)

// Paths gates the analyzer to library packages. Default: the public
// tree.
var Paths = []string{"pkg"}

// globalRegistrars are the expvar functions that mutate the
// process-global registry.
var globalRegistrars = map[string]bool{
	"Publish":   true,
	"NewMap":    true,
	"NewInt":    true,
	"NewFloat":  true,
	"NewString": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "expvarglobal",
	Doc: "flags process-global expvar registration (Publish, New*) under pkg/; " +
		"build per-server maps with new(expvar.Map).Init() instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.RelPath, Paths) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "expvar" || !globalRegistrars[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"expvar.%s registers a process-global var and panics when two servers coexist; build it with new(expvar.Map).Init() and serve it per-server",
				fn.Name())
			return true
		})
	}
	return nil
}
