package analysistest_test

import (
	"go/ast"
	"testing"

	"github.com/paper-repo/staccato-go/internal/analysis"
	"github.com/paper-repo/staccato-go/internal/analysis/analysistest"
)

// callbad is a minimal analyzer exercising the harness itself: it
// flags every call to a function named bad.
var callbad = &analysis.Analyzer{
	Name: "callbad",
	Doc:  "flags calls to functions named bad",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && fn.Name() == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil
	},
}

func TestRun(t *testing.T) {
	analysistest.Run(t, "testdata", callbad, "self")
}
