// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against want comments, mirroring (a useful
// subset of) golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<pkg>/ and may import only the
// standard library. A line that should be flagged carries a comment
//
//	code() // want "regexp"
//
// whose quoted Go regexp must match the diagnostic's message. Every
// diagnostic must be matched by a want on its line and every want must
// be matched by a diagnostic; //lint:allow suppression is applied first,
// so fixtures exercise the escape hatch the same way real code does.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/analysis"
	"github.com/paper-repo/staccato-go/internal/analysis/loader"
)

var wantRe = regexp.MustCompile(`want +"((?:[^"\\]|\\.)*)"`)

// Run analyzes each fixture package under testdata/src and reports any
// mismatch between diagnostics and want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := loader.NewBare()
	for _, pkgPath := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
		pkg, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			t.Errorf("%s: loading fixture: %v", pkgPath, err)
			continue
		}
		runPackage(t, a, pkg)
	}
}

func runPackage(t *testing.T, a *analysis.Analyzer, pkg *loader.Package) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		PkgPath:   pkg.PkgPath,
		RelPath:   pkg.RelPath,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Errorf("%s: %s failed: %v", pkg.PkgPath, a.Name, err)
		return
	}
	diags = analysis.ApplyAllows(a.Name, pkg.Fset, pkg.Files, diags)

	wants := collectWants(t, pkg.Fset, pkg.Files)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts every `want "re"` expectation, keyed to the
// line its comment starts on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						continue
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}
