// Package self exercises the analysistest harness itself: wants must
// match diagnostics one-to-one and //lint:allow is applied first.
package self

func bad() {}

func use() {
	bad() // want "call to bad"
}

func allowed() {
	//lint:allow callbad the harness must honor allows before matching wants
	bad()
}

func fine() {
	use()
}
