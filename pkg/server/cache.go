package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/paper-repo/staccato-go/pkg/query"
)

// queryCache is a thread-safe LRU of compiled queries keyed by the
// canonical query-spec string. Compiling a Query costs real work (leaf
// validation, duplicate-leaf sharing, expression assembly) that PR 2
// measured at ~2x per evaluation when paid on every request; a server
// sees the same query strings over and over, so the cache turns repeat
// traffic into a map lookup. Compiled queries are immutable and already
// shared across engine workers, so sharing one instance across requests
// is safe.
//
// Hit/miss counters are atomics read by the metrics layer — the cache's
// effectiveness is part of the service's observable surface, not a
// private implementation detail.
type queryCache struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	q   *query.Query
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the compiled query for key, compiling and caching it on a
// miss. The bool reports whether the call was a cache hit. compile runs
// outside the lock, so two concurrent first requests for the same key
// may both compile — the duplicate insert is harmless (last one wins)
// and cheaper than serializing every compile behind one mutex.
// Compile errors are returned and never cached: an invalid spec stays
// invalid, and caching it would only pin garbage.
func (c *queryCache) get(key string, compile func() (*query.Query, error)) (*query.Query, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		q := el.Value.(*cacheEntry).q
		c.mu.Unlock()
		c.hits.Add(1)
		return q, true, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)

	q, err := compile()
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// A concurrent request compiled the same key first; keep its
		// instance so every holder shares one compiled query.
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).q, false, nil
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, q: q})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	return q, false, nil
}

// len returns the number of cached queries.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheStats is the cache's observable state, one branch of the /v1/stats
// response.
type cacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
}

func (c *queryCache) stats() cacheStats {
	return cacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Size:     c.len(),
		Capacity: c.cap,
	}
}
