package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/paper-repo/staccato-go/pkg/query"
)

func mustCompile(t *testing.T, term string) func() (*query.Query, error) {
	t.Helper()
	return func() (*query.Query, error) { return query.Substring(term) }
}

func TestQueryCacheHitMissEvict(t *testing.T) {
	c := newQueryCache(2)

	qa, hit, err := c.get("a", mustCompile(t, "aa"))
	if err != nil || hit || qa == nil {
		t.Fatalf("first get: q=%v hit=%v err=%v", qa, hit, err)
	}
	qa2, hit, err := c.get("a", mustCompile(t, "aa"))
	if err != nil || !hit {
		t.Fatalf("second get: hit=%v err=%v", hit, err)
	}
	if qa2 != qa {
		t.Error("cache hit returned a different compiled instance")
	}

	c.get("b", mustCompile(t, "bb"))
	// Touch "a" so "b" is the LRU victim, then insert "c" to evict it.
	c.get("a", mustCompile(t, "aa"))
	c.get("c", mustCompile(t, "cc"))
	if c.len() != 2 {
		t.Fatalf("cache size %d after eviction, want 2", c.len())
	}
	// Recently used "a" must have survived; checking it first keeps the
	// probe from perturbing what it measures (a miss inserts).
	if _, hit, _ = c.get("a", mustCompile(t, "aa")); !hit {
		t.Error("recently used entry \"a\" was evicted")
	}
	if _, hit, _ = c.get("b", mustCompile(t, "bb")); hit {
		t.Error("LRU entry \"b\" should have been evicted")
	}

	st := c.stats()
	if st.Capacity != 2 || st.Size != 2 {
		t.Errorf("stats = %+v, want capacity 2 size 2", st)
	}
	if st.Hits != 3 || st.Misses != 4 {
		t.Errorf("stats = %+v, want 3 hits / 4 misses", st)
	}
}

func TestQueryCacheCompileErrorNotCached(t *testing.T) {
	c := newQueryCache(4)
	wantErr := errors.New("boom")
	calls := 0
	compile := func() (*query.Query, error) { calls++; return nil, wantErr }

	if _, _, err := c.get("bad", compile); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.get("bad", compile); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Errorf("compile ran %d times, want 2 (errors must not be cached)", calls)
	}
	if c.len() != 0 {
		t.Errorf("cache holds %d entries after compile failures, want 0", c.len())
	}
}

// TestQueryCacheConcurrentSharedKey: many goroutines racing one cold key
// must all end up holding the SAME compiled query, whichever compile won.
func TestQueryCacheConcurrentSharedKey(t *testing.T) {
	c := newQueryCache(8)
	const n = 16
	out := make([]*query.Query, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, _, err := c.get("shared", func() (*query.Query, error) { return query.Substring("race") })
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = q
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if out[i] != out[0] {
			t.Fatalf("goroutine %d holds a different compiled query than goroutine 0", i)
		}
	}
	if c.len() != 1 {
		t.Errorf("cache holds %d entries for one key, want 1", c.len())
	}
}

func TestQueryRequestCacheKeyDistinguishesSpecs(t *testing.T) {
	keys := map[string]string{}
	specs := []queryRequest{
		{Terms: []string{"ab"}},
		{Terms: []string{"ab"}, Mode: "keyword"},
		{Terms: []string{"ab"}, Combine: "or"},
		{Terms: []string{"ab"}, Not: "cd"},
		{Terms: []string{"ab", "cd"}},
		{Terms: []string{"abcd"}},
		{Terms: []string{"ab", "cd"}, Combine: "or"},
	}
	for i, s := range specs {
		k := s.cacheKey()
		if prev, dup := keys[k]; dup {
			t.Errorf("specs %s and %d share cache key %q", prev, i, k)
		}
		keys[k] = fmt.Sprint(i)
	}
	// Identical specs must share a key, and runtime options must not
	// fragment the cache.
	a := queryRequest{Terms: []string{"ab"}, Top: 5, MinProb: 0.5, TimeoutMS: 100}
	b := queryRequest{Terms: []string{"ab"}}
	if a.cacheKey() != b.cacheKey() {
		t.Error("runtime-only options changed the cache key; the compiled query is the same")
	}
}
