package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/fuzzy"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// newTestServer builds a Server over a fresh in-memory DB and mounts it
// on an httptest server. Callers own neither: cleanup closes both, and
// tests that shut the Server down themselves rely on Shutdown being
// idempotent.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	db, err := staccatodb.OpenMem()
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// testDocs generates a small deterministic corpus.
func testDocs(t *testing.T, n int) []*staccato.Doc {
	t.Helper()
	cases, err := testgen.Docs(n, testgen.Config{Length: 40, Seed: 7}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*staccato.Doc, len(cases))
	for i, c := range cases {
		docs[i] = c.Doc
	}
	return docs
}

// postJSON posts v to url and returns the response status and decoded
// body bytes.
func postJSON(t *testing.T, client *http.Client, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJSON(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestIngestSearchExplainRoundTrip drives the full request lifecycle a
// client sees: batch-ingest a corpus over the wire, search for a term a
// document is known to contain, confirm per-result probabilities and
// execution stats come back, explain the same query, then point-get and
// delete a document.
func TestIngestSearchExplainRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	docs := testDocs(t, 20)

	status, body := postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: docs})
	if status != http.StatusOK {
		t.Fatalf("ingest: status %d, body %s", status, body)
	}
	var ing ingestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Ingested != len(docs) || ing.Docs != len(docs) {
		t.Fatalf("ingest response = %+v, want %d ingested over %d docs", ing, len(docs), len(docs))
	}

	// A substring of a stored document's MAP reading must match that
	// document with positive probability.
	term := docs[0].MAP()[:4]
	status, body = postJSON(t, client, ts.URL+"/v1/search", queryRequest{Terms: []string{term}, Top: 10})
	if status != http.StatusOK {
		t.Fatalf("search: status %d, body %s", status, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) == 0 {
		t.Fatalf("search for %q of doc %s returned no results; body %s", term, docs[0].ID, body)
	}
	found := false
	for _, r := range sr.Results {
		if r.DocID == docs[0].ID && r.Prob > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("search for %q did not surface %s with positive probability: %s", term, docs[0].ID, body)
	}
	if sr.Stats.Mode == "" {
		t.Errorf("search stats missing execution mode: %s", body)
	}
	if sr.Stats.DocsTotal != len(docs) {
		t.Errorf("search stats docs_total = %d, want %d", sr.Stats.DocsTotal, len(docs))
	}

	status, body = postJSON(t, client, ts.URL+"/v1/explain", queryRequest{Terms: []string{term}})
	if status != http.StatusOK {
		t.Fatalf("explain: status %d, body %s", status, body)
	}
	var ex explainResponse
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Mode == "" || !strings.Contains(ex.Explain, "plan:") {
		t.Errorf("explain response incomplete: %s", body)
	}
	if ex.Matches == 0 {
		t.Errorf("explain reported zero matches for a matching query: %s", body)
	}

	// Point get, delete, then confirm the document is gone.
	status, body = getJSON(t, client, ts.URL+"/v1/docs/"+docs[0].ID)
	if status != http.StatusOK {
		t.Fatalf("get: status %d, body %s", status, body)
	}
	var got staccato.Doc
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != docs[0].ID || len(got.Chunks) != len(docs[0].Chunks) {
		t.Errorf("get returned a different document: %s", body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/docs/"+docs[0].ID, nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if status, _ = getJSON(t, client, ts.URL+"/v1/docs/"+docs[0].ID); status != http.StatusNotFound {
		t.Errorf("get after delete: status %d, want 404", status)
	}
}

// TestQueryCacheObservable confirms compile reuse is visible on the
// wire: the first search for a spec is a miss, the second a hit, and
// /v1/stats reports both.
func TestQueryCacheObservable(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: testDocs(t, 5)})

	spec := queryRequest{Terms: []string{"abcd"}, Mode: "substring"}
	var sr searchResponse
	_, body := postJSON(t, client, ts.URL+"/v1/search", spec)
	json.Unmarshal(body, &sr)
	if sr.CacheHit {
		t.Error("first search reported a cache hit")
	}
	_, body = postJSON(t, client, ts.URL+"/v1/search", spec)
	json.Unmarshal(body, &sr)
	if !sr.CacheHit {
		t.Error("second identical search reported a cache miss")
	}

	_, body = getJSON(t, client, ts.URL+"/v1/stats")
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Server.QueryCache.Hits != 1 || st.Server.QueryCache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st.Server.QueryCache)
	}
	if st.DB.Docs != 5 {
		t.Errorf("stats db.docs = %d, want 5", st.DB.Docs)
	}
}

// TestMalformedRequests pins the 400 surface: syntactically broken JSON,
// unknown fields, empty term lists, and invalid enum values are all
// client errors with a JSON error body — never 500s.
func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()

	cases := []struct {
		name string
		url  string
		body string
	}{
		{"truncated json", "/v1/search", `{"terms": ["ab"`},
		{"unknown field", "/v1/search", `{"terms": ["ab"], "nope": 1}`},
		{"trailing garbage", "/v1/search", `{"terms": ["ab"]} junk`},
		{"no terms", "/v1/search", `{}`},
		{"bad mode", "/v1/search", `{"terms": ["ab"], "mode": "regex"}`},
		{"bad combine", "/v1/search", `{"terms": ["ab"], "combine": "xor"}`},
		{"ingest no docs", "/v1/ingest", `{"docs": []}`},
		{"ingest empty id", "/v1/ingest", `{"docs": [{"id": ""}]}`},
		{"explain bad body", "/v1/explain", `[1,2,3]`},
		{"snippets truncated json", "/v1/snippets", `{"terms": ["ab"`},
		{"snippets unknown field", "/v1/snippets", `{"terms": ["ab"], "nope": 1}`},
		{"snippets no terms", "/v1/snippets", `{}`},
		{"snippets bad mode", "/v1/snippets", `{"terms": ["ab"], "mode": "regex"}`},
		{"snippets negative readings", "/v1/snippets", `{"terms": ["ab"], "max_readings": -1}`},
		{"snippets oversized readings", "/v1/snippets", `{"terms": ["ab"], "max_readings": 65}`},
		{"snippets oversized enumerate", "/v1/snippets", `{"terms": ["ab"], "max_enumerate": 65537}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := client.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, data)
			}
			var er errorResponse
			if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
				t.Errorf("error body is not the JSON error shape: %s", data)
			}
		})
	}
}

// TestDeadlineExceededReturns504 pins the deadline contract: a request
// whose context expires mid-execution returns 504, not 500 and not a
// hang. The test hook parks the handler until the request deadline has
// actually fired, making the timeout deterministic.
func TestDeadlineExceededReturns504(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	s.testHookSearch = func(ctx context.Context) { <-ctx.Done() }
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: testDocs(t, 3)})

	status, body := postJSON(t, client, ts.URL+"/v1/search",
		queryRequest{Terms: []string{"abcd"}, TimeoutMS: 10})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "deadline") {
		t.Errorf("504 body should name the deadline: %s", body)
	}
}

// TestOverloadReturns429 pins admission control: with MaxInFlight=1 and
// one request parked in the handler, the next request is rejected
// immediately with 429 + Retry-After, and the rejection is counted in
// /v1/stats — no silent drops.
func TestOverloadReturns429(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	s.testHookSearch = func(ctx context.Context) {
		started <- struct{}{}
		<-release
	}
	client := ts.Client()

	firstDone := make(chan int)
	go func() {
		status, _ := postJSON(t, client, ts.URL+"/v1/search", queryRequest{Terms: []string{"abcd"}})
		firstDone <- status
	}()
	<-started // the semaphore's one slot is now held

	body, _ := json.Marshal(queryRequest{Terms: []string{"wxyz"}})
	resp, err := client.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}

	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("parked request finished with %d, want 200", status)
	}

	_, sb := getJSON(t, client, ts.URL+"/v1/stats")
	var st statsResponse
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Server.Rejected != 1 {
		t.Errorf("stats rejected = %d, want 1", st.Server.Rejected)
	}
	if st.Server.Requests["search"].Errors < 1 {
		t.Errorf("the 429 was not counted as a search-endpoint error: %+v", st.Server.Requests["search"])
	}
}

// TestGracefulShutdownDrains pins the drain invariant: Shutdown refuses
// new requests immediately, but does not return — and does not close
// the DB — until the in-flight request has completed successfully.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	db, err := staccatodb.OpenMem()
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Options{})
	s.testHookSearch = func(ctx context.Context) {
		started <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: testDocs(t, 3)})

	searchDone := make(chan int)
	go func() {
		status, _ := postJSON(t, client, ts.URL+"/v1/search", queryRequest{Terms: []string{"abcd"}})
		searchDone <- status
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// New requests must be refused once draining begins; poll because
	// Shutdown's drain flag races this goroutine by a few microseconds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _ := getJSON(t, client, ts.URL+"/healthz")
		if status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started refusing requests after Shutdown")
		}
		time.Sleep(time.Millisecond)
	}

	// The in-flight search is still parked, so Shutdown must not have
	// completed — and the DB must still be open underneath it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if status := <-searchDone; status != http.StatusOK {
		t.Fatalf("in-flight search finished with %d, want 200 (drain must not break it)", status)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Only now is the DB closed.
	if _, err := db.Get(context.Background(), "doc-0001"); !errors.Is(err, staccatodb.ErrClosed) {
		t.Errorf("db.Get after Shutdown = %v, want ErrClosed", err)
	}
}

// TestShutdownTimeoutLeavesDBOpen: if the drain deadline fires first,
// Shutdown reports it and leaves the DB open for the still-running
// request rather than yanking it away.
func TestShutdownTimeoutLeavesDBOpen(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	db, err := staccatodb.OpenMem()
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Options{})
	s.testHookSearch = func(ctx context.Context) {
		started <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: testDocs(t, 3)})

	searchDone := make(chan int)
	go func() {
		status, _ := postJSON(t, client, ts.URL+"/v1/search", queryRequest{Terms: []string{"abcd"}})
		searchDone <- status
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with expired drain deadline = %v, want DeadlineExceeded", err)
	}
	if _, err := db.Get(context.Background(), "doc-0001"); errors.Is(err, staccatodb.ErrClosed) {
		t.Fatal("DB was closed under an in-flight request")
	}
	close(release)
	if status := <-searchDone; status != http.StatusOK {
		t.Fatalf("in-flight search finished with %d, want 200", status)
	}
	// A second Shutdown with room to drain completes and closes the DB.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Shutdown(ctx2); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestConcurrentMixedClients hammers the server with concurrent mixed
// ingest/search/get/delete clients — the -race pass over the serving
// path — and proves the accounting invariant: every response is an
// expected status, and every admission rejection the clients saw is
// counted by the server. Nothing is dropped unreported.
func TestConcurrentMixedClients(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxInFlight: 4})
	client := ts.Client()
	docs := testDocs(t, 10)
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: docs})
	terms := []string{docs[0].MAP()[:3], docs[1].MAP()[:3], "zq"}

	const clients = 16
	const opsPerClient = 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	statusCounts := map[int]int{}
	unexpected := map[int]int{}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				var status int
				switch i % 5 {
				case 0: // write
					doc := *docs[c%len(docs)]
					doc.ID = fmt.Sprintf("mixed-%d-%d", c, i)
					status, _ = postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: []*staccato.Doc{&doc}})
				case 1: // point read, sometimes of a deleted/unknown doc
					status, _ = getJSON(t, client, ts.URL+"/v1/docs/"+fmt.Sprintf("mixed-%d-%d", c, i-1))
				case 2: // delete (often a no-op)
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/docs/"+fmt.Sprintf("mixed-%d-0", c), nil)
					resp, err := client.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					status = resp.StatusCode
				default: // search
					status, _ = postJSON(t, client, ts.URL+"/v1/search",
						queryRequest{Terms: []string{terms[i%len(terms)]}, Top: 5})
				}
				mu.Lock()
				statusCounts[status]++
				switch status {
				case http.StatusOK, http.StatusNotFound, http.StatusTooManyRequests:
				default:
					unexpected[status]++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if len(unexpected) > 0 {
		t.Fatalf("unexpected statuses under load: %v (all: %v)", unexpected, statusCounts)
	}
	_, body := getJSON(t, client, ts.URL+"/v1/stats")
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if got, want := st.Server.Rejected, int64(statusCounts[http.StatusTooManyRequests]); got != want {
		t.Errorf("server counted %d rejections, clients observed %d — a rejection went unreported", got, want)
	}
	total := int64(0)
	for _, name := range []string{"ingest", "search", "get_doc", "delete_doc"} {
		total += st.Server.Requests[name].Count
	}
	// +1 for the setup ingest; the stats fetch itself books under "stats".
	if want := int64(clients*opsPerClient + 1); total != want {
		t.Errorf("endpoint counters sum to %d requests, want %d", total, want)
	}
}

// TestExpvarEndpoint sanity-checks /debug/vars: valid JSON carrying the
// service counters.
func TestExpvarEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/search", queryRequest{Terms: []string{"ab"}})
	status, body := getJSON(t, client, ts.URL+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	var inner map[string]json.RawMessage
	if err := json.Unmarshal(vars["staccatod"], &inner); err != nil {
		t.Fatalf("staccatod var map is not valid JSON: %v", err)
	}
	for _, key := range []string{"requests", "cache_hits", "cache_misses", "rejected", "in_flight", "engine_workers", "max_in_flight"} {
		if _, ok := inner[key]; !ok {
			t.Errorf("/debug/vars missing %q: %s", key, body)
		}
	}
}

// TestHealth covers the trivial endpoint and its draining flip side is
// covered by TestGracefulShutdownDrains.
func TestHealth(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := getJSON(t, ts.Client(), ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
		t.Errorf("health body: %s", body)
	}
}

// TestStatsSharesDBShape pins the satellite contract: the "db" object in
// /v1/stats is staccatodb.Stats's canonical JSON — unmarshalling it
// yields exactly DB.Stats(), so the CLI's verbose stats line and the
// endpoint can never disagree about doc counts or index persistence.
func TestStatsSharesDBShape(t *testing.T) {
	db, err := staccatodb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: testDocs(t, 4)})

	_, body := getJSON(t, client, ts.URL+"/v1/stats")
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.DB != db.Stats() {
		t.Errorf("/v1/stats db = %+v, want DB.Stats() = %+v", st.DB, db.Stats())
	}
	if !st.DB.IndexPersisted || st.DB.Docs != 4 {
		t.Errorf("disk-backed stats should report a persisted index over 4 docs: %+v", st.DB)
	}
}

// TestSnippetsEndpoint exercises /v1/snippets end to end: the round
// trip (snippets align with search's ranking, every span witnesses its
// term), the shared compiled-query cache (a prior identical search makes
// the snippets call a cache hit), and the stats counters (the endpoint's
// request and error counts reconcile with the calls made).
func TestSnippetsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	docs := testDocs(t, 20)
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: docs})

	term := docs[0].MAP()[:4]
	spec := queryRequest{Terms: []string{term}, Top: 10}

	// Prime the compiled-query cache through /v1/search; the snippets
	// endpoint shares the same cache keyed on the query-defining fields.
	status, body := postJSON(t, client, ts.URL+"/v1/search", spec)
	if status != http.StatusOK {
		t.Fatalf("search: status %d, body %s", status, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) == 0 {
		t.Fatalf("search for %q returned no results; body %s", term, body)
	}

	status, body = postJSON(t, client, ts.URL+"/v1/snippets",
		snippetsRequest{queryRequest: spec, MaxReadings: 2})
	if status != http.StatusOK {
		t.Fatalf("snippets: status %d, body %s", status, body)
	}
	var snr snippetsResponse
	if err := json.Unmarshal(body, &snr); err != nil {
		t.Fatal(err)
	}
	if !snr.CacheHit {
		t.Error("snippets after an identical search reported a compile-cache miss")
	}
	if snr.Stats.Mode == "" {
		t.Errorf("snippets stats missing execution mode: %s", body)
	}
	if len(snr.Snippets) != len(sr.Results) {
		t.Fatalf("%d snippets for %d search results", len(snr.Snippets), len(sr.Results))
	}
	for i, sn := range snr.Snippets {
		if sn.DocID != sr.Results[i].DocID {
			t.Fatalf("snippet %d is doc %q, search ranked %q there", i, sn.DocID, sr.Results[i].DocID)
		}
		//lint:allow floateq the snippet prob is documented as exactly the Result.Prob Search ranks by
		if sn.Prob != sr.Results[i].Prob {
			t.Errorf("doc %s: snippet prob %v != search prob %v", sn.DocID, sn.Prob, sr.Results[i].Prob)
		}
		if len(sn.Readings) == 0 && !sn.Truncated {
			t.Errorf("doc %s matched but reported no readings and no truncation", sn.DocID)
		}
		if len(sn.Readings) > 2 {
			t.Errorf("doc %s: %d readings exceed max_readings=2", sn.DocID, len(sn.Readings))
		}
		for _, rd := range sn.Readings {
			if len(rd.Spans) == 0 {
				t.Errorf("doc %s: matching reading %q carries no spans", sn.DocID, rd.Text)
			}
			for _, sp := range rd.Spans {
				if sp.Term != term || sp.Start < 0 || sp.End > len(rd.Text) || rd.Text[sp.Start:sp.End] != term {
					t.Errorf("doc %s: span %+v does not witness %q in %q", sn.DocID, sp, term, rd.Text)
				}
			}
		}
	}

	// One client error, booked against the endpoint's error counter.
	status, _ = postJSON(t, client, ts.URL+"/v1/snippets",
		snippetsRequest{queryRequest: spec, MaxReadings: -1})
	if status != http.StatusBadRequest {
		t.Fatalf("negative max_readings: status %d, want 400", status)
	}

	_, body = getJSON(t, client, ts.URL+"/v1/stats")
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	ep, ok := st.Server.Requests["snippets"]
	if !ok {
		t.Fatalf("stats carry no 'snippets' endpoint counters: %s", body)
	}
	if ep.Count != 2 || ep.Errors != 1 {
		t.Errorf("snippets counters = %+v, want 2 requests / 1 error", ep)
	}
	if st.Server.QueryCache.Hits != 1 {
		t.Errorf("query cache hits = %d, want exactly the snippets reuse", st.Server.QueryCache.Hits)
	}
}

// TestCacheKeyCoversQueryDefiningFields is the regression guard for the
// compiled-query cache: every field that changes what a query evaluates
// must change the key, so two different specs can never share an entry.
func TestCacheKeyCoversQueryDefiningFields(t *testing.T) {
	base := queryRequest{Terms: []string{"abcd"}, Mode: "fuzzy", Distance: 1, Combine: "and"}
	same := base
	if base.cacheKey() != same.cacheKey() {
		t.Fatal("identical specs produced different cache keys")
	}
	variants := map[string]queryRequest{
		"term":     {Terms: []string{"abce"}, Mode: "fuzzy", Distance: 1, Combine: "and"},
		"terms":    {Terms: []string{"abcd", "abce"}, Mode: "fuzzy", Distance: 1, Combine: "and"},
		"mode":     {Terms: []string{"abcd"}, Mode: "substring", Distance: 1, Combine: "and"},
		"distance": {Terms: []string{"abcd"}, Mode: "fuzzy", Distance: 2, Combine: "and"},
		"lexicon":  {Terms: []string{"abcd"}, Mode: "fuzzy", Distance: 1, Combine: "and", Lexicon: true},
		"combine":  {Terms: []string{"abcd"}, Mode: "fuzzy", Distance: 1, Combine: "or"},
		"not":      {Terms: []string{"abcd"}, Mode: "fuzzy", Distance: 1, Combine: "and", Not: "zz"},
	}
	for field, v := range variants {
		if v.cacheKey() == base.cacheKey() {
			t.Errorf("specs differing only in %s share a cache key %q", field, base.cacheKey())
		}
	}
	// Field values must not bleed into each other through the separator:
	// a term containing what another field contributes stays distinct.
	a := queryRequest{Terms: []string{"x"}, Not: "y"}
	b := queryRequest{Terms: []string{"y"}, Not: "x"}
	if a.cacheKey() == b.cacheKey() {
		t.Error("swapped term/not values share a cache key")
	}
}

// TestFuzzyDistanceNeverSharesCacheEntry drives the regression over the
// wire: two searches identical except for distance must both be cache
// misses — a shared entry would silently answer the second query with
// the first one's automaton.
func TestFuzzyDistanceNeverSharesCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: testDocs(t, 5)})

	var sr searchResponse
	for i, d := range []int{1, 2, 1} {
		status, body := postJSON(t, client, ts.URL+"/v1/search",
			queryRequest{Terms: []string{"abcd"}, Mode: "fuzzy", Distance: d})
		if status != http.StatusOK {
			t.Fatalf("fuzzy search distance %d: status %d, body %s", d, status, body)
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		wantHit := i == 2 // only the repeat of distance 1 may reuse a compile
		if sr.CacheHit != wantHit {
			t.Errorf("fuzzy search %d (distance %d): cache_hit = %v, want %v", i, d, sr.CacheHit, wantHit)
		}
	}
}

// TestFuzzySearchEndpoint checks the fuzzy leaf over the wire: a term
// with one corrupted rune misses as an exact substring but finds its
// document at distance 1, and the invalid spec corners are 400s.
func TestFuzzySearchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	docs := testDocs(t, 20)
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: docs})

	term := []rune(docs[0].MAP()[:6])
	term[2] = '0' // never in the synthetic alphabet
	corrupted := string(term)

	var sr searchResponse
	_, body := postJSON(t, client, ts.URL+"/v1/search", queryRequest{Terms: []string{corrupted}, Top: 0})
	json.Unmarshal(body, &sr)
	for _, r := range sr.Results {
		if r.DocID == docs[0].ID {
			t.Fatalf("exact search already finds corrupted term %q", corrupted)
		}
	}

	status, body := postJSON(t, client, ts.URL+"/v1/search",
		queryRequest{Terms: []string{corrupted}, Mode: "fuzzy", Distance: 1})
	if status != http.StatusOK {
		t.Fatalf("fuzzy search: status %d, body %s", status, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range sr.Results {
		found = found || r.DocID == docs[0].ID && r.Prob > 0
	}
	if !found {
		t.Errorf("fuzzy search for %q did not surface %s: %s", corrupted, docs[0].ID, body)
	}

	for name, bad := range map[string]queryRequest{
		"distance without fuzzy mode": {Terms: []string{"abcd"}, Distance: 1},
		"distance beyond maximum":     {Terms: []string{"abcd"}, Mode: "fuzzy", Distance: 3},
		"negative distance":           {Terms: []string{"abcd"}, Mode: "fuzzy", Distance: -1},
		"lexicon without a lexicon":   {Terms: []string{"abcd"}, Lexicon: true},
	} {
		if status, body := postJSON(t, client, ts.URL+"/v1/search", bad); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body %s", name, status, body)
		}
	}
}

// TestLexiconRescoringAndSnippetContext starts the server with a
// lexicon and checks a lexicon-ranked fuzzy search succeeds, matches the
// plain search's document set, and the snippets endpoint attaches
// context windows (with its range guard enforced).
func TestLexiconRescoringAndSnippetContext(t *testing.T) {
	docs := testDocs(t, 20)
	var words []string
	for _, d := range docs {
		words = append(words, strings.Fields(d.MAP())...)
	}
	_, ts := newTestServer(t, Options{Lexicon: fuzzy.NewLexicon(words)})
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/ingest", ingestRequest{Docs: docs})

	term := docs[0].MAP()[:4]
	var plain, scored searchResponse
	_, body := postJSON(t, client, ts.URL+"/v1/search", queryRequest{Terms: []string{term}})
	json.Unmarshal(body, &plain)
	status, body := postJSON(t, client, ts.URL+"/v1/search", queryRequest{Terms: []string{term}, Lexicon: true})
	if status != http.StatusOK {
		t.Fatalf("lexicon search: status %d, body %s", status, body)
	}
	if err := json.Unmarshal(body, &scored); err != nil {
		t.Fatal(err)
	}
	if len(plain.Results) == 0 {
		t.Fatal("plain search matched nothing; probe term is bad")
	}
	ids := func(sr searchResponse) map[string]bool {
		out := map[string]bool{}
		for _, r := range sr.Results {
			out[r.DocID] = true
		}
		return out
	}
	if got, want := ids(scored), ids(plain); len(got) != len(want) {
		t.Errorf("lexicon rescoring changed the matched set: %v vs %v", got, want)
	}

	sreq := snippetsRequest{MaxReadings: 2, ContextRunes: 5}
	sreq.Terms = []string{term}
	sreq.Lexicon = true
	status, body = postJSON(t, client, ts.URL+"/v1/snippets", sreq)
	if status != http.StatusOK {
		t.Fatalf("snippets with context: status %d, body %s", status, body)
	}
	var snr snippetsResponse
	if err := json.Unmarshal(body, &snr); err != nil {
		t.Fatal(err)
	}
	sawContext := false
	for _, sn := range snr.Snippets {
		for _, rd := range sn.Readings {
			for _, sp := range rd.Spans {
				if sp.Context == "" {
					t.Errorf("doc %s: span %s@%d-%d missing context", sn.DocID, sp.Term, sp.Start, sp.End)
					continue
				}
				sawContext = true
				if !strings.Contains(sp.Context, rd.Text[sp.Start:sp.End]) {
					t.Errorf("doc %s: context %q does not contain the match", sn.DocID, sp.Context)
				}
			}
		}
	}
	if !sawContext {
		t.Fatal("no span carried a context window")
	}

	over := snippetsRequest{ContextRunes: maxSnippetContext + 1}
	over.Terms = []string{term}
	if status, body := postJSON(t, client, ts.URL+"/v1/snippets", over); status != http.StatusBadRequest {
		t.Errorf("oversized context_runes: status %d, want 400; body %s", status, body)
	}
}
