// Package server turns a staccatodb.DB into a long-running HTTP/JSON
// service — the network face of the system. One Server owns one DB and
// exposes ingest (batched), search and explain (per-result
// probabilities plus full execution stats — probability semantics stay
// first-class on the wire, never flattened to matched/not-matched),
// point get/delete, stats, and health.
//
// Between the socket and the engine sit the three mechanisms a serving
// path needs that a CLI does not:
//
//   - A compiled-query LRU cache. Queries arrive as strings; compiling
//     one is pure CPU that repeat traffic should not re-pay. The cache
//     is keyed by the canonical query spec and its hit rate is part of
//     the exported metrics.
//   - Admission control. In-flight requests are bounded by a semaphore;
//     a request that cannot be admitted is rejected immediately with
//     429 and a Retry-After hint, and every rejection is counted —
//     under overload the server sheds load loudly instead of queueing
//     without bound, and no rejection is ever silent.
//   - Per-request deadlines. Every DB call runs under a context
//     deadline (the server default, tightened per request via
//     timeout_ms); a request that exceeds it returns 504 with the
//     deadline error rather than occupying a worker forever.
//
// Shutdown is graceful by construction: Shutdown marks the server
// draining (new requests get 503, health reports draining so load
// balancers stop routing), waits for every in-flight request to finish,
// and only then closes the DB — an admitted request never observes a
// closed database.
//
// Metrics are expvar-based: request counts, error counts, and
// fixed-bucket latency histograms per endpoint, cache hits/misses,
// rejected count, the in-flight gauge, and the engine worker ceiling,
// served both at /debug/vars (expvar JSON) and inside /v1/stats next to
// the database's own stats.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/paper-repo/staccato-go/pkg/fuzzy"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// Defaults for Options zero values.
const (
	DefaultMaxInFlight    = 256
	DefaultRequestTimeout = 10 * time.Second
	DefaultQueryCacheSize = 256
	DefaultRetryAfter     = 1 * time.Second
)

// maxBodyBytes bounds request bodies: generous for document batches,
// tight for queries — a malformed client must not buffer the server into
// the ground.
const (
	maxIngestBodyBytes = 64 << 20 // 64 MiB of documents per batch
	maxQueryBodyBytes  = 1 << 20  // 1 MiB of query spec
)

// Options configures a Server. Zero values select the defaults above.
type Options struct {
	// MaxInFlight bounds how many requests may be in the DB-touching
	// handlers at once; requests beyond it are rejected with 429.
	MaxInFlight int
	// RequestTimeout is the per-request deadline applied to every DB
	// call. A request's timeout_ms can tighten it but never extend it.
	RequestTimeout time.Duration
	// QueryCacheSize is the compiled-query LRU capacity.
	QueryCacheSize int
	// RetryAfter is the hint returned in the Retry-After header of 429
	// responses.
	RetryAfter time.Duration
	// Lexicon, when non-nil, enables lexicon rescoring: a request setting
	// "lexicon": true is ranked under Lexicon.Rescorer(LexiconBoost).
	// When nil, such requests are rejected with 400 — the knob must fail
	// loudly, not silently rank without the dictionary.
	Lexicon *fuzzy.Lexicon
	// LexiconBoost is the rescoring boost applied per fully in-dictionary
	// token; zero selects fuzzy.DefaultBoost.
	LexiconBoost float64
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.QueryCacheSize <= 0 {
		o.QueryCacheSize = DefaultQueryCacheSize
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	if o.LexiconBoost <= 0 {
		o.LexiconBoost = fuzzy.DefaultBoost
	}
	return o
}

// Server serves one staccatodb.DB over HTTP. Create with New, mount
// Handler on an http.Server, and stop with Shutdown. The Server owns
// the DB from New onward: Shutdown closes it.
type Server struct {
	db      *staccatodb.DB
	opts    Options
	cache   *queryCache
	met     *metrics
	sem     chan struct{}
	mux     *http.ServeMux
	rescore func(*staccato.Doc) *staccato.Doc // nil unless Options.Lexicon is set

	mu       sync.Mutex
	draining bool
	closed   bool
	inflight sync.WaitGroup

	// testHookSearch, when non-nil, runs inside the search handler after
	// the request context is derived and before the engine is invoked —
	// the deterministic seam the deadline, overload, and drain tests
	// block on. Set it before the server starts serving.
	testHookSearch func(ctx context.Context)
}

// New returns a Server over db. db must be non-nil and open; the Server
// takes ownership and closes it during Shutdown.
func New(db *staccatodb.DB, opts Options) *Server {
	if db == nil {
		panic("server: New requires a non-nil DB")
	}
	opts = opts.withDefaults()
	s := &Server{
		db:    db,
		opts:  opts,
		cache: newQueryCache(opts.QueryCacheSize),
		sem:   make(chan struct{}, opts.MaxInFlight),
	}
	if opts.Lexicon != nil {
		s.rescore = opts.Lexicon.Rescorer(opts.LexiconBoost)
	}
	endpoints := []string{"ingest", "search", "snippets", "explain", "get_doc", "delete_doc", "stats", "health"}
	s.met = newMetrics(endpoints, s.cache, db.Workers(), opts.MaxInFlight)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ingest", s.endpoint("ingest", true, s.handleIngest))
	s.mux.HandleFunc("POST /v1/search", s.endpoint("search", true, s.handleSearch))
	s.mux.HandleFunc("POST /v1/snippets", s.endpoint("snippets", true, s.handleSnippets))
	s.mux.HandleFunc("POST /v1/explain", s.endpoint("explain", true, s.handleExplain))
	s.mux.HandleFunc("GET /v1/docs/{id}", s.endpoint("get_doc", true, s.handleGetDoc))
	s.mux.HandleFunc("DELETE /v1/docs/{id}", s.endpoint("delete_doc", true, s.handleDeleteDoc))
	// Stats and health skip admission: observability must keep answering
	// precisely when the server is saturated enough to reject work.
	s.mux.HandleFunc("GET /v1/stats", s.endpoint("stats", false, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.endpoint("health", false, s.handleHealth))
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Options returns the server's resolved configuration — the caller's
// Options with every zero value replaced by its default.
func (s *Server) Options() Options { return s.opts }

// Shutdown gracefully stops the server: it marks the server draining
// (new requests are refused with 503, health reports draining), waits
// for every in-flight request to complete, and then closes the DB. If
// ctx expires first, Shutdown returns ctx's error WITHOUT closing the
// DB — in-flight requests are still running against it; call Shutdown
// again (or close the DB directly) to force the issue.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.draining = true
	s.mu.Unlock()
	if alreadyClosed {
		return nil
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w (in-flight requests still draining; db left open)", ctx.Err())
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.db.Close()
}

// beginRequest registers a request with the drain accounting. It returns
// false when the server is draining, in which case the request must be
// refused and end may not be called.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// endpoint wraps a handler with the request lifecycle every endpoint
// shares, in order: drain gate (503 once Shutdown begins), admission
// control when admit is set (429 + Retry-After when MaxInFlight requests
// are already in the handlers), then metrics (count, error count,
// latency histogram). The deadline is applied inside the handlers, where
// the request's own timeout_ms is known.
func (s *Server) endpoint(name string, admit bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if !s.beginRequest() {
			writeError(sw, http.StatusServiceUnavailable, "server is shutting down")
			s.met.record(name, sw.status, time.Since(start))
			return
		}
		defer s.inflight.Done()
		if admit {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
				s.met.inFlight.Add(1)
				defer s.met.inFlight.Add(-1)
			default:
				s.met.rejected.Add(1)
				secs := int(math.Ceil(s.opts.RetryAfter.Seconds()))
				if secs < 1 {
					secs = 1
				}
				sw.Header().Set("Retry-After", fmt.Sprint(secs))
				writeError(sw, http.StatusTooManyRequests,
					"server at capacity (%d requests in flight); retry after %ds", s.opts.MaxInFlight, secs)
				s.met.record(name, sw.status, time.Since(start))
				return
			}
		}
		h(sw, r)
		s.met.record(name, sw.status, time.Since(start))
	}
}

// requestCtx derives the request's working context: the server's default
// deadline, tightened to timeoutMS when the request asked for less.
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opts.RequestTimeout
	if timeoutMS > 0 {
		if t := time.Duration(timeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // the status line is already out; a failed body write has no better channel
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeDBError maps a DB call's failure onto the right status: exceeded
// deadlines are the gateway-timeout contract (504), a closed DB means
// the server is going away (503), anything else is a plain 500.
func writeDBError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded: %v", err)
	case errors.Is(err, context.Canceled):
		// The client went away; the status is a formality it will not read.
		writeError(w, http.StatusServiceUnavailable, "request canceled: %v", err)
	case errors.Is(err, staccatodb.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "database is closed")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// decodeBody strictly decodes r's JSON body into v: unknown fields,
// trailing garbage, and bodies over limit are all 400-level errors
// reported by the returned error.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid JSON body: trailing data after the request object")
	}
	return nil
}

// queryRequest is the wire form of a query: a term list plus the same
// shaping knobs the CLI exposes. It compiles to exactly the boolean
// Query `staccato search` would build for the same inputs.
type queryRequest struct {
	// Terms are the query terms; at least one is required.
	Terms []string `json:"terms"`
	// Mode is the leaf type: "substring" (default), "keyword", or "fuzzy".
	Mode string `json:"mode,omitempty"`
	// Distance is the edit distance of fuzzy leaves, in
	// [0, fuzzy.MaxDistance]. Only valid with mode "fuzzy".
	Distance int `json:"distance,omitempty"`
	// Lexicon, when true, ranks under the server's lexicon rescorer;
	// rejected with 400 when the server was started without a lexicon.
	Lexicon bool `json:"lexicon,omitempty"`
	// Combine joins multiple terms: "and" (default) or "or".
	Combine string `json:"combine,omitempty"`
	// Not, when set, additionally requires this term to be absent.
	Not string `json:"not,omitempty"`
	// MinProb drops results below this probability.
	MinProb float64 `json:"min_prob,omitempty"`
	// Top keeps only the N best-ranked results; zero keeps all.
	Top int `json:"top,omitempty"`
	// TimeoutMS tightens the server's request deadline for this call;
	// it can never extend past the server's configured maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// cacheKey canonicalizes the query-defining part of the request — every
// field that changes what a hit would evaluate, so two specs differing
// only in, say, distance can never share an entry. Lexicon is included
// even though it shapes SearchOptions rather than the compiled Query:
// keying it keeps the cache key aligned with "same spec, same results"
// rather than an implementation detail of what the cache stores.
func (q *queryRequest) cacheKey() string {
	parts := make([]string, 0, len(q.Terms)+5)
	parts = append(parts, q.Mode, strconv.Itoa(q.Distance), strconv.FormatBool(q.Lexicon), q.Combine, q.Not)
	parts = append(parts, q.Terms...)
	return strings.Join(parts, "\x00")
}

// compile builds the boolean Query the request describes. The logic
// mirrors the CLI's term handling so the two front ends cannot drift.
func (q *queryRequest) compile() (*query.Query, error) {
	leafFor := func(term string) (*query.Query, error) {
		switch q.Mode {
		case "", "substring":
			return query.Substring(term)
		case "keyword":
			return query.Keyword(term)
		case "fuzzy":
			return query.Fuzzy(term, q.Distance)
		default:
			return nil, fmt.Errorf("unknown mode %q (want substring, keyword, or fuzzy)", q.Mode)
		}
	}
	if len(q.Terms) == 0 {
		return nil, errors.New("at least one query term is required")
	}
	if q.Distance != 0 && q.Mode != "fuzzy" {
		return nil, fmt.Errorf("distance %d is only valid with mode fuzzy", q.Distance)
	}
	leaves := make([]*query.Query, len(q.Terms))
	for i, term := range q.Terms {
		leaf, err := leafFor(term)
		if err != nil {
			return nil, err
		}
		leaves[i] = leaf
	}
	var out *query.Query
	switch q.Combine {
	case "", "and":
		out = query.And(leaves[0], leaves[1:]...)
	case "or":
		out = query.Or(leaves[0], leaves[1:]...)
	default:
		return nil, fmt.Errorf("unknown combine %q (want and or or)", q.Combine)
	}
	if q.Not != "" {
		neg, err := leafFor(q.Not)
		if err != nil {
			return nil, err
		}
		out = query.And(out, query.Not(neg))
	}
	return out, nil
}

// compiledQuery resolves the request through the cache.
func (s *Server) compiledQuery(req *queryRequest) (*query.Query, bool, error) {
	return s.cache.get(req.cacheKey(), req.compile)
}

// searchOptions builds the engine options a query request asks for,
// failing when the request wants lexicon rescoring the server cannot
// provide.
func (s *Server) searchOptions(req *queryRequest) (query.SearchOptions, error) {
	opts := query.SearchOptions{MinProb: req.MinProb, TopN: req.Top}
	if req.Lexicon {
		if s.rescore == nil {
			return opts, errors.New("lexicon rescoring requested but no lexicon is loaded; start staccatod with -lexicon")
		}
		opts.Rescore = s.rescore
	}
	return opts, nil
}

// ingestRequest is the wire form of a batched write.
type ingestRequest struct {
	Docs      []*staccato.Doc `json:"docs"`
	TimeoutMS int             `json:"timeout_ms,omitempty"`
}

type ingestResponse struct {
	// Ingested is how many documents this batch committed.
	Ingested int `json:"ingested"`
	// Docs is the store's live document count after the commit.
	Docs int `json:"docs"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := decodeBody(w, r, &req, maxIngestBodyBytes); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Docs) == 0 {
		writeError(w, http.StatusBadRequest, "ingest requires at least one document in docs")
		return
	}
	for i, d := range req.Docs {
		if d == nil || d.ID == "" {
			writeError(w, http.StatusBadRequest, "docs[%d]: document must have a non-empty id", i)
			return
		}
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	if err := s.db.Ingest(ctx, req.Docs); err != nil {
		writeDBError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Ingested: len(req.Docs), Docs: s.db.Stats().Docs})
}

type searchResponse struct {
	// Query is the compiled query's canonical rendering.
	Query string `json:"query"`
	// Results are the ranked matches, each with its match probability.
	Results []query.Result `json:"results"`
	// Stats is the run's execution report: mode, plan, pruned/evaluated
	// counts, candidates fetched.
	Stats query.SearchStats `json:"stats"`
	// CacheHit reports whether the compiled query came from the cache.
	CacheHit bool `json:"cache_hit"`
	// ElapsedMS is the server-side execution time of the DB call.
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, hit, err := s.compiledQuery(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid query: %v", err)
		return
	}
	opts, err := s.searchOptions(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	if s.testHookSearch != nil {
		s.testHookSearch(ctx)
	}
	start := time.Now()
	results, stats, err := s.db.Search(ctx, q, opts)
	if err != nil {
		writeDBError(w, err)
		return
	}
	if results == nil {
		results = []query.Result{} // "results": [] beats "results": null on the wire
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:     q.String(),
		Results:   results,
		Stats:     stats,
		CacheHit:  hit,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// snippetsRequest is the wire form of a snippet extraction: the same
// query spec as search (so the two endpoints share compiled-query cache
// entries) plus the per-document snippet knobs.
type snippetsRequest struct {
	queryRequest
	// MaxReadings is how many matching readings to report per document
	// (default query.DefaultMaxReadings).
	MaxReadings int `json:"max_readings,omitempty"`
	// MaxEnumerate bounds how many readings the per-document best-first
	// enumeration may examine (default query.DefaultMaxEnumerate); the
	// server additionally caps it so one request cannot buy unbounded CPU.
	MaxEnumerate int `json:"max_enumerate,omitempty"`
	// ContextRunes, when positive, adds surrounding reading text to each
	// span: the match plus up to this many runes on each side.
	ContextRunes int `json:"context_runes,omitempty"`
}

// Server-side ceilings on the snippet knobs: snippet extraction is
// per-document CPU the admission semaphore cannot see inside, so the
// per-request dials are clamped to sane maxima rather than trusted.
const (
	maxSnippetReadings  = 64
	maxSnippetEnumerate = 1 << 16
	// maxSnippetContext mirrors the library-wide cap so the server's
	// reject threshold and the library's clamp threshold never drift.
	maxSnippetContext = query.MaxContextRunes
)

type snippetsResponse struct {
	// Query is the compiled query's canonical rendering.
	Query string `json:"query"`
	// Snippets are the matching documents in Search's ranking order, each
	// with its top readings containing the match: text, per-reading
	// probability, and byte/rune spans of every query term.
	Snippets []query.DocSnippets `json:"snippets"`
	// Stats is the underlying search's execution report.
	Stats     query.SearchStats `json:"stats"`
	CacheHit  bool              `json:"cache_hit"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

func (s *Server) handleSnippets(w http.ResponseWriter, r *http.Request) {
	var req snippetsRequest
	if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.MaxReadings < 0 || req.MaxReadings > maxSnippetReadings {
		writeError(w, http.StatusBadRequest, "max_readings must be in [0, %d], got %d", maxSnippetReadings, req.MaxReadings)
		return
	}
	if req.MaxEnumerate < 0 || req.MaxEnumerate > maxSnippetEnumerate {
		writeError(w, http.StatusBadRequest, "max_enumerate must be in [0, %d], got %d", maxSnippetEnumerate, req.MaxEnumerate)
		return
	}
	if req.ContextRunes < 0 || req.ContextRunes > maxSnippetContext {
		writeError(w, http.StatusBadRequest, "context_runes must be in [0, %d], got %d", maxSnippetContext, req.ContextRunes)
		return
	}
	q, hit, err := s.compiledQuery(&req.queryRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid query: %v", err)
		return
	}
	opts, err := s.searchOptions(&req.queryRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	if s.testHookSearch != nil {
		s.testHookSearch(ctx)
	}
	start := time.Now()
	snippets, stats, err := s.db.Snippets(ctx, q, opts,
		query.SnippetOptions{MaxReadings: req.MaxReadings, MaxEnumerate: req.MaxEnumerate, ContextRunes: req.ContextRunes})
	if err != nil {
		writeDBError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snippetsResponse{
		Query:     q.String(),
		Snippets:  snippets,
		Stats:     stats,
		CacheHit:  hit,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

type explainResponse struct {
	Query string `json:"query"`
	// Explain is the DB's plan rendering: the pruning plan, index shape,
	// candidate count, and the mode Search would take.
	Explain string `json:"explain"`
	// Stats comes from actually executing the query (explain-analyze
	// semantics), so Mode and CandidatesFetched report what really
	// happened, not a prediction.
	Stats query.SearchStats `json:"stats"`
	// Matches is how many documents matched with probability > 0.
	Matches   int     `json:"matches"`
	CacheHit  bool    `json:"cache_hit"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, hit, err := s.compiledQuery(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid query: %v", err)
		return
	}
	opts, err := s.searchOptions(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	results, stats, err := s.db.Search(ctx, q, opts)
	if err != nil {
		writeDBError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{
		Query:     q.String(),
		Explain:   s.db.Explain(q),
		Stats:     stats,
		Matches:   len(results),
		CacheHit:  hit,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleGetDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	doc, err := s.db.Get(ctx, id)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, doc)
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, "no document with id %q", id)
	default:
		writeDBError(w, err)
	}
}

type deleteResponse struct {
	Deleted string `json:"deleted"`
}

func (s *Server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "document id is required")
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	if err := s.db.Delete(ctx, id); err != nil {
		writeDBError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, deleteResponse{Deleted: id})
}

// serverStats is the service-level branch of /v1/stats, alongside the
// database's own canonical stats shape.
type serverStats struct {
	InFlight      int64                       `json:"in_flight"`
	MaxInFlight   int                         `json:"max_in_flight"`
	Rejected      int64                       `json:"rejected"`
	EngineWorkers int                         `json:"engine_workers"`
	Draining      bool                        `json:"draining"`
	QueryCache    cacheStats                  `json:"query_cache"`
	Requests      map[string]endpointSnapshot `json:"requests"`
}

type statsResponse struct {
	// DB is staccatodb.Stats in its canonical JSON shape — the same
	// bytes the CLI's verbose stats line prints.
	DB     staccatodb.Stats `json:"db"`
	Server serverStats      `json:"server"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statsResponse{
		DB: s.db.Stats(),
		Server: serverStats{
			InFlight:      s.met.inFlight.Value(),
			MaxInFlight:   s.opts.MaxInFlight,
			Rejected:      s.met.rejected.Value(),
			EngineWorkers: s.db.Workers(),
			Draining:      draining,
			QueryCache:    s.cache.stats(),
			Requests:      s.met.requestsSnapshot(),
		},
	})
}

type healthResponse struct {
	Status string `json:"status"`
	Docs   int    `json:"docs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Docs: s.db.Stats().Docs})
}

// handleVars serves the server's expvar map as /debug/vars-style JSON.
// The map is per-server rather than process-global, so the standard
// expvar handler (which only sees published globals) cannot serve it.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n%q: %s\n}\n", "staccatod", s.met.vars.String())
}
