package server

import (
	"expvar"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds. The spread covers
// everything from a cache-hit point lookup (<1ms) to a corpus scan under
// load; requests slower than the last bound land in the +Inf bucket.
var latencyBounds = []time.Duration{
	1 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	5 * time.Second,
}

// latencyHist is a fixed-bucket latency histogram. It implements
// expvar.Var so it can live inside the server's expvar map, and it
// snapshots to a JSON-friendly shape for /v1/stats. Buckets are
// cumulative ("le" = less-than-or-equal), Prometheus-style, so p50/p99
// estimates can be read off the counts.
type latencyHist struct {
	counts []atomic.Int64 // len(latencyBounds)+1; last is +Inf
	total  atomic.Int64
	sumUS  atomic.Int64 // microseconds, so one int64 carries the sum exactly
}

func newLatencyHist() *latencyHist {
	return &latencyHist{counts: make([]atomic.Int64, len(latencyBounds)+1)}
}

func (h *latencyHist) observe(d time.Duration) {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumUS.Add(d.Microseconds())
}

// histSnapshot is the histogram's JSON shape: cumulative bucket counts
// keyed by their upper bound in milliseconds.
type histSnapshot struct {
	Count   int64            `json:"count"`
	SumMS   float64          `json:"sum_ms"`
	Buckets map[string]int64 `json:"buckets"`
}

func (h *latencyHist) snapshot() histSnapshot {
	s := histSnapshot{
		Count:   h.total.Load(),
		SumMS:   float64(h.sumUS.Load()) / 1000,
		Buckets: make(map[string]int64, len(h.counts)),
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[bucketLabel(i)] = cum
	}
	return s
}

func bucketLabel(i int) string {
	if i >= len(latencyBounds) {
		return "le_inf"
	}
	ms := latencyBounds[i].Seconds() * 1000
	return fmt.Sprintf("le_%gms", ms)
}

// String renders the histogram as JSON, satisfying expvar.Var.
func (h *latencyHist) String() string {
	s := h.snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"count": %d, "sum_ms": %g`, s.Count, s.SumMS)
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		fmt.Fprintf(&sb, `, %q: %d`, bucketLabel(i), cum)
	}
	sb.WriteString("}")
	return sb.String()
}

// endpointMetrics instruments one endpoint: request count, error count
// (status >= 400, overload rejections included), and a latency histogram.
type endpointMetrics struct {
	count   expvar.Int
	errors  expvar.Int
	latency *latencyHist
}

// endpointSnapshot is one endpoint's branch of the /v1/stats response.
type endpointSnapshot struct {
	Count   int64        `json:"count"`
	Errors  int64        `json:"errors"`
	Latency histSnapshot `json:"latency"`
}

// metrics aggregates the server's counters. Everything is registered in
// one expvar.Map served at /debug/vars — but the map is built with Init
// and never published to the process-global expvar registry, so many
// servers (tests, an embedded harness) can coexist without the
// duplicate-name panic expvar.Publish reserves for globals.
type metrics struct {
	vars      expvar.Map
	inFlight  expvar.Int
	rejected  expvar.Int
	endpoints map[string]*endpointMetrics
}

func newMetrics(endpointNames []string, cache *queryCache, workers, maxInFlight int) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(endpointNames))}
	m.vars.Init()
	m.vars.Set("in_flight", &m.inFlight)
	m.vars.Set("rejected", &m.rejected)
	m.vars.Set("max_in_flight", constInt(maxInFlight))
	m.vars.Set("engine_workers", constInt(workers))
	m.vars.Set("cache_hits", expvar.Func(func() any { return cache.hits.Load() }))
	m.vars.Set("cache_misses", expvar.Func(func() any { return cache.misses.Load() }))
	m.vars.Set("cache_size", expvar.Func(func() any { return cache.len() }))
	req := new(expvar.Map).Init()
	for _, name := range endpointNames {
		em := &endpointMetrics{latency: newLatencyHist()}
		m.endpoints[name] = em
		per := new(expvar.Map).Init()
		per.Set("count", &em.count)
		per.Set("errors", &em.errors)
		per.Set("latency_ms", em.latency)
		req.Set(name, per)
	}
	m.vars.Set("requests", req)
	return m
}

// constInt adapts a fixed configuration value to expvar.Var.
func constInt(v int) expvar.Func {
	return func() any { return v }
}

// record books one finished request against its endpoint.
func (m *metrics) record(endpoint string, status int, elapsed time.Duration) {
	em, ok := m.endpoints[endpoint]
	if !ok {
		return
	}
	em.count.Add(1)
	if status >= 400 {
		em.errors.Add(1)
	}
	em.latency.observe(elapsed)
}

// requestsSnapshot renders every endpoint's counters for /v1/stats.
func (m *metrics) requestsSnapshot() map[string]endpointSnapshot {
	out := make(map[string]endpointSnapshot, len(m.endpoints))
	for name, em := range m.endpoints {
		out[name] = endpointSnapshot{
			Count:   em.count.Value(),
			Errors:  em.errors.Value(),
			Latency: em.latency.snapshot(),
		}
	}
	return out
}
