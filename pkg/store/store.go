// Package store persists Staccato documents. The DocStore interface is
// the contract every backend implements: the in-memory store here is the
// reference implementation, and pkg/store/diskstore is the durable
// disk-backed one — both slot in behind the same four operations without
// touching the query or approximation layers. Documents cross the
// interface through a versioned binary codec, so any backend (and any
// wire protocol) shares one serialized form.
package store

import (
	"context"
	"errors"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// ErrNotFound is returned by Get when no document has the requested ID.
var ErrNotFound = errors.New("store: document not found")

// ErrStopScan can be returned by a Scan callback to end the scan early
// without Scan reporting an error.
var ErrStopScan = errors.New("store: stop scan")

// DocStore stores Staccato documents keyed by their ID.
//
// Implementations must be safe for concurrent use, must not retain or
// alias documents passed to Put (callers may mutate them afterwards), and
// Scan must visit documents in ascending ID order so results are
// deterministic and pagination can be layered on top later.
type DocStore interface {
	// Put stores doc, replacing any existing document with the same ID.
	Put(ctx context.Context, doc *staccato.Doc) error
	// Get returns the document with the given ID, or ErrNotFound.
	Get(ctx context.Context, id string) (*staccato.Doc, error)
	// Delete removes the document with the given ID. Deleting an ID that
	// is not present is a no-op, not an error, so Delete is idempotent.
	Delete(ctx context.Context, id string) error
	// Scan calls fn for each stored document in ascending ID order. If fn
	// returns ErrStopScan the scan ends and Scan returns nil; any other
	// error ends the scan and is returned.
	Scan(ctx context.Context, fn func(doc *staccato.Doc) error) error
}

// IDLister is an optional DocStore capability: listing every stored
// document ID in ascending order without reading or decoding document
// bodies. Query planners use it to skip pruned documents entirely —
// a store that implements IDLister never pays decode cost for a document
// the planner proved cannot match. Both MemStore and diskstore.Store
// implement it.
type IDLister interface {
	// ListDocIDs returns the IDs of all stored documents in ascending
	// order. The listing is a snapshot: concurrent writes may or may not
	// be reflected.
	ListDocIDs(ctx context.Context) ([]string, error)
}

// BatchGetter is an optional DocStore capability: fetching many
// documents by ID in one call. It exists for the query engine's
// candidate-only execution path, which turns a planner candidate set
// into point lookups instead of a corpus scan — a batch lets the
// backend amortize its locking and, for disk-backed stores, reorder the
// reads by physical offset so a candidate set clustered in one segment
// becomes a near-sequential read. Both MemStore and diskstore.Store
// implement it.
type BatchGetter interface {
	// GetBatch returns the documents for ids, aligned with the input:
	// out[i] is the document for ids[i], or nil when no document has
	// that ID (a missing ID is not an error — candidate sets are
	// snapshots, and a concurrent delete must not fail the whole batch).
	// A non-nil error means the batch as a whole failed and out is
	// meaningless.
	GetBatch(ctx context.Context, ids []string) ([]*staccato.Doc, error)
}
