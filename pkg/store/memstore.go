package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// MemStore is an in-memory DocStore. Documents are held in their encoded
// binary form: Put/Get round-trip through the codec, which both exercises
// the serialization path that disk and SQL backends will share and gives
// the store value semantics — callers can never alias stored state.
type MemStore struct {
	mu   sync.RWMutex
	docs map[string][]byte
}

var (
	_ DocStore    = (*MemStore)(nil)
	_ IDLister    = (*MemStore)(nil)
	_ BatchGetter = (*MemStore)(nil)
)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{docs: make(map[string][]byte)}
}

// Put stores doc, replacing any existing document with the same ID.
func (m *MemStore) Put(ctx context.Context, doc *staccato.Doc) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if doc == nil || doc.ID == "" {
		return fmt.Errorf("store: Put: document must have a non-empty ID")
	}
	data, err := Encode(doc)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.docs[doc.ID] = data
	return nil
}

// Get returns the document with the given ID, or ErrNotFound.
func (m *MemStore) Get(ctx context.Context, id string) (*staccato.Doc, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	data, ok := m.docs[id]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return Decode(data)
}

// Delete removes the document with the given ID; deleting a missing ID
// is a no-op.
func (m *MemStore) Delete(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.docs, id)
	return nil
}

// GetBatch returns the documents for ids, aligned with the input (nil
// for missing IDs), implementing the optional BatchGetter capability.
// The lock is taken once for the whole batch; decoding happens outside
// it.
func (m *MemStore) GetBatch(ctx context.Context, ids []string) ([]*staccato.Doc, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	encoded := make([][]byte, len(ids))
	m.mu.RLock()
	for i, id := range ids {
		encoded[i] = m.docs[id]
	}
	m.mu.RUnlock()
	out := make([]*staccato.Doc, len(ids))
	for i, data := range encoded {
		if data == nil {
			continue
		}
		doc, err := Decode(data)
		if err != nil {
			return nil, err
		}
		out[i] = doc
	}
	return out, nil
}

// ListDocIDs returns every stored document ID in ascending order without
// decoding documents, implementing the optional IDLister capability.
func (m *MemStore) ListDocIDs(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	ids := make([]string, 0, len(m.docs))
	for id := range m.docs {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sort.Strings(ids)
	return ids, nil
}

// Len returns the number of stored documents.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.docs)
}

// Scan visits all documents in ascending ID order. The snapshot of IDs is
// taken up front, so fn may call back into the store without deadlocking.
func (m *MemStore) Scan(ctx context.Context, fn func(doc *staccato.Doc) error) error {
	m.mu.RLock()
	ids := make([]string, 0, len(m.docs))
	for id := range m.docs {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sort.Strings(ids)

	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		doc, err := m.Get(ctx, id)
		if errors.Is(err, ErrNotFound) {
			// Deleted between snapshot and visit: skip.
			continue
		}
		if err != nil {
			return err
		}
		if err := fn(doc); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
	}
	return nil
}
