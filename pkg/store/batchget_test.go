package store_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// TestMemStoreGetBatch checks the BatchGetter contract on the reference
// implementation: output aligned with input, nil slots for missing IDs,
// duplicates allowed, and value semantics (no aliasing of stored state).
func TestMemStoreGetBatch(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	docs := make([]*staccato.Doc, 5)
	for i := range docs {
		docs[i] = sampleDoc(t, fmt.Sprintf("doc-%d", i), int64(i+1))
		if err := st.Put(ctx, docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ids := []string{"doc-3", "missing", "doc-0", "doc-3"}
	got, err := st.GetBatch(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("GetBatch returned %d docs for %d ids", len(got), len(ids))
	}
	if got[1] != nil {
		t.Errorf("missing ID filled: %+v", got[1])
	}
	if !reflect.DeepEqual(got[0], docs[3]) || !reflect.DeepEqual(got[2], docs[0]) || !reflect.DeepEqual(got[3], docs[3]) {
		t.Errorf("GetBatch misaligned: %+v", got)
	}
	if got[0] == got[3] {
		t.Error("duplicate IDs alias the same decoded document")
	}

	// An empty batch is a no-op, not an error.
	if out, err := st.GetBatch(ctx, nil); err != nil || len(out) != 0 {
		t.Errorf("GetBatch(nil) = %v, %v", out, err)
	}

	// Context errors surface.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := st.GetBatch(cancelled, ids); err == nil {
		t.Error("GetBatch on a cancelled context succeeded")
	}
}

// TestMemStoreGetBatchMatchesGet: batch and point reads must return
// byte-identical documents.
func TestMemStoreGetBatchMatchesGet(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	var ids []string
	for i := 0; i < 8; i++ {
		d := sampleDoc(t, fmt.Sprintf("d-%02d", i), int64(40+i))
		if err := st.Put(ctx, d); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, d.ID)
	}
	batch, err := st.GetBatch(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		point, err := st.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], point) {
			t.Errorf("%s: batch %+v != point %+v", id, batch[i], point)
		}
	}
}
