package store_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

func sampleDoc(t *testing.T, id string, seed int64) *staccato.Doc {
	t.Helper()
	_, f := testgen.MustGenerate(testgen.Config{Length: 20, Seed: seed})
	d, err := staccato.Build(f, id, 4, 3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestCodecRoundTrip(t *testing.T) {
	want := sampleDoc(t, "doc-7", 7)
	data, err := store.Encode(want)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := store.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	good, err := store.Encode(sampleDoc(t, "d", 1))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte{}, good...), 0xFF),
	}
	for name, data := range cases {
		if _, err := store.Decode(data); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
}

func TestMemStorePutGet(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	want := sampleDoc(t, "doc-1", 1)
	if err := st.Put(ctx, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := st.Get(ctx, "doc-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("Get returned a different document than Put stored")
	}
	// The store must not alias the caller's document.
	want.Chunks[0].Alts[0].Text = "mutated"
	got2, err := st.Get(ctx, "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Chunks[0].Alts[0].Text == "mutated" {
		t.Error("store aliased the caller's document")
	}
}

func TestMemStoreDelete(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	if err := st.Put(ctx, sampleDoc(t, "doc-1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ctx, "doc-1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := st.Get(ctx, "doc-1"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := st.Delete(ctx, "doc-1"); err != nil {
		t.Errorf("Delete of missing ID = %v, want nil (idempotent)", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := st.Delete(cancelled, "x"); err == nil {
		t.Error("Delete ignored cancelled context")
	}
}

func TestMemStoreGetMissing(t *testing.T) {
	st := store.NewMemStore()
	_, err := st.Get(context.Background(), "nope")
	if !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestMemStorePutValidation(t *testing.T) {
	st := store.NewMemStore()
	if err := st.Put(context.Background(), &staccato.Doc{}); err == nil {
		t.Error("Put accepted a document with no ID")
	}
	if err := st.Put(context.Background(), nil); err == nil {
		t.Error("Put accepted nil")
	}
}

func TestMemStoreScanOrderAndStop(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	for i, id := range []string{"c", "a", "b"} {
		if err := st.Put(ctx, sampleDoc(t, id, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	var seen []string
	if err := st.Scan(ctx, func(d *staccato.Doc) error {
		seen = append(seen, d.ID)
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !reflect.DeepEqual(seen, []string{"a", "b", "c"}) {
		t.Errorf("Scan order = %v, want ascending IDs", seen)
	}

	seen = nil
	if err := st.Scan(ctx, func(d *staccato.Doc) error {
		seen = append(seen, d.ID)
		return store.ErrStopScan
	}); err != nil {
		t.Fatalf("Scan with stop: %v", err)
	}
	if len(seen) != 1 {
		t.Errorf("ErrStopScan did not end the scan: visited %v", seen)
	}

	wantErr := errors.New("boom")
	if err := st.Scan(ctx, func(d *staccato.Doc) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("Scan error = %v, want %v", err, wantErr)
	}
}

// visitCounter wraps a DocStore and counts how many documents a Scan
// actually visits, so tests can prove early termination reached the
// backend rather than being filtered by the caller.
type visitCounter struct {
	store.DocStore
	visits int
}

func (v *visitCounter) Scan(ctx context.Context, fn func(*staccato.Doc) error) error {
	return v.DocStore.Scan(ctx, func(d *staccato.Doc) error {
		v.visits++
		return fn(d)
	})
}

func TestCountAndListIDs(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()

	n, err := store.Count(ctx, st)
	if err != nil || n != 0 {
		t.Fatalf("Count(empty) = %d, %v", n, err)
	}
	ids, err := store.ListIDs(ctx, st, 0)
	if err != nil || len(ids) != 0 {
		t.Fatalf("ListIDs(empty) = %v, %v", ids, err)
	}

	for i, id := range []string{"c", "a", "b", "d"} {
		if err := st.Put(ctx, sampleDoc(t, id, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if n, err = store.Count(ctx, st); err != nil || n != 4 {
		t.Errorf("Count = %d, %v, want 4", n, err)
	}
	if ids, err = store.ListIDs(ctx, st, 0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"a", "b", "c", "d"}) {
		t.Errorf("ListIDs = %v, want ascending IDs", ids)
	}
}

// TestListIDsStopsScanEarly is the ErrStopScan early-termination test:
// a limited listing must end the MemStore scan at the limit instead of
// visiting (and decoding) every document.
func TestListIDsStopsScanEarly(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	for i, id := range []string{"a", "b", "c", "d", "e"} {
		if err := st.Put(ctx, sampleDoc(t, id, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	counted := &visitCounter{DocStore: st}
	ids, err := store.ListIDs(ctx, counted, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"a", "b"}) {
		t.Errorf("ListIDs(limit=2) = %v, want [a b]", ids)
	}
	if counted.visits != 2 {
		t.Errorf("scan visited %d documents, want 2 (ErrStopScan must terminate the scan)", counted.visits)
	}
}

func TestMemStoreContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := store.NewMemStore()
	if err := st.Put(ctx, sampleDoc(t, "d", 1)); err == nil {
		t.Error("Put ignored cancelled context")
	}
	if _, err := st.Get(ctx, "d"); err == nil {
		t.Error("Get ignored cancelled context")
	}
}

// TestMemStoreListDocIDs covers the IDLister capability on the
// reference backend: ascending order, no decode, deletes reflected.
func TestMemStoreListDocIDs(t *testing.T) {
	ctx := context.Background()
	m := store.NewMemStore()
	for _, id := range []string{"b", "a", "c"} {
		if err := m.Put(ctx, sampleDoc(t, id, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	var lister store.IDLister = m
	ids, err := lister.ListDocIDs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"b", "c"}) {
		t.Errorf("ListDocIDs = %v, want [b c]", ids)
	}
}
