package store

import (
	"context"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Count returns the number of documents in the store. It is built on Scan
// so it works against any DocStore; backends that can count cheaply (such
// as MemStore.Len) can be used directly when the concrete type is known.
func Count(ctx context.Context, st DocStore) (int, error) {
	n := 0
	err := st.Scan(ctx, func(*staccato.Doc) error {
		n++
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// ListIDs returns the IDs of up to limit documents in ascending order;
// limit <= 0 returns every ID. Early termination goes through ErrStopScan,
// so a backend stops scanning (and decoding) as soon as the limit is
// reached.
func ListIDs(ctx context.Context, st DocStore, limit int) ([]string, error) {
	var ids []string
	err := st.Scan(ctx, func(d *staccato.Doc) error {
		ids = append(ids, d.ID)
		if limit > 0 && len(ids) >= limit {
			return ErrStopScan
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ids, nil
}
