package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Binary codec for Staccato documents. Layout (all integers unsigned
// varints, all floats IEEE-754 little-endian bits):
//
//	magic "SDOC" | version | id | params.chunks | params.k
//	numChunks | for each chunk:
//	    retained float64 | numAlts | for each alt: text | prob float64
//
// Strings are length-prefixed byte slices. The version byte lets a later
// PR evolve the layout (e.g. delta-coded alternatives or compression)
// while still reading existing stores.

var codecMagic = [4]byte{'S', 'D', 'O', 'C'}

const codecVersion = 1

// Encode serializes doc to its binary form.
func Encode(doc *staccato.Doc) ([]byte, error) {
	if doc == nil {
		return nil, fmt.Errorf("store: Encode: nil doc")
	}
	buf := make([]byte, 0, 64+32*len(doc.Chunks))
	buf = append(buf, codecMagic[:]...)
	buf = append(buf, codecVersion)
	buf = appendString(buf, doc.ID)
	buf = binary.AppendUvarint(buf, uint64(doc.Params.Chunks))
	buf = binary.AppendUvarint(buf, uint64(doc.Params.K))
	buf = binary.AppendUvarint(buf, uint64(len(doc.Chunks)))
	for _, ch := range doc.Chunks {
		buf = appendFloat(buf, ch.Retained)
		buf = binary.AppendUvarint(buf, uint64(len(ch.Alts)))
		for _, alt := range ch.Alts {
			buf = appendString(buf, alt.Text)
			buf = appendFloat(buf, alt.Prob)
		}
	}
	return buf, nil
}

// Decode deserializes a document previously produced by Encode.
func Decode(data []byte) (*staccato.Doc, error) {
	d := decoder{buf: data}
	var magic [4]byte
	copy(magic[:], d.bytes(4))
	if d.err == nil && magic != codecMagic {
		return nil, fmt.Errorf("store: Decode: bad magic %q", magic)
	}
	if v := d.byte(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("store: Decode: unsupported version %d", v)
	}
	doc := &staccato.Doc{}
	doc.ID = d.string()
	doc.Params.Chunks = int(d.uvarint())
	doc.Params.K = int(d.uvarint())
	numChunks := d.uvarint()
	if d.err == nil && numChunks > uint64(len(data)) {
		return nil, fmt.Errorf("store: Decode: implausible chunk count %d", numChunks)
	}
	for i := uint64(0); i < numChunks && d.err == nil; i++ {
		var ch staccato.PathSet
		ch.Retained = d.float()
		numAlts := d.uvarint()
		if d.err == nil && numAlts > uint64(len(data)) {
			return nil, fmt.Errorf("store: Decode: implausible alt count %d", numAlts)
		}
		for j := uint64(0); j < numAlts && d.err == nil; j++ {
			ch.Alts = append(ch.Alts, staccato.Alt{Text: d.string(), Prob: d.float()})
		}
		doc.Chunks = append(doc.Chunks, ch)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("store: Decode: %d trailing bytes", len(d.buf))
	}
	return doc, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// decoder consumes a byte slice with a latched error, so the happy path
// reads linearly without per-field error checks.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("store: Decode: truncated input")
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.fail()
		return make([]byte, n)
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) byte() byte { return d.bytes(1)[0] }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)) {
		d.fail()
		return ""
	}
	return string(d.bytes(int(n)))
}

func (d *decoder) float() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(d.bytes(8)))
}
