package diskstore_test

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
	"github.com/paper-repo/staccato-go/pkg/store/diskstore"
)

func sampleDoc(t *testing.T, id string, seed int64) *staccato.Doc {
	t.Helper()
	_, f := testgen.MustGenerate(testgen.Config{Length: 20, Seed: seed})
	d, err := staccato.Build(f, id, 4, 3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func openT(t *testing.T, dir string, opts diskstore.Options) *diskstore.Store {
	t.Helper()
	st, err := diskstore.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func scanIDs(t *testing.T, st store.DocStore) []string {
	t.Helper()
	var ids []string
	if err := st.Scan(context.Background(), func(d *staccato.Doc) error {
		ids = append(ids, d.ID)
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return ids
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segment files in %s (err=%v)", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

func TestPutGetDelete(t *testing.T) {
	ctx := context.Background()
	st := openT(t, t.TempDir(), diskstore.Options{})

	want := sampleDoc(t, "doc-1", 1)
	if err := st.Put(ctx, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := st.Get(ctx, "doc-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("Get returned a different document than Put stored")
	}
	// The store must not alias the caller's document.
	want.Chunks[0].Alts[0].Text = "mutated"
	got2, err := st.Get(ctx, "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Chunks[0].Alts[0].Text == "mutated" {
		t.Error("store aliased the caller's document")
	}

	if _, err := st.Get(ctx, "nope"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
	if err := st.Delete(ctx, "doc-1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := st.Get(ctx, "doc-1"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := st.Delete(ctx, "doc-1"); err != nil {
		t.Errorf("Delete of missing ID = %v, want nil (idempotent)", err)
	}
	if err := st.Put(ctx, nil); err == nil {
		t.Error("Put accepted nil")
	}
	if err := st.Put(ctx, &staccato.Doc{}); err == nil {
		t.Error("Put accepted a document with no ID")
	}
}

func TestReopenPersists(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	st := openT(t, dir, diskstore.Options{})
	var want []string
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("doc-%02d", i)
		if err := st.Put(ctx, sampleDoc(t, id, int64(i+1))); err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	// Overwrite one and delete one; the replayed index must honor both.
	updated := sampleDoc(t, "doc-03", 99)
	if err := st.Put(ctx, updated); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ctx, "doc-05"); err != nil {
		t.Fatal(err)
	}
	want = append(want[:5], want[6:]...)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := openT(t, dir, diskstore.Options{})
	if got := scanIDs(t, st2); !reflect.DeepEqual(got, want) {
		t.Errorf("reopened Scan = %v, want %v", got, want)
	}
	if n, err := store.Count(ctx, st2); err != nil || n != len(want) {
		t.Errorf("Count = %d, %v, want %d", n, err, len(want))
	}
	got, err := st2.Get(ctx, "doc-03")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, updated) {
		t.Error("reopened store returned the superseded version of doc-03")
	}
	if _, err := st2.Get(ctx, "doc-05"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("deleted doc resurrected on reopen: %v", err)
	}
}

func TestScanOrderAndStop(t *testing.T) {
	ctx := context.Background()
	st := openT(t, t.TempDir(), diskstore.Options{})
	for i, id := range []string{"c", "a", "b"} {
		if err := st.Put(ctx, sampleDoc(t, id, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if got := scanIDs(t, st); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Scan order = %v, want ascending IDs", got)
	}
	var seen []string
	if err := st.Scan(ctx, func(d *staccato.Doc) error {
		seen = append(seen, d.ID)
		return store.ErrStopScan
	}); err != nil {
		t.Fatalf("Scan with stop: %v", err)
	}
	if len(seen) != 1 {
		t.Errorf("ErrStopScan did not end the scan: visited %v", seen)
	}
	wantErr := errors.New("boom")
	if err := st.Scan(ctx, func(*staccato.Doc) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("Scan error = %v, want %v", err, wantErr)
	}
}

// TestTornTailRecovery is the crash-recovery contract: a reopen after a
// torn final write drops only the torn record, keeps every earlier
// record, and leaves Scan order and Count consistent.
func TestTornTailRecovery(t *testing.T) {
	ctx := context.Background()
	corrupt := map[string]func(t *testing.T, path string){
		"truncated mid-record": func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		},
		"flipped payload byte": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"garbage appended": func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		},
	}
	for name, breakTail := range corrupt {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st := openT(t, dir, diskstore.Options{})
			const n = 10
			for i := 0; i < n; i++ {
				if err := st.Put(ctx, sampleDoc(t, fmt.Sprintf("doc-%02d", i), int64(i+1))); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			seg := lastSegment(t, dir)
			breakTail(t, seg)

			st2 := openT(t, dir, diskstore.Options{})
			ids := scanIDs(t, st2)
			// "garbage appended" damages no record; the other two tear the
			// last one (doc-09).
			wantDocs := n
			if name != "garbage appended" {
				wantDocs = n - 1
			}
			if len(ids) != wantDocs {
				t.Fatalf("after %s: %d docs survive (%v), want %d", name, len(ids), ids, wantDocs)
			}
			for i := 0; i < wantDocs; i++ {
				want := fmt.Sprintf("doc-%02d", i)
				if ids[i] != want {
					t.Errorf("ids[%d] = %q, want %q", i, ids[i], want)
				}
				if _, err := st2.Get(ctx, want); err != nil {
					t.Errorf("Get(%s) after recovery: %v", want, err)
				}
			}
			if n, err := store.Count(ctx, st2); err != nil || n != wantDocs {
				t.Errorf("Count = %d, %v, want %d", n, err, wantDocs)
			}

			// The torn tail must have been truncated: appending new writes
			// and reopening once more must not resurface the corruption.
			if err := st2.Put(ctx, sampleDoc(t, "doc-zz", 77)); err != nil {
				t.Fatalf("Put after recovery: %v", err)
			}
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}
			st3 := openT(t, dir, diskstore.Options{})
			if n, err := store.Count(ctx, st3); err != nil || n != wantDocs+1 {
				t.Errorf("Count after post-recovery write = %d, %v, want %d", n, err, wantDocs+1)
			}
		})
	}
}

// TestMidFileCorruptionRefusesOpen distinguishes torn tails from media
// damage: a corrupt record with valid data after it cannot come from a
// crashed append, so Open must fail loudly instead of silently
// truncating away every later record.
func TestMidFileCorruptionRefusesOpen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st := openT(t, dir, diskstore.Options{})
	for i := 0; i < 10; i++ {
		if err := st.Put(ctx, sampleDoc(t, fmt.Sprintf("doc-%02d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's document payload: its
	// checksum breaks while every later record remains intact.
	data[20] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := diskstore.Open(dir, diskstore.Options{}); err == nil {
		t.Fatal("Open silently accepted mid-file corruption")
	} else if !strings.Contains(err.Error(), "not a torn tail") {
		t.Errorf("Open error = %v, want a refusing-to-drop-data message", err)
	}
	// The file must be untouched — no truncation happened.
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Errorf("refused Open still truncated the segment: %d -> %d bytes", len(data), len(after))
	}
}

// TestOpenExcludesSecondProcessHandle: the flock must make a second
// concurrent Open of the same directory fail fast (same-process handles
// share the flock on some platforms, so exercise it via a subprocess-free
// second Open — on Linux, flock(2) locks are per open-file-description,
// so a second OpenFile + flock conflicts even within one process).
func TestOpenExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, diskstore.Options{})
	if _, err := diskstore.Open(dir, diskstore.Options{}); err == nil {
		t.Fatal("second Open of a live store succeeded; expected the lock to refuse it")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lock: reopening now works.
	st2 := openT(t, dir, diskstore.Options{})
	_ = st2
}

func TestBatchCommit(t *testing.T) {
	ctx := context.Background()
	st := openT(t, t.TempDir(), diskstore.Options{})

	b := st.Batch()
	for i := 0; i < 20; i++ {
		if err := b.Put(sampleDoc(t, fmt.Sprintf("doc-%02d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Later ops in one batch supersede earlier ones.
	override := sampleDoc(t, "doc-04", 123)
	if err := b.Put(override); err != nil {
		t.Fatal(err)
	}
	b.Delete("doc-07")
	if b.Len() != 22 {
		t.Fatalf("Batch.Len = %d, want 22", b.Len())
	}
	if err := b.Commit(ctx); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("Batch.Len after Commit = %d, want 0 (reusable)", b.Len())
	}
	if st.Len() != 19 {
		t.Errorf("store Len = %d, want 19", st.Len())
	}
	got, err := st.Get(ctx, "doc-04")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, override) {
		t.Error("batch did not apply in order: doc-04 is the superseded version")
	}
	if _, err := st.Get(ctx, "doc-07"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("batched Delete did not apply: %v", err)
	}

	// A batch with a bad document latches the error.
	bad := st.Batch()
	if err := bad.Put(&staccato.Doc{}); err == nil {
		t.Fatal("Batch.Put accepted a document with no ID")
	}
	if err := bad.Commit(ctx); err == nil {
		t.Error("Commit ignored a latched Put error")
	}

	// Reuse after commit works.
	if err := b.Put(sampleDoc(t, "doc-new", 50)); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(ctx, "doc-new"); err != nil {
		t.Errorf("Get after batch reuse: %v", err)
	}
}

func TestSegmentRollAndReopen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// Tiny segments force many rolls, both on the Put path and inside one
	// large batch.
	st := openT(t, dir, diskstore.Options{MaxSegmentBytes: 512})
	const n = 30
	b := st.Batch()
	for i := 0; i < n; i++ {
		if err := b.Put(sampleDoc(t, fmt.Sprintf("doc-%02d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Segments < 3 {
		t.Fatalf("Segments = %d, want several (roll not exercised)", stats.Segments)
	}
	if stats.Docs != n {
		t.Fatalf("Docs = %d, want %d", stats.Docs, n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openT(t, dir, diskstore.Options{MaxSegmentBytes: 512})
	if got := len(scanIDs(t, st2)); got != n {
		t.Errorf("reopened store has %d docs, want %d", got, n)
	}
}

func TestCompact(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st := openT(t, dir, diskstore.Options{MaxSegmentBytes: 1024})

	const n = 20
	for i := 0; i < n; i++ {
		if err := st.Put(ctx, sampleDoc(t, fmt.Sprintf("doc-%02d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Create garbage: overwrite everything once, delete half.
	for i := 0; i < n; i++ {
		if err := st.Put(ctx, sampleDoc(t, fmt.Sprintf("doc-%02d", i), int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := st.Delete(ctx, fmt.Sprintf("doc-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	wantIDs := scanIDs(t, st)
	before := st.Stats()

	if err := st.Compact(ctx); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := st.Stats()
	if after.DiskBytes >= before.DiskBytes {
		t.Errorf("DiskBytes %d -> %d: compaction reclaimed nothing", before.DiskBytes, after.DiskBytes)
	}
	if after.Docs != len(wantIDs) {
		t.Errorf("Docs after Compact = %d, want %d", after.Docs, len(wantIDs))
	}
	if got := scanIDs(t, st); !reflect.DeepEqual(got, wantIDs) {
		t.Errorf("Scan after Compact = %v, want %v", got, wantIDs)
	}
	// Live store still writable after the swap.
	if err := st.Put(ctx, sampleDoc(t, "doc-post", 55)); err != nil {
		t.Fatalf("Put after Compact: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// And the compacted directory replays correctly.
	st2 := openT(t, dir, diskstore.Options{})
	got := scanIDs(t, st2)
	if len(got) != len(wantIDs)+1 {
		t.Errorf("reopened compacted store has %d docs, want %d", len(got), len(wantIDs)+1)
	}
}

// TestCompactEmptyStore ensures compacting away every document leaves a
// usable, reopenable store.
func TestCompactEmptyStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st := openT(t, dir, diskstore.Options{})
	if err := st.Put(ctx, sampleDoc(t, "only", 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ctx, "only"); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(ctx); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Len() != 0 {
		t.Errorf("Len = %d, want 0", st.Len())
	}
	if err := st.Put(ctx, sampleDoc(t, "again", 2)); err != nil {
		t.Fatalf("Put after empty Compact: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, diskstore.Options{})
	if st2.Len() != 1 {
		t.Errorf("reopened Len = %d, want 1", st2.Len())
	}
}

// TestInterruptedCompactionSweep simulates a crash between writing new
// compaction segments and the manifest flip: the unreferenced file must
// be swept on Open and the old state must win.
func TestInterruptedCompactionSweep(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st := openT(t, dir, diskstore.Options{})
	for i := 0; i < 5; i++ {
		if err := st.Put(ctx, sampleDoc(t, fmt.Sprintf("doc-%d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A would-be compaction output the manifest never learned about.
	stray := filepath.Join(dir, "seg-00000099.log")
	if err := os.WriteFile(stray, []byte("not yet flipped"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openT(t, dir, diskstore.Options{})
	if n, err := store.Count(ctx, st2); err != nil || n != 5 {
		t.Errorf("Count = %d, %v, want the pre-compaction 5", n, err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("stale segment %s not swept on Open (stat err=%v)", stray, err)
	}
}

func TestOpenRefusesManifestlessSegments(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := diskstore.Open(dir, diskstore.Options{}); err == nil {
		t.Error("Open accepted a directory with segments but no manifest")
	}
}

func TestClosedStore(t *testing.T) {
	ctx := context.Background()
	st := openT(t, t.TempDir(), diskstore.Options{})
	doc := sampleDoc(t, "d", 1)
	if err := st.Put(ctx, doc); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if err := st.Put(ctx, doc); !errors.Is(err, diskstore.ErrClosed) {
		t.Errorf("Put on closed = %v, want ErrClosed", err)
	}
	if _, err := st.Get(ctx, "d"); !errors.Is(err, diskstore.ErrClosed) {
		t.Errorf("Get on closed = %v, want ErrClosed", err)
	}
	if err := st.Delete(ctx, "d"); !errors.Is(err, diskstore.ErrClosed) {
		t.Errorf("Delete on closed = %v, want ErrClosed", err)
	}
	if err := st.Scan(ctx, func(*staccato.Doc) error { return nil }); !errors.Is(err, diskstore.ErrClosed) {
		t.Errorf("Scan on closed = %v, want ErrClosed", err)
	}
	if err := st.Compact(ctx); !errors.Is(err, diskstore.ErrClosed) {
		t.Errorf("Compact on closed = %v, want ErrClosed", err)
	}
}

func TestContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := openT(t, t.TempDir(), diskstore.Options{})
	if err := st.Put(ctx, sampleDoc(t, "d", 1)); err == nil {
		t.Error("Put ignored cancelled context")
	}
	if _, err := st.Get(ctx, "d"); err == nil {
		t.Error("Get ignored cancelled context")
	}
	if err := st.Delete(ctx, "d"); err == nil {
		t.Error("Delete ignored cancelled context")
	}
}

// TestEngineParityWithMemStore is the acceptance gate: the same corpus in
// a DiskStore and a MemStore must produce byte-identical ranked results
// from the query engine, including after a simulated torn-write reopen.
func TestEngineParityWithMemStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	cases, err := testgen.Docs(60, testgen.Config{Length: 40, Seed: 11}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	mem := store.NewMemStore()
	disk := openT(t, dir, diskstore.Options{MaxSegmentBytes: 8 << 10})
	b := disk.Batch()
	for _, c := range cases {
		if err := mem.Put(ctx, c.Doc); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(c.Doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	sub, err := query.Substring("e")
	if err != nil {
		t.Fatal(err)
	}
	neg, err := query.Substring("zz")
	if err != nil {
		t.Fatal(err)
	}
	q := query.And(sub, query.Not(neg))
	opts := query.SearchOptions{TopN: 25}

	wantRes, err := query.NewEngine(mem, query.EngineOptions{Workers: 4}).Search(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantRes) == 0 {
		t.Fatal("query matched nothing; broaden the test term")
	}
	gotRes, err := query.NewEngine(disk, query.EngineOptions{Workers: 4}).Search(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("disk results differ from mem results:\n disk %+v\n mem  %+v", gotRes, wantRes)
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail (a partial frame, no complete record lost) and reopen:
	// still byte-identical.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	disk2 := openT(t, dir, diskstore.Options{})
	gotRes2, err := query.NewEngine(disk2, query.EngineOptions{Workers: 4}).Search(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes2, wantRes) {
		t.Fatalf("post-torn-reopen results differ from mem results:\n disk %+v\n mem  %+v", gotRes2, wantRes)
	}
}

// TestCommitHookSeesDurableCommits checks the OnCommit seam: the hook
// fires once per Put, Delete, and Batch.Commit, in durability order,
// with decoded documents for puts, nil for deletes, and a CommitState
// that matches the store's own.
func TestCommitHookSeesDurableCommits(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	type call struct {
		ids    []string
		puts   int
		states diskstore.CommitState
	}
	var calls []call
	st := openT(t, dir, diskstore.Options{
		OnCommit: func(ops []diskstore.CommitOp, _ any, cs diskstore.CommitState) error {
			c := call{states: cs}
			for _, o := range ops {
				c.ids = append(c.ids, o.ID)
				if o.Doc != nil {
					if o.Doc.ID != o.ID {
						t.Errorf("hook doc ID %q != op ID %q", o.Doc.ID, o.ID)
					}
					c.puts++
				}
			}
			calls = append(calls, c)
			return nil
		},
	})

	if err := st.Put(ctx, sampleDoc(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	b := st.Batch()
	if err := b.Put(sampleDoc(t, "b", 2)); err != nil {
		t.Fatal(err)
	}
	b.Delete("a")
	if err := b.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ctx, "b"); err != nil {
		t.Fatal(err)
	}

	if len(calls) != 3 {
		t.Fatalf("hook fired %d times, want 3 (per commit)", len(calls))
	}
	if !reflect.DeepEqual(calls[0].ids, []string{"a"}) || calls[0].puts != 1 {
		t.Errorf("call 0 = %+v", calls[0])
	}
	if !reflect.DeepEqual(calls[1].ids, []string{"b", "a"}) || calls[1].puts != 1 {
		t.Errorf("call 1 = %+v", calls[1])
	}
	if !reflect.DeepEqual(calls[2].ids, []string{"b"}) || calls[2].puts != 0 {
		t.Errorf("call 2 = %+v", calls[2])
	}
	if got := st.CommitState(); got != calls[2].states {
		t.Errorf("CommitState() = %+v, hook saw %+v", got, calls[2].states)
	}
	if calls[2].states.Ops != 4 || calls[0].states.Bytes >= calls[2].states.Bytes {
		t.Errorf("states not monotone: %+v", calls)
	}
}

// TestCommitHookErrorReportedButDurable: a hook error reaches the
// writer, but the commit is already on disk and replays on reopen.
func TestCommitHookErrorReportedButDurable(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	boom := errors.New("boom")
	st := openT(t, dir, diskstore.Options{
		OnCommit: func([]diskstore.CommitOp, any, diskstore.CommitState) error { return boom },
	})
	if err := st.Put(ctx, sampleDoc(t, "a", 1)); !errors.Is(err, boom) {
		t.Fatalf("Put err = %v, want the hook error", err)
	}
	st.Close()
	st2 := openT(t, dir, diskstore.Options{})
	if _, err := st2.Get(ctx, "a"); err != nil {
		t.Fatalf("doc lost despite durable commit: %v", err)
	}
}

// TestCommitStateRegressionPaths: the staleness fingerprint must change
// whenever replay would see different history — after a torn-tail
// truncation it regresses, after compaction it resets to the live count.
func TestCommitStateRegressionPaths(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openT(t, dir, diskstore.Options{})
	for i := 0; i < 5; i++ {
		if err := st.Put(ctx, sampleDoc(t, fmt.Sprintf("d%d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Delete(ctx, "d0"); err != nil {
		t.Fatal(err)
	}
	full := st.CommitState()
	if full.Ops != 6 {
		t.Fatalf("Ops = %d, want 6", full.Ops)
	}
	st.Close()

	// Tear into the last record: replay truncates it, and the state must
	// regress below the pre-crash fingerprint.
	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, diskstore.Options{})
	torn := st2.CommitState()
	if torn.Ops != full.Ops-1 || torn.Bytes >= full.Bytes {
		t.Errorf("post-torn state %+v, want regression from %+v", torn, full)
	}
	if err := st2.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	compacted := st2.CommitState()
	if compacted.Ops != uint64(st2.Len()) {
		t.Errorf("post-compact Ops = %d, want live doc count %d", compacted.Ops, st2.Len())
	}
	// Ops and Bytes can coincide with a pre-compact stamp by size
	// accident; the segment number cannot, because compaction always
	// allocates fresh, higher numbers. This is what keeps the staleness
	// fingerprint collision-free across compactions.
	if compacted.Seg <= torn.Seg {
		t.Errorf("post-compact Seg = %d, want > pre-compact %d", compacted.Seg, torn.Seg)
	}
	st2.Close()
	st3 := openT(t, dir, diskstore.Options{})
	if got := st3.CommitState(); got != compacted {
		t.Errorf("reopened state %+v != in-process post-compact %+v", got, compacted)
	}
}

// TestListDocIDs covers the IDLister capability both backends share.
func TestListDocIDs(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openT(t, dir, diskstore.Options{})
	for _, id := range []string{"c", "a", "b"} {
		if err := st.Put(ctx, sampleDoc(t, id, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Delete(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	ids, err := st.ListDocIDs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"a", "c"}) {
		t.Errorf("ListDocIDs = %v, want [a c]", ids)
	}
	if !reflect.DeepEqual(ids, scanIDs(t, st)) {
		t.Errorf("ListDocIDs disagrees with Scan order")
	}
}

// TestPrepareCommitFlowsToOnCommit checks the two-phase hook: the
// prepare phase sees the same decoded ops as the commit phase and its
// result arrives in OnCommit verbatim, once per commit.
func TestPrepareCommitFlowsToOnCommit(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	prepCalls, commitCalls := 0, 0
	st := openT(t, dir, diskstore.Options{
		PrepareCommit: func(ops []diskstore.CommitOp) any {
			prepCalls++
			ids := make([]string, len(ops))
			for i, o := range ops {
				ids[i] = o.ID
			}
			return ids
		},
		OnCommit: func(ops []diskstore.CommitOp, prepared any, _ diskstore.CommitState) error {
			commitCalls++
			ids, ok := prepared.([]string)
			if !ok || len(ids) != len(ops) {
				t.Errorf("prepared = %#v, want the prepare result for %d ops", prepared, len(ops))
				return nil
			}
			for i, o := range ops {
				if ids[i] != o.ID {
					t.Errorf("prepared[%d] = %q, op ID %q", i, ids[i], o.ID)
				}
			}
			return nil
		},
	})
	if err := st.Put(ctx, sampleDoc(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	b := st.Batch()
	if err := b.Put(sampleDoc(t, "b", 2)); err != nil {
		t.Fatal(err)
	}
	b.Delete("a")
	if err := b.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if prepCalls != 3 || commitCalls != 3 {
		t.Errorf("prepare ran %d times, commit %d; want 3 and 3", prepCalls, commitCalls)
	}
}
