//go:build unix

package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireLock takes an exclusive, non-blocking advisory flock on the
// store directory's LOCK file, so two processes can never replay,
// truncate, append to, or compact the same segments concurrently. The
// kernel releases the lock when the file handle closes — including on
// process crash — so a stale lock can never wedge the store.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %s is already open in another process (flock: %w)", dir, err)
	}
	return f, nil
}
