package diskstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Compact rewrites every live record into fresh segment files and drops
// everything else — superseded puts and tombstones — reclaiming the disk
// space appends accumulate. Compaction is explicit (no background
// goroutine) and exclusive: reads and writes wait while it runs.
//
// The swap is crash-safe through the manifest. New segments are written
// and fsynced while the manifest still names only the old ones; a single
// atomic manifest replace then flips the store to the new segments, and
// the old files are deleted last. A crash before the flip leaves the old
// store intact (the new files are swept as stale on Open); a crash after
// it leaves the compacted store intact (the old files are swept instead).
//
//lint:allow lockio compaction is exclusive by design: the whole rewrite-and-flip must run under the write lock so no reader ever observes a half-swapped segment set
func (s *Store) Compact(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}

	ids := make([]string, 0, len(s.index))
	for id := range s.index {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Write all live records, in ID order, to new segments numbered after
	// every existing one. On any failure the new files are abandoned; the
	// next Open removes them.
	num := s.nextSegNum()
	var (
		newOrder []uint64
		newSegs  = make(map[uint64]*segment)
		newRefs  = make(map[string]recordRef, len(ids))
		cur      *segment
	)
	abandon := func(err error) error {
		for _, seg := range newSegs {
			seg.f.Close()
			os.Remove(filepath.Join(s.dir, segName(seg.num)))
		}
		return err
	}
	newSegment := func() error {
		f, err := os.OpenFile(filepath.Join(s.dir, segName(num)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("diskstore: %w", err)
		}
		cur = &segment{num: num, f: f}
		newSegs[num] = cur
		newOrder = append(newOrder, num)
		num++
		return nil
	}
	if err := newSegment(); err != nil {
		return abandon(err)
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return abandon(err)
		}
		ref := s.index[id]
		payload := make([]byte, ref.n)
		if _, err := s.segs[ref.seg].f.ReadAt(payload, ref.off); err != nil {
			return abandon(fmt.Errorf("diskstore: %w", err))
		}
		if cur.size >= s.opts.MaxSegmentBytes {
			if err := newSegment(); err != nil {
				return abandon(err)
			}
		}
		frame := appendFrame(nil, payload)
		if _, err := cur.f.WriteAt(frame, cur.size); err != nil {
			return abandon(fmt.Errorf("diskstore: %w", err))
		}
		newRefs[id] = recordRef{seg: cur.num, off: cur.size + frameHeaderSize, n: ref.n}
		cur.size += int64(len(frame))
	}
	for _, seg := range newSegs {
		if err := seg.f.Sync(); err != nil {
			return abandon(fmt.Errorf("diskstore: %w", err))
		}
	}
	if err := syncDir(s.dir); err != nil {
		return abandon(err)
	}

	// The flip. Abandoning the new segments is only safe while the
	// on-disk manifest still names the old ones — that is, until the
	// rename lands. After a successful rename the new segments ARE the
	// store, so later failures (the directory fsync) must complete the
	// swap anyway rather than delete files the manifest references.
	if err := stageManifest(s.dir, newOrder); err != nil {
		return abandon(err)
	}
	if err := renameManifest(s.dir); err != nil {
		return abandon(err)
	}
	flipSyncErr := syncDir(s.dir)

	oldSegs := s.segs
	for _, seg := range oldSegs {
		seg.f.Close()
		if flipSyncErr == nil {
			// Old files are now stale; delete them. Failures here are
			// cosmetic — the next Open sweeps anything left behind.
			os.Remove(filepath.Join(s.dir, segName(seg.num)))
		}
		// With the flip not yet durable, keep the old files: if the
		// machine crashes before the rename's directory entry hits disk,
		// the old manifest plus old segments are still a consistent store.
	}
	s.segs = newSegs
	s.order = newOrder
	s.index = newRefs
	s.active = newSegs[newOrder[len(newOrder)-1]]
	// The rewritten segments hold exactly one record per live document, so
	// the op count a future replay would compute starts over from there.
	s.ops = uint64(len(newRefs))
	if flipSyncErr != nil {
		return fmt.Errorf("diskstore: compaction committed, but making it durable failed: %w (old segments kept; the next successful Open sweeps them)", flipSyncErr)
	}
	return nil
}
