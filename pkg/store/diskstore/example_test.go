package diskstore_test

import (
	"context"
	"fmt"
	"os"

	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store/diskstore"
)

// The full durable lifecycle: open a store, ingest documents in one
// batched commit, close, reopen (the index is rebuilt from the segment
// files), and query the persisted corpus with the parallel engine.
func Example() {
	dir, err := os.MkdirTemp("", "staccato-example-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	st, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		panic(err)
	}
	batch := st.Batch()
	docs := []*staccato.Doc{
		{ID: "doc-a", Chunks: []staccato.PathSet{
			{Retained: 1, Alts: []staccato.Alt{{Text: "the cat sat", Prob: 1}}},
		}},
		{ID: "doc-b", Chunks: []staccato.PathSet{
			{Retained: 1, Alts: []staccato.Alt{
				{Text: "cat", Prob: 0.25},
				{Text: "cot", Prob: 0.75},
			}},
		}},
	}
	for _, d := range docs {
		if err := batch.Put(d); err != nil {
			panic(err)
		}
	}
	if err := batch.Commit(ctx); err != nil { // one fsync for the whole batch
		panic(err)
	}
	if err := st.Close(); err != nil {
		panic(err)
	}

	// Reopen: replay the segments, rebuild the index, query in place.
	st, err = diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	fmt.Printf("reopened %d docs\n", st.Len())

	q, err := query.Substring("cat")
	if err != nil {
		panic(err)
	}
	eng := query.NewEngine(st, query.EngineOptions{})
	results, err := eng.Search(ctx, q, query.SearchOptions{})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s %.2f\n", r.DocID, r.Prob)
	}
	// Output:
	// reopened 2 docs
	// doc-a 1.00
	// doc-b 0.25
}
