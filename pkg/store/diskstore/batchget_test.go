package diskstore_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
	"github.com/paper-repo/staccato-go/pkg/store/diskstore"
)

func batchDoc(t *testing.T, id string, seed int64) *staccato.Doc {
	t.Helper()
	_, f := testgen.MustGenerate(testgen.Config{Length: 20, Seed: seed})
	d, err := staccato.Build(f, id, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestGetBatchAcrossSegments forces the store across several segment
// files (tiny MaxSegmentBytes), then batch-reads IDs deliberately
// shuffled out of on-disk order — the offset-sorting path — plus a
// missing ID, a deleted ID, and a duplicate.
func TestGetBatchAcrossSegments(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := diskstore.Open(dir, diskstore.Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 12
	want := make(map[string]*staccato.Doc, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("doc-%02d", i)
		d := batchDoc(t, id, int64(i+1))
		if err := st.Put(ctx, d); err != nil {
			t.Fatal(err)
		}
		want[id] = d
	}
	if st.Stats().Segments < 2 {
		t.Fatalf("corpus fits one segment (%d); shrink MaxSegmentBytes", st.Stats().Segments)
	}
	if err := st.Delete(ctx, "doc-05"); err != nil {
		t.Fatal(err)
	}

	ids := []string{"doc-11", "doc-00", "doc-07", "nope", "doc-05", "doc-03", "doc-11"}
	got, err := st.GetBatch(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("GetBatch returned %d docs for %d ids", len(got), len(ids))
	}
	for i, id := range ids {
		if id == "nope" || id == "doc-05" {
			if got[i] != nil {
				t.Errorf("slot %d (%s): want nil, got %+v", i, id, got[i])
			}
			continue
		}
		if !reflect.DeepEqual(got[i], want[id]) {
			t.Errorf("slot %d (%s): mismatch", i, id)
		}
	}

	// Batch reads survive a reopen (refs rebuilt by replay).
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := diskstore.Open(dir, diskstore.Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	again, err := st2.GetBatch(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatal("GetBatch after reopen differs")
	}
}

// TestGetBatchClosed: a closed store reports ErrClosed, not a panic on
// closed file handles.
func TestGetBatchClosed(t *testing.T) {
	ctx := context.Background()
	st, err := diskstore.Open(t.TempDir(), diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(ctx, batchDoc(t, "d", 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetBatch(ctx, []string{"d"}); !errors.Is(err, diskstore.ErrClosed) {
		t.Fatalf("GetBatch on closed store: err = %v, want ErrClosed", err)
	}
}

var _ store.BatchGetter = (*diskstore.Store)(nil)
