//go:build !unix

package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
)

// acquireLock on platforms without flock creates the LOCK file but
// provides no cross-process exclusion; single-process use (the tested
// configuration) is unaffected.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return f, nil
}
