package diskstore

import (
	"context"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Batch accumulates Puts and Deletes in memory and commits them in one
// append and one fsync per touched segment — the batched ingest path.
// A Batch is not safe for concurrent use; build it on one goroutine and
// Commit. The store itself stays safe for concurrent use throughout.
type Batch struct {
	s   *Store
	ops []op
	err error
}

// Batch returns an empty write batch against s.
func (s *Store) Batch() *Batch {
	return &Batch{s: s}
}

// Put adds doc to the batch, replacing any same-ID document when the
// batch commits. The document is encoded immediately, so the caller may
// mutate it after Put returns. An encoding error is latched and returned
// by this Put and by Commit.
func (b *Batch) Put(doc *staccato.Doc) error {
	o, err := putOp(doc)
	if err != nil {
		b.err = err
		return err
	}
	b.ops = append(b.ops, o)
	return nil
}

// Delete adds a tombstone for id to the batch.
func (b *Batch) Delete(id string) {
	b.ops = append(b.ops, op{kind: recDelete, id: id})
}

// Len returns the number of pending operations.
func (b *Batch) Len() int { return len(b.ops) }

// Commit durably applies the batch in order — later operations on the
// same ID supersede earlier ones — with a single fsync per touched
// segment file, then resets the batch for reuse. Commit is not atomic:
// if it fails partway, operations already written are durable and will
// replay on the next Open; retrying the whole batch is safe because
// every operation is an idempotent overwrite or tombstone.
func (b *Batch) Commit(ctx context.Context) error {
	if b.err != nil {
		return b.err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Decode the commit-hook documents before taking the write lock, so
	// hook preparation never serializes readers. Decoding (rather than
	// retaining the caller's documents from Put) is deliberate: Put's
	// contract lets the caller mutate a document the moment Put returns,
	// so at commit time only the encoded bytes are trustworthy — a stale
	// pointer here would feed the index grams that disagree with what the
	// store holds.
	hookOps, err := b.s.hookOpsFor(b.ops)
	if err != nil {
		return err
	}
	var prepared any
	if len(hookOps) > 0 && b.s.opts.PrepareCommit != nil {
		prepared = b.s.opts.PrepareCommit(hookOps)
	}
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	//lint:allow lockio the write path is serialized by design: the batch's append+fsync must be atomic with the index update
	if err := b.s.writeOps(b.ops, hookOps, prepared); err != nil {
		return err
	}
	b.ops = b.ops[:0]
	return nil
}
