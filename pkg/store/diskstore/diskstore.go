// Package diskstore implements a durable, disk-backed store.DocStore on
// append-only segment files, so a corpus ingested once survives the
// process and can be reopened and queried in place — the "manage OCR
// data inside a database" half of the Staccato thesis.
//
// # On-disk layout
//
// A store is a directory:
//
//	MANIFEST            live segment numbers, in replay order
//	seg-00000001.log    append-only records
//	seg-00000002.log    ...
//
// Every record is framed as
//
//	uint32 payloadLen | uint32 crc32(payload) | payload
//	payload = kind byte | uvarint len(id) | id | encoded doc (puts only)
//
// where the document bytes are the versioned store.Encode form shared by
// every backend. Records are only ever appended; a Put of an existing ID
// appends a superseding record and a Delete appends a tombstone. The
// in-memory index (ID → segment, offset) is rebuilt by replaying the
// segments in manifest order on Open, so the newest record for each ID
// wins and disk holds no secondary structures that can desynchronize.
//
// # Crash safety
//
// A torn tail — a record whose frame is incomplete or whose checksum does
// not match, from a crash mid-append — is detected during replay and
// truncated away; only the torn record is lost. Manifest updates go
// through write-temp-then-rename, so the set of live segments changes
// atomically; segment files not named by the manifest are leftovers of an
// interrupted Compact or roll and are deleted on Open. Batch groups many
// writes into a single fsync, which is where ingest throughput comes from
// (see the package benchmarks).
package diskstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// ErrClosed is returned by every operation on a closed store.
var ErrClosed = errors.New("diskstore: store is closed")

const (
	manifestName  = "MANIFEST"
	manifestTemp  = "MANIFEST.tmp"
	manifestMagic = "staccato-diskstore v1"
	lockName      = "LOCK"
	segPrefix     = "seg-"
	segSuffix     = ".log"

	recPut    = byte(1)
	recDelete = byte(2)

	frameHeaderSize = 8       // uint32 payload length + uint32 crc32
	maxPayloadSize  = 1 << 30 // larger lengths mean a corrupt frame
)

// CommitOp is one operation of a durable commit, as seen by a commit
// hook: a put carries the decoded document, a delete carries only the ID.
type CommitOp struct {
	ID string
	// Doc is the decoded document for puts and nil for deletes. The hook
	// must not retain it past the call.
	Doc *staccato.Doc
}

// CommitState fingerprints the store's on-disk write history: the total
// number of records in the live segments (superseded puts and tombstones
// included), their total byte size, and the active segment's number.
// Ops and Bytes only ever grow between compactions; a compaction resets
// them but allocates fresh, strictly higher segment numbers, so Seg
// guarantees a post-compaction state can never collide with any stamp
// taken before it (Ops and Bytes alone could coincide by size accident).
// Derived structures — notably the inverted index kept by pkg/staccatodb
// — persist the state they were built against and compare it on reopen:
// any mismatch (a write made without the derived structure attached, a
// torn tail truncated during replay, a compaction) marks the structure
// stale.
type CommitState struct {
	Ops   uint64
	Bytes int64
	Seg   uint64
}

// Options configure Open. The zero value is ready to use.
type Options struct {
	// MaxSegmentBytes rolls the active segment to a fresh file once it
	// grows past this size (default 4 MiB). Smaller segments mean more
	// files but finer-grained compaction.
	MaxSegmentBytes int64
	// NoSync skips the fsync that normally ends every commit. Throughput
	// rises sharply; an OS crash (not a process crash) may lose the most
	// recent commits. The record framing keeps the store openable either
	// way.
	NoSync bool
	// PrepareCommit, if non-nil alongside OnCommit, runs on the writing
	// goroutine BEFORE the store's write lock is taken, with the decoded
	// operations of the commit about to be attempted; whatever it returns
	// is handed to OnCommit verbatim. Expensive derivation — index entry
	// extraction, serialization — belongs here so it never serializes
	// readers or other writers. It must not assume the commit will
	// succeed.
	PrepareCommit func(ops []CommitOp) any
	// OnCommit, if non-nil, is invoked after every durable commit — one
	// Put, one Delete, or one Batch.Commit — with the operations just
	// applied, PrepareCommit's result (nil if no PrepareCommit), and the
	// store's new CommitState. It runs with the store's write lock held,
	// so it sees commits in exactly the order they become durable and no
	// other commit can interleave; it must be fast and must not call back
	// into the store. A returned error is reported to the writer, but the
	// commit itself is already durable — the hook cannot veto it, only
	// observe it.
	OnCommit func(ops []CommitOp, prepared any, state CommitState) error
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	return o
}

// recordRef locates one live record's payload on disk.
type recordRef struct {
	seg uint64
	off int64 // payload offset within the segment file
	n   int   // payload length
}

// segment is one open append-only file.
type segment struct {
	num  uint64
	f    *os.File
	size int64
}

func segName(num uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, num, segSuffix)
}

// Store is a durable DocStore. It is safe for concurrent use: reads run
// in parallel, writes are serialized.
type Store struct {
	dir  string
	opts Options
	lock *os.File // flock'd LOCK file; held for the store's lifetime

	mu     sync.RWMutex
	index  map[string]recordRef
	segs   map[uint64]*segment
	order  []uint64 // manifest order; last entry is the active segment
	active *segment
	ops    uint64 // records in live segments, superseded and tombstones included
	closed bool
}

var (
	_ store.DocStore    = (*Store)(nil)
	_ store.IDLister    = (*Store)(nil)
	_ store.BatchGetter = (*Store)(nil)
)

// Open opens (creating if necessary) the store in dir and rebuilds the
// in-memory index by replaying the live segments. Torn tails are
// truncated; segment files the manifest does not name are removed. The
// directory is flock'd for the store's lifetime (on platforms with
// flock), so a second process opening the same store fails fast instead
// of corrupting it.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		lock:  lock,
		index: make(map[string]recordRef),
		segs:  make(map[uint64]*segment),
	}
	opened := false
	defer func() {
		if !opened {
			s.closeSegments()
			lock.Close()
		}
	}()
	order, err := readManifest(dir)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if names, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix)); len(names) > 0 {
			return nil, fmt.Errorf("diskstore: %s has segment files but no %s; refusing to guess replay order", dir, manifestName)
		}
		if err := s.addSegment(1); err != nil {
			return nil, err
		}
		opened = true
		return s, nil
	case err != nil:
		return nil, err
	}
	s.order = order
	if err := s.removeStaleFiles(); err != nil {
		return nil, err
	}
	for _, num := range order {
		if err := s.replaySegment(num); err != nil {
			return nil, err
		}
	}
	if len(s.order) == 0 {
		// A manifest with no segments (e.g. hand-edited): normalize by
		// creating an empty active segment.
		if err := s.addSegment(1); err != nil {
			return nil, err
		}
		opened = true
		return s, nil
	}
	s.active = s.segs[s.order[len(s.order)-1]]
	opened = true
	return s, nil
}

// removeStaleFiles deletes segment files the manifest does not name and
// any leftover manifest temp file — debris of an interrupted Compact.
func (s *Store) removeStaleFiles() error {
	live := make(map[string]bool, len(s.order))
	for _, num := range s.order {
		live[segName(num)] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		stale := name == manifestTemp ||
			(strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) && !live[name])
		if stale {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return fmt.Errorf("diskstore: removing stale %s: %w", name, err)
			}
		}
	}
	return nil
}

// replaySegment opens one segment and replays its records into the
// index. A bad record whose damage touches the end of the file is a
// torn tail — the signature of a crash mid-append — and is truncated
// away, losing only that record. A corrupt record that is NOT the last
// thing in the file cannot come from a torn append (appends only ever
// extend the file); it is media damage, and replay refuses to open the
// store rather than silently discarding every record after it.
func (s *Store) replaySegment(num uint64) error {
	path := filepath.Join(s.dir, segName(num))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	seg := &segment{num: num, f: f}
	s.segs[num] = seg
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	fileSize := fi.Size()

	r := bufio.NewReaderSize(f, 1<<20)
	off := int64(0)
	torn := false
	// corrupt marks a bad frame that is fully interior to the file: more
	// (possibly valid) data follows it, so truncating here would discard
	// records a crash cannot explain losing.
	corrupt := func(what string) error {
		return fmt.Errorf(
			"diskstore: %s: %s at offset %d with %d bytes after it — not a torn tail; refusing to drop data (restore the file from a copy, or truncate it to %d by hand to discard everything after the damage)",
			segName(num), what, off, fileSize-off, off)
	}
loop:
	for off < fileSize {
		if fileSize-off < frameHeaderSize {
			torn = true // partial header can only be the file's last bytes
			break
		}
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return fmt.Errorf("diskstore: reading %s: %w", segName(num), err)
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		frameEnd := off + frameHeaderSize + int64(plen)
		if plen > maxPayloadSize || frameEnd > fileSize {
			// The claimed payload runs past EOF: a torn length field or a
			// frame whose tail never hit the disk. Never allocate more than
			// the file can actually hold.
			torn = true
			break
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("diskstore: reading %s: %w", segName(num), err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if frameEnd == fileSize {
				torn = true
				break
			}
			return corrupt("checksum mismatch")
		}
		kind, id, _, err := parsePayload(payload)
		if err != nil {
			if frameEnd == fileSize {
				torn = true
				break
			}
			return corrupt("malformed record payload")
		}
		switch kind {
		case recPut:
			s.index[id] = recordRef{seg: num, off: off + frameHeaderSize, n: int(plen)}
			s.ops++
		case recDelete:
			delete(s.index, id)
			s.ops++
		default:
			if frameEnd == fileSize {
				torn = true
				break loop
			}
			return corrupt(fmt.Sprintf("unknown record kind %d", kind))
		}
		off = frameEnd
	}
	seg.size = off
	if torn || fileSize != off {
		// Torn tail: truncate so future appends start at a record boundary
		// and the next replay ends cleanly.
		if err := f.Truncate(off); err != nil {
			return fmt.Errorf("diskstore: truncating torn tail of %s: %w", segName(num), err)
		}
	}
	return nil
}

// addSegment creates segment file num, records it in the manifest, and
// makes it the active append target. The file is created and made durable
// before the manifest names it, so a crash between the two steps leaves
// only an unreferenced empty file.
func (s *Store) addSegment(num uint64) error {
	path := filepath.Join(s.dir, segName(num))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	order := append(append([]uint64{}, s.order...), num)
	if err := writeManifest(s.dir, order); err != nil {
		f.Close()
		return err
	}
	seg := &segment{num: num, f: f}
	s.segs[num] = seg
	s.order = order
	s.active = seg
	return nil
}

func (s *Store) nextSegNum() uint64 {
	var max uint64
	for _, n := range s.order {
		if n > max {
			max = n
		}
	}
	return max + 1
}

// op is one pending write: a put (doc != nil) or a tombstone.
type op struct {
	kind byte
	id   string
	doc  []byte // encoded document, puts only
}

// writeOps appends the ops' records to the active segment (rolling to new
// segments as MaxSegmentBytes requires), fsyncs every touched file once,
// and only then applies the index updates. The caller must hold s.mu and,
// when a commit hook is registered, must supply hookOps (one CommitOp per
// op, decoded documents for puts) and the PrepareCommit result, both
// built before taking the lock, so hook preparation never costs time
// under the write lock.
//
// A commit is not atomic across ops: if the write or sync fails partway,
// records already durable on disk will replay on the next Open even
// though the in-memory index was not updated. writeOps makes a
// best-effort truncate back to the starting offset in the common
// single-segment case to keep memory and disk consistent after errors.
func (s *Store) writeOps(ops []op, hookOps []CommitOp, prepared any) error {
	if s.closed {
		return ErrClosed
	}
	if len(ops) == 0 {
		return nil
	}
	touched := []*segment{s.active}
	startSeg, startSize := s.active, s.active.size

	refs := make([]recordRef, len(ops))
	var buf []byte
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := s.active.f.WriteAt(buf, s.active.size); err != nil {
			return fmt.Errorf("diskstore: %w", err)
		}
		s.active.size += int64(len(buf))
		buf = buf[:0]
		return nil
	}
	fail := func(err error) error {
		// Best-effort rollback when no roll happened: drop the partial
		// append so disk matches the (unchanged) index.
		if s.active == startSeg {
			if terr := startSeg.f.Truncate(startSize); terr == nil {
				startSeg.size = startSize
			}
		}
		return err
	}

	for i, o := range ops {
		if s.active.size+int64(len(buf)) >= s.opts.MaxSegmentBytes &&
			s.active.size+int64(len(buf)) > 0 {
			if err := flush(); err != nil {
				return fail(err)
			}
			if err := s.addSegment(s.nextSegNum()); err != nil {
				return fail(err)
			}
			touched = append(touched, s.active)
		}
		payload := encodePayload(o)
		refs[i] = recordRef{
			seg: s.active.num,
			off: s.active.size + int64(len(buf)) + frameHeaderSize,
			n:   len(payload),
		}
		buf = appendFrame(buf, payload)
	}
	if err := flush(); err != nil {
		return fail(err)
	}
	if !s.opts.NoSync {
		for _, seg := range touched {
			if err := seg.f.Sync(); err != nil {
				return fail(fmt.Errorf("diskstore: %w", err))
			}
		}
	}
	for i, o := range ops {
		if o.kind == recPut {
			s.index[o.id] = refs[i]
		} else {
			delete(s.index, o.id)
		}
	}
	s.ops += uint64(len(ops))
	if s.opts.OnCommit != nil && len(hookOps) > 0 {
		if err := s.opts.OnCommit(hookOps, prepared, s.commitStateLocked()); err != nil {
			return fmt.Errorf("diskstore: commit durable, but the commit hook failed: %w", err)
		}
	}
	return nil
}

// hookOpsFor builds the CommitOp slice for a pending op list, decoding
// put payloads back into documents. Returns nil when no hook is
// registered. Callers run this before taking s.mu.
func (s *Store) hookOpsFor(ops []op) ([]CommitOp, error) {
	if s.opts.OnCommit == nil {
		return nil, nil
	}
	out := make([]CommitOp, len(ops))
	for i, o := range ops {
		out[i] = CommitOp{ID: o.id}
		if o.kind == recPut {
			doc, err := store.Decode(o.doc)
			if err != nil {
				// The payload round-tripped through Encode moments ago; a
				// decode failure here is a bug, not an I/O condition.
				return nil, fmt.Errorf("diskstore: decoding %q for the commit hook: %w", o.id, err)
			}
			out[i].Doc = doc
		}
	}
	return out, nil
}

// commitStateLocked computes the current CommitState. Callers hold s.mu.
func (s *Store) commitStateLocked() CommitState {
	st := CommitState{Ops: s.ops}
	for _, seg := range s.segs {
		st.Bytes += seg.size
	}
	if s.active != nil {
		st.Seg = s.active.num
	}
	return st
}

// CommitState returns the store's current write-history fingerprint; see
// the type's documentation for how derived structures use it.
func (s *Store) CommitState() CommitState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commitStateLocked()
}

// ListDocIDs returns every live document ID in ascending order without
// reading document bodies, implementing the optional store.IDLister
// capability the query engine's pruned scan path relies on.
func (s *Store) ListDocIDs(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	ids := make([]string, 0, len(s.index))
	for id := range s.index {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids, nil
}

// Put stores doc durably, replacing any existing document with the same
// ID. Each Put is one record and (unless NoSync) one fsync; use Batch to
// amortize the fsync across many documents.
func (s *Store) Put(ctx context.Context, doc *staccato.Doc) error {
	o, err := putOp(doc)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// The hook sees the caller's own document: Put is synchronous, so the
	// pointer is valid for the call's duration and no decode is needed.
	var hookOps []CommitOp
	var prepared any
	if s.opts.OnCommit != nil {
		hookOps = []CommitOp{{ID: doc.ID, Doc: doc}}
		if s.opts.PrepareCommit != nil {
			prepared = s.opts.PrepareCommit(hookOps)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockio the write path is serialized by design: append+fsync must be atomic with the index update or a crash could expose a record the index never covers
	return s.writeOps([]op{o}, hookOps, prepared)
}

// Get returns the document with the given ID, or store.ErrNotFound. Like
// GetBatch, it holds the read lock only long enough to copy the raw
// record off its segment; decoding happens after the lock is released.
func (s *Store) Get(ctx context.Context, id string) (*staccato.Doc, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	ref, ok := s.index[id]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", store.ErrNotFound, id)
	}
	//lint:allow lockio the read lock must pin the segment file open across the ReadAt (Compact closes segments under the write lock); only the decode happens outside
	payload, err := s.readPayload(ref)
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return decodeLivePayload(id, payload)
}

// readPayload copies one record payload off its segment. Callers must
// hold s.mu (read or write): the lock keeps Compact from closing the
// segment file under the ReadAt. Decoding the returned bytes is the
// caller's job, after releasing the lock.
func (s *Store) readPayload(ref recordRef) ([]byte, error) {
	seg := s.segs[ref.seg]
	if seg == nil {
		return nil, fmt.Errorf("diskstore: index references missing segment %d", ref.seg)
	}
	payload := make([]byte, ref.n)
	if _, err := seg.f.ReadAt(payload, ref.off); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return payload, nil
}

// decodeLivePayload parses one record payload and decodes its document,
// verifying the record is the live put the index claimed for id — the
// single validation both Get and GetBatch apply to bytes read off a
// segment.
func decodeLivePayload(id string, payload []byte) (*staccato.Doc, error) {
	kind, gotID, docBytes, err := parsePayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != recPut || gotID != id {
		return nil, fmt.Errorf("diskstore: index for %q points at a %q record for %q", id, kindName(kind), gotID)
	}
	return store.Decode(docBytes)
}

// GetBatch returns the documents for ids, aligned with the input (nil
// for missing IDs), implementing the optional store.BatchGetter
// capability. The read lock is taken once for the whole batch and the
// record reads are issued in (segment, offset) order, so a batch of
// candidates that landed near each other — the common case after a
// bulk ingest — becomes a near-sequential pass over the segment files
// instead of len(ids) random seeks. Decoding happens after the lock is
// released.
func (s *Store) GetBatch(ctx context.Context, ids []string) ([]*staccato.Doc, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type slot struct {
		idx int // position in ids / out
		ref recordRef
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	slots := make([]slot, 0, len(ids))
	for i, id := range ids {
		if ref, ok := s.index[id]; ok {
			slots = append(slots, slot{idx: i, ref: ref})
		}
	}
	sort.Slice(slots, func(a, b int) bool {
		if slots[a].ref.seg != slots[b].ref.seg {
			return slots[a].ref.seg < slots[b].ref.seg
		}
		return slots[a].ref.off < slots[b].ref.off
	})
	payloads := make([][]byte, len(slots))
	for i, sl := range slots {
		seg := s.segs[sl.ref.seg]
		if seg == nil {
			s.mu.RUnlock()
			return nil, fmt.Errorf("diskstore: index references missing segment %d", sl.ref.seg)
		}
		payloads[i] = make([]byte, sl.ref.n)
		//lint:allow lockio the read lock must pin the segment files open across the batch's ReadAt pass; decoding happens below, after RUnlock
		if _, err := seg.f.ReadAt(payloads[i], sl.ref.off); err != nil {
			s.mu.RUnlock()
			return nil, fmt.Errorf("diskstore: %w", err)
		}
	}
	s.mu.RUnlock()

	out := make([]*staccato.Doc, len(ids))
	for i, sl := range slots {
		doc, err := decodeLivePayload(ids[sl.idx], payloads[i])
		if err != nil {
			return nil, err
		}
		out[sl.idx] = doc
	}
	return out, nil
}

// Delete removes the document with the given ID by appending a durable
// tombstone; deleting a missing ID is a no-op.
func (s *Store) Delete(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// Hook preparation runs before the lock, per the PrepareCommit
	// contract — even though the presence check below may turn the whole
	// call into a no-op (PrepareCommit must not assume the commit
	// happens, and OnCommit then never fires).
	var hookOps []CommitOp
	var prepared any
	if s.opts.OnCommit != nil {
		hookOps = []CommitOp{{ID: id}}
		if s.opts.PrepareCommit != nil {
			prepared = s.opts.PrepareCommit(hookOps)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[id]; !ok {
		return nil
	}
	//lint:allow lockio the write path is serialized by design: the tombstone append+fsync must be atomic with the index removal
	return s.writeOps([]op{{kind: recDelete, id: id}}, hookOps, prepared)
}

// Scan visits all documents in ascending ID order. The snapshot of IDs is
// taken up front, so fn may call back into the store; a document deleted
// between snapshot and visit is skipped.
func (s *Store) Scan(ctx context.Context, fn func(doc *staccato.Doc) error) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	ids := make([]string, 0, len(s.index))
	for id := range s.index {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)

	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		doc, err := s.Get(ctx, id)
		if errors.Is(err, store.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if err := fn(doc); err != nil {
			if errors.Is(err, store.ErrStopScan) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Len returns the number of live documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats describes the store's current disk footprint.
type Stats struct {
	// Docs is the number of live documents.
	Docs int
	// Segments is the number of live segment files.
	Segments int
	// DiskBytes is the total size of the live segment files, including
	// superseded records and tombstones not yet compacted away.
	DiskBytes int64
}

// Stats reports live document count, segment count, and disk bytes.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Docs: len(s.index), Segments: len(s.order)}
	for _, seg := range s.segs {
		st.DiskBytes += seg.size
	}
	return st
}

// Close releases the store's file handles. Operations after Close return
// ErrClosed. Close never loses committed data: every commit is already
// on disk (and, unless NoSync, fsynced) before its call returns.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.closeSegments()
	if lerr := s.lock.Close(); lerr != nil && err == nil {
		err = lerr // closing the handle releases the flock
	}
	return err
}

func (s *Store) closeSegments() error {
	var firstErr error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func putOp(doc *staccato.Doc) (op, error) {
	if doc == nil || doc.ID == "" {
		return op{}, fmt.Errorf("diskstore: Put: document must have a non-empty ID")
	}
	data, err := store.Encode(doc)
	if err != nil {
		return op{}, err
	}
	return op{kind: recPut, id: doc.ID, doc: data}, nil
}

func encodePayload(o op) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(o.id)+len(o.doc))
	buf = append(buf, o.kind)
	buf = binary.AppendUvarint(buf, uint64(len(o.id)))
	buf = append(buf, o.id...)
	buf = append(buf, o.doc...)
	return buf
}

func parsePayload(p []byte) (kind byte, id string, doc []byte, err error) {
	if len(p) < 1 {
		return 0, "", nil, fmt.Errorf("diskstore: empty record payload")
	}
	kind = p[0]
	rest := p[1:]
	n, w := binary.Uvarint(rest)
	if w <= 0 || n > uint64(len(rest)-w) {
		return 0, "", nil, fmt.Errorf("diskstore: corrupt record key length")
	}
	rest = rest[w:]
	id = string(rest[:n])
	doc = rest[n:]
	if kind == recDelete && len(doc) != 0 {
		return 0, "", nil, fmt.Errorf("diskstore: tombstone with %d trailing bytes", len(doc))
	}
	return kind, id, doc, nil
}

func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func kindName(k byte) string {
	switch k {
	case recPut:
		return "put"
	case recDelete:
		return "delete"
	default:
		return fmt.Sprintf("kind=%d", k)
	}
}

// readManifest returns the live segment numbers in replay order.
func readManifest(dir string) ([]uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != manifestMagic {
		return nil, fmt.Errorf("diskstore: %s is not a %q manifest", manifestName, manifestMagic)
	}
	var order []uint64
	seen := make(map[uint64]bool)
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		n, err := strconv.ParseUint(line, 10, 64)
		if err != nil || n == 0 || seen[n] {
			return nil, fmt.Errorf("diskstore: bad manifest segment entry %q", line)
		}
		seen[n] = true
		order = append(order, n)
	}
	return order, nil
}

// stageManifest writes and fsyncs the manifest temp file, ready for the
// atomic rename over MANIFEST.
func stageManifest(dir string, order []uint64) error {
	var sb strings.Builder
	sb.WriteString(manifestMagic + "\n")
	for _, n := range order {
		fmt.Fprintf(&sb, "%d\n", n)
	}
	tmp := filepath.Join(dir, manifestTemp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if _, err := f.WriteString(sb.String()); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// renameManifest performs the atomic flip: after it returns nil the
// on-disk manifest names the new order, whatever happens next.
func renameManifest(dir string) error {
	if err := os.Rename(filepath.Join(dir, manifestTemp), filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// writeManifest atomically replaces the manifest: write a temp file,
// fsync it, rename over MANIFEST, fsync the directory.
func writeManifest(dir string, order []uint64) error {
	if err := stageManifest(dir, order); err != nil {
		return err
	}
	if err := renameManifest(dir); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and file creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("diskstore: fsync %s: %w", dir, err)
	}
	return nil
}
