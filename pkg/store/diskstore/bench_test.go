package diskstore_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
	"github.com/paper-repo/staccato-go/pkg/store/diskstore"
)

const benchDocs = 200

var (
	benchCorpusOnce sync.Once
	benchCorpus     []*staccato.Doc
)

// corpus returns a shared pre-generated document set so the benchmarks
// measure the store, not testgen.
func corpus(b *testing.B) []*staccato.Doc {
	b.Helper()
	benchCorpusOnce.Do(func() {
		cases, err := testgen.Docs(benchDocs, testgen.Config{Length: 40, Seed: 2}, 5, 3)
		if err != nil {
			panic(err)
		}
		for _, c := range cases {
			benchCorpus = append(benchCorpus, c.Doc)
		}
	})
	return benchCorpus
}

func reportDocsPerSec(b *testing.B, docs int) {
	b.Helper()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(docs*b.N)/s, "docs/s")
	}
}

// BenchmarkIngestUnbatched is the naive ingest path: one Put — one
// record, one fsync — per document.
func BenchmarkIngestUnbatched(b *testing.B) {
	docs := corpus(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := diskstore.Open(b.TempDir(), diskstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, d := range docs {
			if err := st.Put(ctx, d); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
	reportDocsPerSec(b, len(docs))
}

// BenchmarkIngestBatched is the batched path the ingest CLI uses: the
// same documents grouped into commits of 100, each one fsync. The ratio
// to BenchmarkIngestUnbatched is the headline number in
// BENCH_diskstore.json.
func BenchmarkIngestBatched(b *testing.B) {
	docs := corpus(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := diskstore.Open(b.TempDir(), diskstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		batch := st.Batch()
		for _, d := range docs {
			if err := batch.Put(d); err != nil {
				b.Fatal(err)
			}
			if batch.Len() >= 100 {
				if err := batch.Commit(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := batch.Commit(ctx); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
	reportDocsPerSec(b, len(docs))
}

// BenchmarkOpenReindex measures the cold-open cost: replaying every
// segment record to rebuild the in-memory index.
func BenchmarkOpenReindex(b *testing.B) {
	dir := b.TempDir()
	st, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	batch := st.Batch()
	for _, d := range corpus(b) {
		if err := batch.Put(d); err != nil {
			b.Fatal(err)
		}
	}
	if err := batch.Commit(context.Background()); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := diskstore.Open(dir, diskstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() != benchDocs {
			b.Fatalf("reindexed %d docs, want %d", st.Len(), benchDocs)
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
	reportDocsPerSec(b, benchDocs)
}

// scanAll drains a full Scan, decoding every document.
func scanAll(b *testing.B, st store.DocStore) {
	b.Helper()
	n := 0
	if err := st.Scan(context.Background(), func(*staccato.Doc) error {
		n++
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	if n != benchDocs {
		b.Fatalf("scanned %d docs, want %d", n, benchDocs)
	}
}

// BenchmarkScanDisk measures full-corpus scan throughput off disk — the
// engine's read path over a persisted store.
func BenchmarkScanDisk(b *testing.B) {
	st, err := diskstore.Open(b.TempDir(), diskstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	batch := st.Batch()
	for _, d := range corpus(b) {
		if err := batch.Put(d); err != nil {
			b.Fatal(err)
		}
	}
	if err := batch.Commit(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAll(b, st)
	}
	reportDocsPerSec(b, benchDocs)
}

// BenchmarkScanMem is the same scan over MemStore — the baseline the
// disk path is compared against in BENCH_diskstore.json.
func BenchmarkScanMem(b *testing.B) {
	st := store.NewMemStore()
	ctx := context.Background()
	for _, d := range corpus(b) {
		if err := st.Put(ctx, d); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAll(b, st)
	}
	reportDocsPerSec(b, benchDocs)
}

// TestBatchedIngestFasterThanUnbatched is a coarse, generously-margined
// check that the batched write path actually avoids per-document fsyncs;
// the precise ratio is tracked by the benchmarks above.
func TestBatchedIngestFasterThanUnbatched(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	docs := make([]*staccato.Doc, 0, 50)
	cases, err := testgen.Docs(50, testgen.Config{Length: 30, Seed: 8}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		docs = append(docs, c.Doc)
	}
	ctx := context.Background()

	time1 := timeIngest(t, docs, func(st *diskstore.Store) error {
		for _, d := range docs {
			if err := st.Put(ctx, d); err != nil {
				return err
			}
		}
		return nil
	})
	time2 := timeIngest(t, docs, func(st *diskstore.Store) error {
		b := st.Batch()
		for _, d := range docs {
			if err := b.Put(d); err != nil {
				return err
			}
		}
		return b.Commit(ctx)
	})
	if time2 >= time1 {
		t.Errorf("batched ingest (%v) not faster than unbatched (%v)", time2, time1)
	} else {
		t.Logf("unbatched %v, batched %v (%.1fx)", time1, time2, float64(time1)/float64(time2))
	}
}

func timeIngest(t *testing.T, docs []*staccato.Doc, run func(*diskstore.Store) error) time.Duration {
	t.Helper()
	best := time.Duration(1 << 62)
	for trial := 0; trial < 3; trial++ {
		st, err := diskstore.Open(t.TempDir(), diskstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := run(st); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		st.Close()
		if elapsed < best {
			best = elapsed
		}
	}
	return best
}
