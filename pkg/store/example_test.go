package store_test

import (
	"context"
	"fmt"

	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// Every DocStore backend answers the same four operations; Count and
// ListIDs are helpers that work against any of them, with ListIDs ending
// its scan early through ErrStopScan once the limit is reached.
func ExampleListIDs() {
	ctx := context.Background()
	st := store.NewMemStore()
	for _, id := range []string{"doc-c", "doc-a", "doc-b"} {
		doc := &staccato.Doc{ID: id, Chunks: []staccato.PathSet{
			{Retained: 1, Alts: []staccato.Alt{{Text: "text", Prob: 1}}},
		}}
		if err := st.Put(ctx, doc); err != nil {
			panic(err)
		}
	}
	n, err := store.Count(ctx, st)
	if err != nil {
		panic(err)
	}
	ids, err := store.ListIDs(ctx, st, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(n, ids)
	// Output: 3 [doc-a doc-b]
}
