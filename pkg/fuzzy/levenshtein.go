// Package fuzzy is the edit-distance query subsystem: a Levenshtein
// automaton compiled once per (term, distance) into a deterministic
// finite automaton, plus a lexicon rescoring pass that re-weights a
// document's retained readings toward in-dictionary variants.
//
// The DFA answers substring-approximate matching — "does the input
// contain a window within edit distance d of term?" — which is the
// Sellers variant of the classic Levenshtein automaton: the dynamic
// programming column starts every row at cost 0, so a match may begin
// anywhere in the input. States are clamped DP columns (every cell
// capped at d+1, beyond which the exact value cannot matter), discovered
// by breadth-first search over the characteristic bitvectors of the
// term's distinct runes. Construction is fully deterministic — sorted
// rune alphabet, BFS in fixed order — because downstream the state IDs
// feed pkg/query's product DP, where state numbering pins float
// accumulation order and therefore bit-identical probabilities.
//
// The package is self-contained on purpose: pkg/query wraps a DFA into
// its automaton interface, but nothing here depends on query planning or
// evaluation, so the automaton's correctness is testable (and fuzzable)
// against the reference Within oracle alone.
package fuzzy

import (
	"fmt"
	"sort"
)

// MaxDistance is the largest supported edit distance. Beyond 2 the
// automaton's state space and the planner's gram pieces both degrade
// sharply, and OCR noise this subsystem targets rarely needs more.
const MaxDistance = 2

// maxTermRunes bounds compiled terms so a characteristic bitvector fits
// one uint64.
const maxTermRunes = 64

// maxStates caps DFA construction. The joint-state encoding in
// pkg/query packs a state ID plus a sentinel into a uint16, and the
// clamped-column construction for m ≤ 64, d ≤ 2 stays far below this;
// hitting the cap means a bug, not a big term, so it is an error.
const maxStates = 1 << 14

// DFA is a compiled Levenshtein automaton for one (term, distance)
// pair. It is immutable after Compile and safe for concurrent use.
type DFA struct {
	term []rune
	dist int

	alphabet []rune   // sorted distinct runes of term
	masks    []uint64 // masks[i]: bit j set iff term[j] == alphabet[i]

	// trans[s*(len(alphabet)+1) + c] is the state reached from s on a
	// rune of characteristic class c; class 0 is "rune not in term",
	// class i+1 is alphabet[i].
	trans  []uint16
	accept []bool // accept[s]: the window ending here is within dist
}

// Compile builds the DFA for term at the given edit distance. The term
// must be non-empty, at most 64 runes, longer (in runes) than dist —
// otherwise the empty window already matches and the automaton would
// accept every input — and dist must be in [0, MaxDistance].
func Compile(term string, dist int) (*DFA, error) {
	pat := []rune(term)
	if len(pat) == 0 {
		return nil, fmt.Errorf("fuzzy: empty term")
	}
	if len(pat) > maxTermRunes {
		return nil, fmt.Errorf("fuzzy: term of %d runes exceeds the %d-rune limit", len(pat), maxTermRunes)
	}
	if dist < 0 || dist > MaxDistance {
		return nil, fmt.Errorf("fuzzy: distance %d out of range [0, %d]", dist, MaxDistance)
	}
	if len(pat) <= dist {
		return nil, fmt.Errorf("fuzzy: term %q of %d runes must be longer than distance %d (every string would match)", term, len(pat), dist)
	}
	d := &DFA{term: pat, dist: dist}
	d.buildAlphabet()
	if err := d.buildStates(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustCompile is Compile for known-good inputs; it panics on error.
func MustCompile(term string, dist int) *DFA {
	d, err := Compile(term, dist)
	if err != nil {
		panic(err)
	}
	return d
}

// Term returns the compiled pattern.
func (d *DFA) Term() string { return string(d.term) }

// Distance returns the compiled edit distance.
func (d *DFA) Distance() int { return d.dist }

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.accept) }

// Start returns the start state (always 0). The start state is never
// accepting: Compile requires the term to be longer than the distance,
// so the empty window cannot match.
func (d *DFA) Start() int { return 0 }

// Step consumes one rune from state q and reports the next state and
// whether a window within the edit distance just completed. Matching is
// a property of the destination state, so callers treating matches as
// absorbing (pkg/query does) may stop on the first hit without losing
// any match.
func (d *DFA) Step(q int, r rune) (int, bool) {
	next := int(d.trans[q*(len(d.alphabet)+1)+d.class(r)])
	return next, d.accept[next]
}

// class maps a rune to its characteristic class: 0 for runes absent from
// the term, i+1 for alphabet[i].
func (d *DFA) class(r rune) int {
	lo, hi := 0, len(d.alphabet)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.alphabet[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.alphabet) && d.alphabet[lo] == r {
		return lo + 1
	}
	return 0
}

func (d *DFA) buildAlphabet() {
	seen := make(map[rune]bool, len(d.term))
	for _, r := range d.term {
		if !seen[r] {
			seen[r] = true
			d.alphabet = append(d.alphabet, r)
		}
	}
	sort.Slice(d.alphabet, func(i, j int) bool { return d.alphabet[i] < d.alphabet[j] })
	d.masks = make([]uint64, len(d.alphabet))
	for i, a := range d.alphabet {
		for j, r := range d.term {
			if r == a {
				d.masks[i] |= 1 << uint(j)
			}
		}
	}
}

// buildStates discovers the reachable clamped DP columns breadth-first.
// A column holds, for j in 1..m, the minimum edits needed to turn
// term[:j] into a suffix of the input consumed so far, capped at dist+1
// (cell 0 is always 0 in the Sellers substring formulation and is not
// stored). BFS over a fixed class order with first-seen state numbering
// makes the construction — and therefore every state ID — deterministic.
func (d *DFA) buildStates() error {
	m := len(d.term)
	cap1 := uint8(d.dist + 1)

	startCol := make([]uint8, m)
	for j := 0; j < m; j++ {
		c := j + 1
		if c > int(cap1) {
			c = int(cap1)
		}
		startCol[j] = uint8(c)
	}

	ids := map[string]uint16{string(startCol): 0}
	cols := [][]uint8{startCol}
	d.accept = []bool{startCol[m-1] <= uint8(d.dist)}
	nClasses := len(d.alphabet) + 1
	d.trans = nil

	for s := 0; s < len(cols); s++ {
		col := cols[s]
		for c := 0; c < nClasses; c++ {
			var mask uint64
			if c > 0 {
				mask = d.masks[c-1]
			}
			next := stepColumn(col, mask, cap1)
			key := string(next)
			id, ok := ids[key]
			if !ok {
				if len(cols) >= maxStates {
					return fmt.Errorf("fuzzy: term %q at distance %d exceeds %d DFA states", string(d.term), d.dist, maxStates)
				}
				id = uint16(len(cols))
				ids[key] = id
				cols = append(cols, next)
				d.accept = append(d.accept, next[m-1] <= uint8(d.dist))
			}
			d.trans = append(d.trans, id)
		}
	}
	return nil
}

// stepColumn advances one clamped Sellers column by a rune whose
// characteristic bitvector is mask: nv[j] is the minimum of a diagonal
// move (substitution, free when the rune matches term[j]), a vertical
// move (delete from the term), and a horizontal move (insert into the
// term), with the implicit nv[0] = 0 of substring matching.
func stepColumn(col []uint8, mask uint64, cap1 uint8) []uint8 {
	next := make([]uint8, len(col))
	prevDiag := uint8(0) // col[j-1] with the implicit leading 0 cell
	prevNew := uint8(0)  // nv[j-1], likewise
	for j := range col {
		sub := prevDiag
		if mask&(1<<uint(j)) == 0 {
			sub++
		}
		v := sub
		if del := col[j] + 1; del < v {
			v = del
		}
		if ins := prevNew + 1; ins < v {
			v = ins
		}
		if v > cap1 {
			v = cap1
		}
		next[j] = v
		prevDiag = col[j]
		prevNew = v
	}
	return next
}

// Within is the reference oracle: it reports whether text contains a
// substring within edit distance dist of term, by the plain O(len(text)
// × len(term)) Sellers dynamic program. It exists to check the DFA (unit
// tests, the FuzzLevenshteinDFA target, and the planner's no-false-
// negative property tests run the two against each other), not to be
// fast. Unlike Compile, it accepts any term and distance: a term of
// dist or fewer runes trivially matches everything, including the
// empty text.
func Within(text, term string, dist int) bool {
	pat := []rune(term)
	if len(pat) <= dist {
		return true
	}
	col := make([]int, len(pat))
	for j := range col {
		col[j] = j + 1
	}
	for _, r := range text {
		prevDiag, prevNew := 0, 0
		for j := range col {
			sub := prevDiag
			if pat[j] != r {
				sub++
			}
			v := sub
			if del := col[j] + 1; del < v {
				v = del
			}
			if ins := prevNew + 1; ins < v {
				v = ins
			}
			prevDiag = col[j]
			col[j] = v
			prevNew = v
		}
		if col[len(col)-1] <= dist {
			return true
		}
	}
	return false
}
