package fuzzy

import (
	"math/rand"
	"reflect"
	"testing"
)

// dfaContains runs the DFA over text the way pkg/query does: step rune
// by rune, matching absorbs.
func dfaContains(d *DFA, text string) bool {
	q := d.Start()
	for _, r := range text {
		var hit bool
		q, hit = d.Step(q, r)
		if hit {
			return true
		}
	}
	return false
}

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		term string
		dist int
		ok   bool
	}{
		{"", 0, false},
		{"a", 0, true},
		{"a", 1, false},  // term no longer than distance
		{"ab", 2, false}, // likewise
		{"abc", 2, true},
		{"abc", 3, false}, // distance above MaxDistance
		{"abc", -1, false},
		{string(make([]rune, 65)), 0, false}, // over the rune limit
	}
	for _, c := range cases {
		_, err := Compile(c.term, c.dist)
		if (err == nil) != c.ok {
			t.Errorf("Compile(%q, %d): err=%v, want ok=%v", c.term, c.dist, err, c.ok)
		}
	}
}

func TestDFAExactAndEdits(t *testing.T) {
	cases := []struct {
		term string
		dist int
		text string
		want bool
	}{
		{"staccato", 0, "the staccato system", true},
		{"staccato", 0, "the staccat0 system", false},
		{"staccato", 1, "the staccat0 system", true},  // substitution
		{"staccato", 1, "the staccto system", true},   // deletion
		{"staccato", 1, "the staxccato system", true}, // insertion
		{"staccato", 1, "the stcact0 system", false},  // two edits
		{"staccato", 2, "the stacat0 system", true},   // deletion + substitution
		{"abc", 1, "", false},
		{"abc", 1, "zzzz", false},
		{"abc", 1, "ab", true},  // one deletion, window at end of text
		{"abc", 1, "xbc", true}, // substitution at window start
		{"héllo", 1, "ahexllo!", false},
		{"héllo", 1, "ahéxllo!", true}, // rune-level, not byte-level, edits
		{"héllo", 1, "hello", true},    // é→e is ONE rune substitution
		{"日本語", 1, "この日本語の", true},
		{"日本語", 1, "この日木語の", true},
		{"日本語", 1, "この月木語の", false},
	}
	for _, c := range cases {
		d, err := Compile(c.term, c.dist)
		if err != nil {
			t.Fatalf("Compile(%q, %d): %v", c.term, c.dist, err)
		}
		if got := dfaContains(d, c.text); got != c.want {
			t.Errorf("DFA(%q, %d) on %q: got %v, want %v", c.term, c.dist, c.text, got, c.want)
		}
		if got := Within(c.text, c.term, c.dist); got != c.want {
			t.Errorf("Within(%q, %q, %d): got %v, want %v", c.text, c.term, c.dist, got, c.want)
		}
	}
}

func TestStartStateNeverAccepts(t *testing.T) {
	for _, term := range []string{"a", "ab", "staccato", "日本語"} {
		for dist := 0; dist <= MaxDistance && dist < len([]rune(term)); dist++ {
			d, err := Compile(term, dist)
			if err != nil {
				t.Fatalf("Compile(%q, %d): %v", term, dist, err)
			}
			if d.accept[d.Start()] {
				t.Errorf("Compile(%q, %d): start state accepts the empty window", term, dist)
			}
		}
	}
}

// TestDeterministicConstruction compiles the same term twice and demands
// identical state numbering and transitions: the product DP downstream
// derives float accumulation order from these IDs, so any construction
// nondeterminism would break bit-identical search results.
func TestDeterministicConstruction(t *testing.T) {
	for _, term := range []string{"staccato", "abcabc", "日本語テスト", "mississippi"} {
		for dist := 0; dist <= MaxDistance; dist++ {
			a := MustCompile(term, dist)
			b := MustCompile(term, dist)
			if !reflect.DeepEqual(a.trans, b.trans) || !reflect.DeepEqual(a.accept, b.accept) ||
				!reflect.DeepEqual(a.alphabet, b.alphabet) {
				t.Fatalf("Compile(%q, %d) is not deterministic", term, dist)
			}
		}
	}
}

// TestDFAAgainstOracleRandom cross-checks the DFA against the reference
// DP over random terms and inputs drawn from a small alphabet (small so
// near-misses are common, which is where the two could disagree).
func TestDFAAgainstOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	letters := []rune("abcd")
	randWord := func(n int) string {
		out := make([]rune, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		return string(out)
	}
	for trial := 0; trial < 2000; trial++ {
		dist := rng.Intn(MaxDistance + 1)
		term := randWord(dist + 1 + rng.Intn(6))
		text := randWord(rng.Intn(20))
		d, err := Compile(term, dist)
		if err != nil {
			t.Fatalf("Compile(%q, %d): %v", term, dist, err)
		}
		got, want := dfaContains(d, text), Within(text, term, dist)
		if got != want {
			t.Fatalf("term=%q dist=%d text=%q: DFA=%v oracle=%v", term, dist, text, got, want)
		}
	}
}

func TestNumStatesBounded(t *testing.T) {
	// The worst realistic case — a long low-diversity term at max
	// distance — must stay far under the uint16 joint-state encoding.
	d := MustCompile("abababababababababababababababab", MaxDistance)
	if n := d.NumStates(); n >= maxStates {
		t.Fatalf("NumStates=%d, want < %d", n, maxStates)
	}
	if d.Term() != "abababababababababababababababab" || d.Distance() != MaxDistance {
		t.Fatalf("Term/Distance round-trip broken: %q %d", d.Term(), d.Distance())
	}
}

// FuzzLevenshteinDFA is the native fuzz target CI smokes: for any
// (term, dist, input), running the DFA over the input must agree exactly
// with the reference edit-distance oracle.
func FuzzLevenshteinDFA(f *testing.F) {
	f.Add("staccato", 1, "the staccat0 system")
	f.Add("abc", 0, "xabcx")
	f.Add("abc", 2, "")
	f.Add("日本語", 1, "この日木語の")
	f.Add("aaaa", 2, "aabaa")
	f.Add("ab", 1, "ba")
	f.Fuzz(func(t *testing.T, term string, dist int, text string) {
		d, err := Compile(term, dist)
		if err != nil {
			t.Skip() // invalid (term, dist) pairs are Compile's to reject
		}
		got, want := dfaContains(d, text), Within(text, term, dist)
		if got != want {
			t.Fatalf("term=%q dist=%d text=%q: DFA=%v oracle=%v", term, dist, text, got, want)
		}
	})
}
