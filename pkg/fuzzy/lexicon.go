package fuzzy

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// DefaultBoost is the Rescorer weight multiplier applied per fully
// in-dictionary token: a reading whose tokens are all lexicon words gets
// its probability scaled by DefaultBoost before renormalization, a
// reading with no dictionary words keeps weight 1, and mixed readings
// land in between.
const DefaultBoost = 4.0

// Lexicon is an immutable dictionary of known-good words — the OCR
// post-correction prior. Lookup is case-insensitive (entries and probes
// are lower-cased), matching how OCR dictionaries are used: the noise
// model corrupts characters, not case conventions.
type Lexicon struct {
	words map[string]struct{}
}

// NewLexicon builds a lexicon from words. Empty strings are ignored.
func NewLexicon(words []string) *Lexicon {
	l := &Lexicon{words: make(map[string]struct{}, len(words))}
	for _, w := range words {
		if w != "" {
			l.words[strings.ToLower(w)] = struct{}{}
		}
	}
	return l
}

// ReadLexicon builds a lexicon from a wordlist: one word per line,
// blank lines and lines starting with '#' ignored — the format of
// /usr/share/dict and of every hand-rolled wordlist.
func ReadLexicon(r io.Reader) (*Lexicon, error) {
	l := &Lexicon{words: make(map[string]struct{})}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		w := strings.TrimSpace(sc.Text())
		if w == "" || strings.HasPrefix(w, "#") {
			continue
		}
		l.words[strings.ToLower(w)] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fuzzy: reading lexicon: %w", err)
	}
	return l, nil
}

// Contains reports whether word (case-insensitively) is in the lexicon.
func (l *Lexicon) Contains(word string) bool {
	_, ok := l.words[strings.ToLower(word)]
	return ok
}

// Len returns the number of distinct words.
func (l *Lexicon) Len() int { return len(l.words) }

// Rescorer returns a deterministic document transform that re-weights
// each chunk's retained alternatives toward in-dictionary text: an
// alternative's probability is multiplied by boost^f, where f is the
// fraction of its word tokens found in the lexicon, and the chunk is
// then renormalized to sum to 1 and re-sorted by (descending
// probability, ascending text) — the PathSet invariants every consumer
// assumes. A boost ≤ 0 or exactly 1, or an empty lexicon, returns the
// identity transform.
//
// The transform never creates or destroys support: every alternative
// keeps a strictly positive probability, so a query's match set — and
// with it the planner's no-false-negative contract — is unchanged; only
// the probabilities (and therefore the ranking) move. The input document
// is never mutated; chunks are copied before re-weighting.
func (l *Lexicon) Rescorer(boost float64) func(*staccato.Doc) *staccato.Doc {
	if boost <= 0 || core.ProbEq(boost, 1) || l.Len() == 0 {
		return func(d *staccato.Doc) *staccato.Doc { return d }
	}
	return func(d *staccato.Doc) *staccato.Doc {
		if d == nil {
			return nil
		}
		out := &staccato.Doc{ID: d.ID, Params: d.Params, Chunks: make([]staccato.PathSet, len(d.Chunks))}
		for ci, ch := range d.Chunks {
			alts := make([]staccato.Alt, len(ch.Alts))
			var sum float64
			for ai, alt := range ch.Alts {
				w := alt.Prob * l.tokenBoost(alt.Text, boost)
				alts[ai] = staccato.Alt{Text: alt.Text, Prob: w}
				sum += w
			}
			if sum > 0 {
				for ai := range alts {
					alts[ai].Prob /= sum
				}
			}
			sort.Slice(alts, func(i, j int) bool {
				//lint:allow floateq sort comparators need exact comparison; an epsilon tie-break is not a strict weak order and would make the rescored ranking nondeterministic
				if alts[i].Prob != alts[j].Prob {
					return alts[i].Prob > alts[j].Prob
				}
				return alts[i].Text < alts[j].Text
			})
			out.Chunks[ci] = staccato.PathSet{Alts: alts, Retained: ch.Retained}
		}
		return out
	}
}

// tokenBoost computes boost^f for one alternative's text, where f is
// the in-lexicon fraction of its word tokens. Text with no word tokens
// (pure punctuation, chunk fragments of delimiters) is left at weight 1:
// the lexicon has no opinion about it.
func (l *Lexicon) tokenBoost(text string, boost float64) float64 {
	total, hits := 0, 0
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		total++
		if l.Contains(text[start:end]) {
			hits++
		}
		start = -1
	}
	for i, r := range text {
		if core.IsWordRune(r) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	if total == 0 || hits == 0 {
		return 1
	}
	// hits/total is in (0, 1], so the result is in (1, boost] for boost > 1.
	return math.Pow(boost, float64(hits)/float64(total))
}
