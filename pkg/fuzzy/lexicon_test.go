package fuzzy

import (
	"math"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

func TestLexiconBasics(t *testing.T) {
	l := NewLexicon([]string{"Staccato", "query", "", "query"})
	if l.Len() != 2 {
		t.Fatalf("Len=%d, want 2", l.Len())
	}
	for _, w := range []string{"staccato", "STACCATO", "query"} {
		if !l.Contains(w) {
			t.Errorf("Contains(%q)=false, want true", w)
		}
	}
	if l.Contains("staccat0") {
		t.Error("Contains(staccat0)=true, want false")
	}
}

func TestReadLexicon(t *testing.T) {
	src := "# comment\nstaccato\n\n  Query  \n#also a comment\nocr\n"
	l, err := ReadLexicon(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 {
		t.Fatalf("Len=%d, want 3", l.Len())
	}
	if !l.Contains("query") || !l.Contains("ocr") {
		t.Error("trimmed/lowercased entries missing")
	}
}

func rescoreDoc() *staccato.Doc {
	return &staccato.Doc{
		ID:     "d1",
		Params: staccato.Params{Chunks: 2, K: 2},
		Chunks: []staccato.PathSet{
			{Alts: []staccato.Alt{
				{Text: "staccat0 ", Prob: 0.6},
				{Text: "staccato ", Prob: 0.4},
			}, Retained: 0.9},
			{Alts: []staccato.Alt{
				{Text: "system", Prob: 0.7},
				{Text: "syst3m", Prob: 0.3},
			}, Retained: 0.8},
		},
	}
}

func TestRescorerReweightsTowardLexicon(t *testing.T) {
	l := NewLexicon([]string{"staccato", "system"})
	doc := rescoreDoc()
	out := l.Rescorer(DefaultBoost)(doc)

	// The input document is untouched.
	if doc.Chunks[0].Alts[0].Text != "staccat0 " || doc.Chunks[0].Alts[0].Prob != 0.6 {
		t.Fatal("Rescorer mutated its input document")
	}
	// In-dictionary "staccato " (0.4·4) now outweighs "staccat0 " (0.6·1).
	if got := out.Chunks[0].Alts[0].Text; got != "staccato " {
		t.Fatalf("top alternative after rescore: %q, want \"staccato \"", got)
	}
	for ci, ch := range out.Chunks {
		var sum float64
		for ai, alt := range ch.Alts {
			if alt.Prob <= 0 {
				t.Fatalf("chunk %d alt %d: probability %v lost support", ci, ai, alt.Prob)
			}
			sum += alt.Prob
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("chunk %d: probabilities sum to %v, want 1", ci, sum)
		}
		for ai := 1; ai < len(ch.Alts); ai++ {
			if ch.Alts[ai-1].Prob < ch.Alts[ai].Prob {
				t.Fatalf("chunk %d: alts not sorted by descending probability", ci)
			}
		}
		if !almostEq(ch.Retained, doc.Chunks[ci].Retained) {
			t.Fatalf("chunk %d: Retained changed", ci)
		}
	}
	// Deterministic: rescoring twice yields bit-identical output.
	out2 := l.Rescorer(DefaultBoost)(rescoreDoc())
	for ci := range out.Chunks {
		for ai := range out.Chunks[ci].Alts {
			a, b := out.Chunks[ci].Alts[ai], out2.Chunks[ci].Alts[ai]
			//lint:allow floateq bit-identity is exactly what this test asserts
			if a.Text != b.Text || a.Prob != b.Prob {
				t.Fatalf("rescore is nondeterministic at chunk %d alt %d", ci, ai)
			}
		}
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestRescorerIdentityCases(t *testing.T) {
	doc := rescoreDoc()
	for name, r := range map[string]func(*staccato.Doc) *staccato.Doc{
		"empty lexicon": NewLexicon(nil).Rescorer(DefaultBoost),
		"boost 1":       NewLexicon([]string{"system"}).Rescorer(1),
		"boost 0":       NewLexicon([]string{"system"}).Rescorer(0),
	} {
		if got := r(doc); got != doc {
			t.Errorf("%s: rescorer is not the identity transform", name)
		}
	}
	if got := NewLexicon([]string{"x"}).Rescorer(DefaultBoost)(nil); got != nil {
		t.Error("rescoring nil should return nil")
	}
}

func TestTokenBoostMixedTokens(t *testing.T) {
	l := NewLexicon([]string{"good"})
	// "good bad": one of two tokens in the lexicon → boost^(1/2).
	got := l.tokenBoost("good bad", 4)
	if !almostEq(got, 2) {
		t.Fatalf("tokenBoost(good bad)=%v, want 2", got)
	}
	// No word tokens → neutral weight.
	if got := l.tokenBoost(" .,! ", 4); !almostEq(got, 1) {
		t.Fatalf("tokenBoost(punctuation)=%v, want 1", got)
	}
	// No hits → neutral weight, not boost^0 computed the long way.
	if got := l.tokenBoost("bad worse", 4); !almostEq(got, 1) {
		t.Fatalf("tokenBoost(no hits)=%v, want 1", got)
	}
}
