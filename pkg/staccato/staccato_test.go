package staccato_test

import (
	"math"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/fst"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// enumerate brute-forces every accepting path of f, returning total
// probability per emitted string. Only usable on tiny transducers; it is
// the oracle the DP implementations are checked against.
func enumerate(f *fst.SFST) map[string]float64 {
	out := map[string]float64{}
	var walk func(s fst.StateID, prefix []rune, weight float64)
	walk = func(s fst.StateID, prefix []rune, weight float64) {
		if f.IsFinal(s) {
			out[string(prefix)] += core.ProbFromWeight(weight)
		}
		for _, a := range f.Arcs(s) {
			p := prefix
			if a.Label != fst.Epsilon {
				p = append(prefix[:len(prefix):len(prefix)], a.Label)
			}
			walk(a.To, p, weight+a.Weight)
		}
	}
	walk(f.Start(), nil, 0)
	return out
}

// branchFST builds a transducer with a two-arc branch so it has a state
// not every path passes through:
//
//	0 -a(1)-> 1 { -m(0.6)-> 2 | -r(0.4)-> mid -n(1)-> 2 } -z(1)-> 3
func branchFST(t *testing.T) *fst.SFST {
	t.Helper()
	b := fst.NewBuilder()
	s0, s1, s2, s3, mid := b.AddState(), b.AddState(), b.AddState(), b.AddState(), b.AddState()
	b.AddArc(s0, s1, 'a', core.WeightFromProb(1))
	b.AddArc(s1, s2, 'm', core.WeightFromProb(0.6))
	b.AddArc(s1, mid, 'r', core.WeightFromProb(0.4))
	b.AddArc(mid, s2, 'n', core.WeightFromProb(1))
	b.AddArc(s2, s3, 'z', core.WeightFromProb(1))
	b.SetStart(s0)
	b.SetFinal(s3)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

func TestCutStatesSkipBranchInterior(t *testing.T) {
	f := branchFST(t)
	cuts := staccato.CutStates(f)
	// 5 states, one of which (the branch interior) is not on every path.
	if len(cuts) != 4 {
		t.Errorf("CutStates = %v, want 4 cut states of 5", cuts)
	}
	if cuts[0] != f.Start() {
		t.Errorf("first cut = %d, want start", cuts[0])
	}
}

func TestChunkClampsToAvailableCuts(t *testing.T) {
	f := branchFST(t)
	// Interior boundaries exclude start and finals: 2 candidates, so at
	// most 3 chunks no matter how many are requested.
	segs, err := staccato.Chunk(f, 100)
	if err != nil {
		t.Fatalf("Chunk: %v", err)
	}
	if len(segs) != 3 {
		t.Fatalf("len(segs) = %d, want 3", len(segs))
	}
	if segs[0].From != f.Start() {
		t.Errorf("first segment starts at %d, want start", segs[0].From)
	}
	if !segs[len(segs)-1].ToEnd {
		t.Error("last segment must run to the final states")
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].To != segs[i+1].From {
			t.Errorf("segments %d/%d not contiguous: %d vs %d", i, i+1, segs[i].To, segs[i+1].From)
		}
	}
	if _, err := staccato.Chunk(f, 0); err == nil {
		t.Error("Chunk(f, 0) should fail")
	}
}

func TestFullSFSTDocMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		_, f := testgen.MustGenerate(testgen.Config{Length: 8, Seed: seed})
		doc, err := staccato.Build(f, "d", 1, staccato.AllPaths)
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		if doc.Params.Chunks != 1 {
			t.Fatalf("seed %d: chunks = %d, want 1", seed, doc.Params.Chunks)
		}
		want := enumerate(f)
		got := doc.Chunks[0]
		if len(got.Alts) != len(want) {
			t.Fatalf("seed %d: %d alts, brute force found %d strings", seed, len(got.Alts), len(want))
		}
		if math.Abs(got.Retained-1) > 1e-9 {
			t.Errorf("seed %d: retained = %v, want 1 (kept everything)", seed, got.Retained)
		}
		var totalMass float64
		for _, p := range want {
			totalMass += p
		}
		var sum float64
		for _, alt := range got.Alts {
			sum += alt.Prob
			if w := want[alt.Text] / totalMass; math.Abs(alt.Prob-w) > 1e-9 {
				t.Errorf("seed %d: P(%q) = %v, brute force %v", seed, alt.Text, alt.Prob, w)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("seed %d: alt probs sum to %v, want 1", seed, sum)
		}
	}
}

func TestChunkedFullSupportMatchesBruteForce(t *testing.T) {
	// With k = AllPaths, chunking must not lose any string: the product
	// of chunk path sets spans exactly the full support.
	_, f := testgen.MustGenerate(testgen.Config{Length: 8, Seed: 7})
	doc, err := staccato.Build(f, "d", 3, staccato.AllPaths)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	support := map[string]bool{}
	var cross func(i int, prefix string)
	cross = func(i int, prefix string) {
		if i == len(doc.Chunks) {
			support[prefix] = true
			return
		}
		for _, alt := range doc.Chunks[i].Alts {
			cross(i+1, prefix+alt.Text)
		}
	}
	cross(0, "")
	want := enumerate(f)
	if len(support) != len(want) {
		t.Fatalf("chunked support has %d strings, brute force %d", len(support), len(want))
	}
	for s := range want {
		if !support[s] {
			t.Errorf("string %q missing from chunked support", s)
		}
	}
}

func TestMAPDialEqualsViterbi(t *testing.T) {
	// chunks = MaxChunks, k = 1 is the MAP extreme of the dial: the doc
	// must spell exactly the Viterbi string, for any chunk count.
	for seed := int64(1); seed <= 8; seed++ {
		_, f := testgen.MustGenerate(testgen.Config{Length: 30, Seed: seed})
		want := f.Viterbi().Output
		for _, chunks := range []int{1, 2, 5, staccato.MaxChunks} {
			doc, err := staccato.Build(f, "d", chunks, 1)
			if err != nil {
				t.Fatalf("seed %d chunks %d: %v", seed, chunks, err)
			}
			if got := doc.MAP(); got != want {
				t.Errorf("seed %d chunks %d: MAP doc = %q, Viterbi = %q", seed, chunks, got, want)
			}
			for i, ch := range doc.Chunks {
				if len(ch.Alts) != 1 {
					t.Errorf("seed %d chunks %d: chunk %d has %d alts, want 1", seed, chunks, i, len(ch.Alts))
				}
			}
		}
	}
}

func TestTopKMergesDuplicateStrings(t *testing.T) {
	// Two paths emit "ab" (directly, and via epsilon) and one emits "b";
	// with k = AllPaths the duplicate strings must merge.
	b := fst.NewBuilder()
	s0, s1, s2 := b.AddState(), b.AddState(), b.AddState()
	b.AddArc(s0, s1, 'a', core.WeightFromProb(0.5))
	b.AddArc(s0, s1, fst.Epsilon, core.WeightFromProb(0.5))
	b.AddArc(s1, s2, 'b', core.WeightFromProb(0.7))
	b.AddArc(s1, s2, 'a', core.WeightFromProb(0.3))
	b.SetStart(s0)
	b.SetFinal(s2)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	doc, err := staccato.Build(f, "d", 1, staccato.AllPaths)
	if err != nil {
		t.Fatalf("Build doc: %v", err)
	}
	// Paths: "ab" 0.35, "b" 0.35, "aa" 0.15, "a" (eps+a) 0.15.
	got := map[string]float64{}
	for _, alt := range doc.Chunks[0].Alts {
		got[alt.Text] = alt.Prob
	}
	want := map[string]float64{"ab": 0.35, "b": 0.35, "aa": 0.15, "a": 0.15}
	if len(got) != len(want) {
		t.Fatalf("alts = %v, want %v", got, want)
	}
	for s, p := range want {
		if math.Abs(got[s]-p) > 1e-9 {
			t.Errorf("P(%q) = %v, want %v", s, got[s], p)
		}
	}
}

func TestRetainedMassGrowsWithK(t *testing.T) {
	_, f := testgen.MustGenerate(testgen.Config{Length: 20, Seed: 3})
	prev := 0.0
	for _, k := range []int{1, 2, 4, 8} {
		doc, err := staccato.Build(f, "d", 2, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		min := 1.0
		for _, ch := range doc.Chunks {
			if ch.Retained < min {
				min = ch.Retained
			}
		}
		if min < prev-1e-12 {
			t.Errorf("retained mass decreased when k grew to %d: %v < %v", k, min, prev)
		}
		prev = min
	}
}

func TestTopKLongChunkNoUnderflow(t *testing.T) {
	// A single 3000-character chunk has path weights far beyond exp
	// underflow (total weight > 745); log-domain normalization must still
	// produce finite, normalized probabilities.
	_, f := testgen.MustGenerate(testgen.Config{Length: 3000, Seed: 2})
	doc, err := staccato.Build(f, "d", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	ch := doc.Chunks[0]
	var sum float64
	for _, alt := range ch.Alts {
		if math.IsNaN(alt.Prob) || alt.Prob <= 0 {
			t.Fatalf("alt prob = %v for %d-char text, want finite positive", alt.Prob, len(alt.Text))
		}
		sum += alt.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("alt probs sum to %v, want 1", sum)
	}
	if math.IsNaN(ch.Retained) || ch.Retained < 0 || ch.Retained > 1 {
		t.Errorf("Retained = %v, want in [0, 1]", ch.Retained)
	}
	// The MAP extreme must also stay finite and fast at this length.
	mapDoc, err := staccato.Build(f, "d", staccato.MaxChunks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mapDoc.MAP(), f.Viterbi().Output; got != want {
		t.Error("MAP dial diverged from Viterbi on long document")
	}
}

func TestPathExplosionGuard(t *testing.T) {
	_, f := testgen.MustGenerate(testgen.Config{Length: 300, Seed: 1})
	_, err := staccato.Build(f, "d", 1, staccato.AllPaths)
	if err == nil {
		t.Fatal("expected ErrPathExplosion materializing a 300-char SFST exactly")
	}
}

// TestRecallDial is the property test for the paper's central claim:
// recall of ground-truth terms is monotone along the dial,
// MAP ≤ Staccato ≤ FullSFST. The Staccato probabilities come from an
// independent brute-force oracle over the doc's product distribution; the
// FullSFST side uses the exact transducer query, since materializing the
// full path set of a 40-character document is infeasible by design.
func TestRecallDial(t *testing.T) {
	cases, err := testgen.Corpus(10, testgen.Config{Length: 40, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	var nMAP, nStac, nFull, nProbes int
	for ci, c := range cases {
		mapStr := c.FST.Viterbi().Output
		doc, err := staccato.Build(c.FST, "d", 5, 3)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		probes := map[string]bool{}
		for i := 0; i+3 <= len(c.Truth); i += 2 {
			probes[c.Truth[i:i+3]] = true
		}
		for probe := range probes {
			nProbes++
			inMAP := strings.Contains(mapStr, probe)
			pStac := docContainsProb(t, doc, probe)
			fq, err := query.Substring(probe)
			if err != nil {
				t.Fatalf("case %d: compile %q: %v", ci, probe, err)
			}
			pFull, err := fq.EvalFST(c.FST)
			if err != nil {
				t.Fatalf("case %d: EvalFST: %v", ci, err)
			}
			if inMAP {
				nMAP++
				// Monotonicity, pointwise: anything MAP finds, the coarser
				// approximations must also find.
				if pStac == 0 {
					t.Errorf("case %d: %q in MAP but staccato prob 0", ci, probe)
				}
			}
			if pStac > 0 {
				nStac++
				if pFull == 0 {
					t.Errorf("case %d: %q found by staccato but not full SFST", ci, probe)
				}
			}
			if pFull > 0 {
				nFull++
			}
		}
	}
	if !(nMAP <= nStac && nStac <= nFull) {
		t.Errorf("recall not monotone: MAP %d, staccato %d, full %d (of %d probes)", nMAP, nStac, nFull, nProbes)
	}
	if nStac == nMAP {
		t.Errorf("staccato recall (%d) did not improve on MAP (%d) across %d probes — dial has no effect", nStac, nMAP, nProbes)
	}
	t.Logf("recall over %d probes: MAP %d, staccato %d, full %d", nProbes, nMAP, nStac, nFull)
}

// docContainsProb computes P(text contains probe) under the doc's product
// distribution by brute-force expansion — an independent oracle so this
// package's tests do not depend on pkg/query.
func docContainsProb(t *testing.T, doc *staccato.Doc, probe string) float64 {
	t.Helper()
	total := 0.0
	var cross func(i int, prefix string, p float64)
	cross = func(i int, prefix string, p float64) {
		if strings.Contains(prefix, probe) {
			total += p
			return
		}
		if i == len(doc.Chunks) {
			return
		}
		// Only the tail of the prefix can participate in a new match.
		tail := prefix
		if len(tail) > len(probe)-1 {
			tail = tail[len(tail)-(len(probe)-1):]
		}
		for _, alt := range doc.Chunks[i].Alts {
			cross(i+1, tail+alt.Text, p*alt.Prob)
		}
	}
	cross(0, "", 1)
	return total
}

func TestNumReadingsAndReadings(t *testing.T) {
	d := &staccato.Doc{
		ID: "r",
		Chunks: []staccato.PathSet{
			{Alts: []staccato.Alt{{Text: "a", Prob: 0.7}, {Text: "b", Prob: 0.3}}, Retained: 1},
			{Alts: []staccato.Alt{{Text: "x", Prob: 0.6}, {Text: "y", Prob: 0.4}}, Retained: 1},
		},
	}
	if n := d.NumReadings(); n != 4 {
		t.Fatalf("NumReadings = %v, want 4", n)
	}
	got := map[string]float64{}
	var sum float64
	d.Readings(func(text string, prob float64) bool {
		got[text] += prob
		sum += prob
		return true
	})
	want := map[string]float64{"ax": 0.42, "ay": 0.28, "bx": 0.18, "by": 0.12}
	for text, p := range want {
		if math.Abs(got[text]-p) > 1e-12 {
			t.Errorf("P(%q) = %v, want %v", text, got[text], p)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("readings sum to %v, want 1", sum)
	}
}

func TestReadingsEarlyStop(t *testing.T) {
	d := &staccato.Doc{
		ID: "r",
		Chunks: []staccato.PathSet{
			{Alts: []staccato.Alt{{Text: "a", Prob: 0.5}, {Text: "b", Prob: 0.5}}, Retained: 1},
			{Alts: []staccato.Alt{{Text: "x", Prob: 0.5}, {Text: "y", Prob: 0.5}}, Retained: 1},
		},
	}
	var n int
	d.Readings(func(string, float64) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("enumeration visited %d readings after stop, want 2", n)
	}
}

// TestReadingsAgreeWithBuild cross-checks enumeration on a generated doc:
// the reading set must carry the per-chunk product probabilities.
func TestReadingsAgreeWithBuild(t *testing.T) {
	_, f := testgen.MustGenerate(testgen.Config{Length: 10, Seed: 6})
	d, err := staccato.Build(f, "d", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	count := 0.0
	sum := 0.0
	d.Readings(func(_ string, prob float64) bool {
		count++
		sum += prob
		return true
	})
	if count != d.NumReadings() {
		t.Errorf("enumerated %v readings, NumReadings says %v", count, d.NumReadings())
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("readings sum to %v, want 1 (PathSet alts are normalized)", sum)
	}
}
