package staccato_test

import (
	"sort"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// enumerated pairs one reading with its probability and its position in
// Readings' index-order enumeration (the tie-break BestReadings promises).
type enumerated struct {
	text string
	prob float64
	ord  int
}

// bruteBest replays Doc.Readings and sorts it the way BestReadings
// promises to enumerate: probability descending, ties by index order.
func bruteBest(d *staccato.Doc) []enumerated {
	var all []enumerated
	d.Readings(func(text string, prob float64) bool {
		all = append(all, enumerated{text: text, prob: prob, ord: len(all)})
		return true
	})
	sort.SliceStable(all, func(i, j int) bool { return all[i].prob > all[j].prob })
	return all
}

// TestBestReadingsMatchesBruteForce checks the lazy enumeration against
// the exhaustive oracle on a battery of generated documents: same
// readings, same order, bit-identical probabilities.
func TestBestReadingsMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		_, f := testgen.MustGenerate(testgen.Config{Length: 18, Seed: seed})
		doc, err := staccato.Build(f, "d", 3, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := bruteBest(doc)
		var got []enumerated
		doc.BestReadings(func(text string, prob float64) bool {
			got = append(got, enumerated{text: text, prob: prob})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("seed %d: BestReadings emitted %d readings, Readings has %d", seed, len(got), len(want))
		}
		for i := range got {
			//lint:allow floateq BestReadings documents bit-identical probabilities with Readings (same multiplication order); an epsilon test would hide an order regression
			if got[i].text != want[i].text || got[i].prob != want[i].prob {
				t.Fatalf("seed %d: reading %d: got (%q, %v), want (%q, %v)",
					seed, i, got[i].text, got[i].prob, want[i].text, want[i].prob)
			}
		}
		// Early stop: asking for just the best reading must yield the MAP
		// string (per-chunk top alternatives), the k-best base case.
		var first string
		calls := 0
		doc.BestReadings(func(text string, _ float64) bool {
			first = text
			calls++
			return false
		})
		if calls != 1 || first != doc.MAP() {
			t.Fatalf("seed %d: first BestReadings reading %q (calls=%d), want MAP %q", seed, first, calls, doc.MAP())
		}
	}
}

// TestBestReadingsDegenerateDocs pins the edge cases: a chunkless doc has
// exactly the empty reading at probability 1, and a doc with an empty
// alternative list encodes no complete reading at all.
func TestBestReadingsDegenerateDocs(t *testing.T) {
	empty := &staccato.Doc{ID: "empty"}
	n := 0
	empty.BestReadings(func(text string, prob float64) bool {
		//lint:allow floateq the empty product is exactly 1 by definition, not a computed probability
		if text != "" || prob != 1 {
			t.Fatalf("empty doc reading = (%q, %v), want (\"\", 1)", text, prob)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("empty doc emitted %d readings, want 1", n)
	}

	hollow := &staccato.Doc{ID: "hollow", Chunks: []staccato.PathSet{{}}}
	hollow.BestReadings(func(string, float64) bool {
		t.Fatal("doc with an empty chunk must emit no readings")
		return false
	})
}
