package staccato

import (
	"fmt"

	"github.com/paper-repo/staccato-go/pkg/fst"
)

// Segment is one chunk's slice of the underlying transducer: all paths
// from the boundary state From up to the boundary state To (or, for the
// last segment, up to any final state when ToEnd is set). Boundaries are
// always cut states — states every accepting path passes through — so the
// concatenation of one path per segment is always a complete accepting
// path of F, and every accepting path decomposes uniquely this way.
type Segment struct {
	F     *fst.SFST
	From  fst.StateID
	To    fst.StateID
	ToEnd bool
}

// CutStates returns the states of f that every accepting path passes
// through, in ascending topological order. The start state is always
// included. These are the only valid chunk boundaries.
//
// Because Build normalizes states into topological order, a state s is on
// every path iff no arc "jumps over" it (no arc u→v with u < s < v) and no
// accepting path has already terminated before it (no final state < s).
// Both conditions reduce to interval marks over the state sequence, so the
// whole computation is one sweep over the arcs.
func CutStates(f *fst.SFST) []fst.StateID {
	n := f.NumStates()
	crossed := make([]int, n+1)
	mark := func(lo, hi int) { // states in [lo, hi) are not cut states
		if lo < hi {
			crossed[lo]++
			crossed[hi]--
		}
	}
	for s := 0; s < n; s++ {
		for _, a := range f.Arcs(fst.StateID(s)) {
			mark(s+1, int(a.To))
		}
		if f.IsFinal(fst.StateID(s)) {
			mark(s+1, n)
		}
	}
	var cuts []fst.StateID
	run := 0
	for s := 0; s < n; s++ {
		run += crossed[s]
		if run == 0 {
			cuts = append(cuts, fst.StateID(s))
		}
	}
	return cuts
}

// Chunk splits f into at most numChunks sequential segments with cut
// states as boundaries, spacing the boundaries evenly over the available
// cuts. The effective number of chunks is min(numChunks, available
// boundaries + 1): a transducer whose every path is one long mutually
// entangled region cannot be cut at all and yields a single segment.
func Chunk(f *fst.SFST, numChunks int) ([]Segment, error) {
	if numChunks < 1 {
		return nil, fmt.Errorf("staccato: Chunk: numChunks must be >= 1, got %d", numChunks)
	}
	// Interior boundary candidates: cut states other than the start, and
	// not final states (a final cut would make the trailing segment's path
	// set start with the empty path, double-counting terminated mass).
	var cand []fst.StateID
	for _, s := range CutStates(f) {
		if s != f.Start() && !f.IsFinal(s) {
			cand = append(cand, s)
		}
	}
	eff := numChunks
	if max := len(cand) + 1; eff > max {
		eff = max
	}

	bounds := make([]fst.StateID, 0, eff+1)
	bounds = append(bounds, f.Start())
	for i := 1; i < eff; i++ {
		bounds = append(bounds, cand[i*len(cand)/eff])
	}

	segs := make([]Segment, eff)
	for i := 0; i < eff; i++ {
		segs[i] = Segment{F: f, From: bounds[i]}
		if i == eff-1 {
			segs[i].To = fst.NoState
			segs[i].ToEnd = true
		} else {
			segs[i].To = bounds[i+1]
		}
	}
	return segs, nil
}
