package staccato_test

import (
	"fmt"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// BenchmarkTopK measures top-k path extraction across the dial: the cost
// of approximating a 1000-character transducer at several (chunks, k)
// settings. These are the numbers a future BENCH_*.json trajectory will
// track as the chunker and DP get optimized.
func BenchmarkTopK(b *testing.B) {
	_, f := testgen.MustGenerate(testgen.Config{Length: 1000, Seed: 1})
	for _, tc := range []struct{ chunks, k int }{
		{50, 1},
		{50, 4},
		{50, 16},
		{10, 4},
		{200, 4},
	} {
		b.Run(fmt.Sprintf("chunks=%d/k=%d", tc.chunks, tc.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := staccato.Build(f, "d", tc.chunks, tc.k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChunk isolates boundary selection (cut-state sweep) from path
// extraction.
func BenchmarkChunk(b *testing.B) {
	_, f := testgen.MustGenerate(testgen.Config{Length: 1000, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := staccato.Chunk(f, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuerySubstring measures the chunk-DP query over an
// approximated 1000-character document.
func BenchmarkQuerySubstring(b *testing.B) {
	truth, f := testgen.MustGenerate(testgen.Config{Length: 1000, Seed: 1})
	doc, err := staccato.Build(f, "d", 50, 8)
	if err != nil {
		b.Fatal(err)
	}
	term := truth[500:505]
	q, err := query.Substring(term)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Eval(doc)
	}
}
