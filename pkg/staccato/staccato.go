// Package staccato implements the paper's tunable approximation of an
// SFST. The transducer is split into sequential chunks at states every
// accepting path must pass through, and only the k most probable paths are
// kept per chunk. The result, a Doc, is a dial between the two extremes of
// OCR data management:
//
//   - chunks = as many as possible, k = 1 → the MAP string (what a
//     conventional pipeline stores): cheap, but recall is lost for every
//     term the OCR engine mis-ranked.
//   - chunks = 1, k = AllPaths → the full SFST distribution: exact, but
//     the path set explodes exponentially.
//
// Everything in between trades space and query cost for recall, exactly
// the Staccato dial of Kumar & Ré (VLDB 2011). Correlations between
// alternatives are kept inside a chunk and broken across chunk boundaries,
// so a Doc is a product distribution over per-chunk path sets — which is
// what pkg/query exploits to answer queries by dynamic programming.
package staccato

import (
	"fmt"
	"math"
	"sort"

	"github.com/paper-repo/staccato-go/pkg/fst"
)

// AllPaths requests that TopK keep every path in a chunk; combined with a
// single chunk it materializes the exact SFST distribution. Only feasible
// for small transducers — TopK returns ErrPathExplosion when enumeration
// exceeds its internal budget.
const AllPaths = math.MaxInt32

// MaxChunks requests as many chunks as the transducer allows (one per cut
// state); combined with k=1 the resulting Doc is exactly the MAP string.
const MaxChunks = math.MaxInt32

// Alt is one retained reading of a chunk with its probability, normalized
// over the chunk's retained paths. The JSON tags on Doc and its parts
// define the document wire shape of the staccatod ingest endpoint; the
// durable on-disk encoding is pkg/store's binary codec, not JSON.
type Alt struct {
	Text string  `json:"text"`
	Prob float64 `json:"prob"`
}

// PathSet is the retained top-k path set of one chunk. Alts are sorted by
// descending probability (ties broken by text) and their probabilities sum
// to 1. Retained records the fraction of the chunk's total probability
// mass the kept paths cover, a diagnostic for how lossy the approximation
// was at this dial setting.
type PathSet struct {
	Alts     []Alt   `json:"alts"`
	Retained float64 `json:"retained"`
}

// Params records the dial setting a Doc was built with. Chunks is the
// effective chunk count, which may be lower than requested when the
// transducer has fewer cut states.
type Params struct {
	Chunks int `json:"chunks"`
	K      int `json:"k"`
}

// Doc is a Staccato-approximated document: a sequence of independent
// chunks, each a distribution over a small set of strings. It is the unit
// of storage (pkg/store) and of query evaluation (pkg/query).
type Doc struct {
	ID     string    `json:"id"`
	Params Params    `json:"params"`
	Chunks []PathSet `json:"chunks"`
}

// MAP returns the most probable reading under the Doc's product
// distribution: the concatenation of each chunk's top alternative.
func (d *Doc) MAP() string {
	var out []byte
	for _, c := range d.Chunks {
		if len(c.Alts) > 0 {
			out = append(out, c.Alts[0].Text...)
		}
	}
	return string(out)
}

// NumReadings returns how many complete readings the document encodes —
// the product of the per-chunk alternative counts — as a float64, because
// the count grows exponentially with the chunk count.
func (d *Doc) NumReadings() float64 {
	n := 1.0
	for _, c := range d.Chunks {
		n *= float64(len(c.Alts))
	}
	return n
}

// Readings enumerates every complete reading of the document with its
// probability under the product distribution, in lexicographic chunk-major
// order (the first chunk's alternatives vary slowest). Enumeration is
// exponential in the chunk count — check NumReadings before calling this
// on anything but small documents. fn returning false stops the
// enumeration early.
func (d *Doc) Readings(fn func(text string, prob float64) bool) {
	var rec func(i int, prefix string, p float64) bool
	rec = func(i int, prefix string, p float64) bool {
		if i == len(d.Chunks) {
			return fn(prefix, p)
		}
		for _, alt := range d.Chunks[i].Alts {
			if !rec(i+1, prefix+alt.Text, p*alt.Prob) {
				return false
			}
		}
		return true
	}
	rec(0, "", 1)
}

// Build runs the full approximation pipeline: split f into at most
// numChunks chunks and keep the top k paths in each, returning the
// assembled Doc. It is the one-call form of Chunk followed by TopK.
func Build(f *fst.SFST, id string, numChunks, k int) (*Doc, error) {
	segs, err := Chunk(f, numChunks)
	if err != nil {
		return nil, err
	}
	doc := &Doc{
		ID:     id,
		Params: Params{Chunks: len(segs), K: k},
		Chunks: make([]PathSet, len(segs)),
	}
	for i, seg := range segs {
		ps, err := TopK(seg, k)
		if err != nil {
			return nil, fmt.Errorf("staccato: chunk %d: %w", i, err)
		}
		doc.Chunks[i] = ps
	}
	return doc, nil
}

// sortAlts orders alternatives by descending probability, breaking ties by
// text so output is deterministic.
func sortAlts(alts []Alt) {
	sort.Slice(alts, func(i, j int) bool {
		//lint:allow floateq sort comparators need exact comparison — an epsilon tie-break is not a strict weak order and would make alternative order nondeterministic
		if alts[i].Prob != alts[j].Prob {
			return alts[i].Prob > alts[j].Prob
		}
		return alts[i].Text < alts[j].Text
	})
}
