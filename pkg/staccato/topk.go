package staccato

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/pkg/fst"
)

// ErrPathExplosion is returned by TopK when path enumeration exceeds its
// internal budget — in practice only when k is AllPaths (or close to it)
// on a transducer too large to materialize exactly.
var ErrPathExplosion = errors.New("staccato: path enumeration budget exceeded (lower k or raise numChunks)")

// maxEntries bounds the total number of partial paths TopK will hold.
const maxEntries = 4 << 20

// pathEntry is one partial path in the k-best DP, represented as a
// backpointer chain so extension is O(1) instead of copying strings.
type pathEntry struct {
	weight  float64
	prev    fst.StateID // predecessor state, NoState at the segment root
	prevIdx int32       // index into the predecessor's finalized entry list
	label   rune
}

// TopK enumerates the k most probable paths through seg and returns them
// as a PathSet: paths emitting the same string are merged (their
// probabilities summed), and the merged alternatives are normalized to a
// distribution over the retained mass.
//
// The DP sweeps states in topological order keeping at most k best partial
// paths per state. Lists are finalized (sorted, truncated) when the sweep
// reaches their state, so backpointers into predecessors are stable. All
// per-state storage is indexed relative to seg.From, so the cost of a
// segment depends on its own size, not its position in the document, and
// normalization happens in the log domain so arbitrarily long chunks
// (weights far beyond exp underflow) still produce finite probabilities.
func TopK(seg Segment, k int) (PathSet, error) {
	if k < 1 {
		return PathSet{}, fmt.Errorf("staccato: TopK: k must be >= 1, got %d", k)
	}
	f := seg.F
	n := f.NumStates()
	last := int(seg.To)
	if seg.ToEnd {
		last = n - 1
	}
	base := int(seg.From)

	// entries[s-base] holds the partial paths arriving at state s.
	entries := make([][]pathEntry, last-base+1)
	entries[0] = []pathEntry{{weight: 0, prev: fst.NoState, prevIdx: -1}}
	total := 0

	// completed collects accepting terminal entries as (state, index)
	// pairs into finalized lists.
	type done struct {
		state fst.StateID
		idx   int32
	}
	var completed []done

	for s := base; s <= last; s++ {
		es := entries[s-base]
		if len(es) == 0 {
			continue
		}
		sort.Slice(es, func(i, j int) bool {
			//lint:allow floateq sort comparators need exact comparison — an epsilon tie-break is not a strict weak order and would make path selection nondeterministic
			if es[i].weight != es[j].weight {
				return es[i].weight < es[j].weight
			}
			if es[i].prev != es[j].prev {
				return es[i].prev < es[j].prev
			}
			if es[i].prevIdx != es[j].prevIdx {
				return es[i].prevIdx < es[j].prevIdx
			}
			return es[i].label < es[j].label
		})
		if len(es) > k {
			es = es[:k]
		}
		entries[s-base] = es

		if seg.ToEnd {
			if f.IsFinal(fst.StateID(s)) {
				for i := range es {
					completed = append(completed, done{fst.StateID(s), int32(i)})
				}
			}
		} else if s == last {
			for i := range es {
				completed = append(completed, done{fst.StateID(s), int32(i)})
			}
			break // interior boundary: do not extend past it
		}

		for _, a := range f.Arcs(fst.StateID(s)) {
			if int(a.To) > last {
				// Cannot happen for a cut-state boundary; guard anyway so a
				// hand-built Segment fails loudly instead of corrupting memory.
				return PathSet{}, fmt.Errorf("staccato: TopK: arc %d→%d escapes segment ending at %d", s, a.To, last)
			}
			for i, e := range es {
				entries[int(a.To)-base] = append(entries[int(a.To)-base], pathEntry{
					weight:  e.weight + a.Weight,
					prev:    fst.StateID(s),
					prevIdx: int32(i),
					label:   a.Label,
				})
			}
			total += len(es)
			if total > maxEntries {
				return PathSet{}, ErrPathExplosion
			}
		}
	}

	// Keep the k best completions overall.
	sort.Slice(completed, func(i, j int) bool {
		wi := entries[int(completed[i].state)-base][completed[i].idx].weight
		wj := entries[int(completed[j].state)-base][completed[j].idx].weight
		//lint:allow floateq sort comparators need exact comparison — an epsilon tie-break is not a strict weak order and would make the k-best cut nondeterministic
		if wi != wj {
			return wi < wj
		}
		if completed[i].state != completed[j].state {
			return completed[i].state < completed[j].state
		}
		return completed[i].idx < completed[j].idx
	})
	if len(completed) > k {
		completed = completed[:k]
	}
	if len(completed) == 0 {
		return PathSet{}, fmt.Errorf("staccato: TopK: segment from state %d has no accepting path", seg.From)
	}

	// Materialize strings and merge duplicates by summing probability.
	// Weights are shifted by the best completion's weight before leaving
	// the log domain: relative probabilities are exact and finite even
	// when absolute path probabilities underflow float64.
	minW := entries[int(completed[0].state)-base][completed[0].idx].weight
	merged := make(map[string]float64, len(completed))
	var retainedShifted float64
	for _, c := range completed {
		var rev []rune
		st, idx := c.state, c.idx
		for st != fst.NoState {
			e := entries[int(st)-base][idx]
			if e.prev != fst.NoState && e.label != fst.Epsilon {
				rev = append(rev, e.label)
			}
			st, idx = e.prev, e.prevIdx
		}
		p := math.Exp(-(entries[int(c.state)-base][c.idx].weight - minW))
		merged[core.StringFromReversed(rev)] += p
		retainedShifted += p
	}

	alts := make([]Alt, 0, len(merged))
	for text, p := range merged {
		alts = append(alts, Alt{Text: text, Prob: p / retainedShifted})
	}
	sortAlts(alts)

	// Retained fraction, also in the log domain: the retained paths have
	// total weight minW - ln(retainedShifted).
	retainedW := minW - math.Log(retainedShifted)
	totalW := segmentWeight(seg, last)
	ps := PathSet{Alts: alts, Retained: 1}
	if !math.IsInf(totalW, 1) {
		ps.Retained = math.Min(1, core.ProbFromWeight(retainedW-totalW))
	}
	return ps, nil
}

// segmentWeight returns the negative-log total probability mass of all
// paths through the segment — a forward sweep accumulating in the log
// domain so long segments don't underflow.
func segmentWeight(seg Segment, last int) float64 {
	f := seg.F
	base := int(seg.From)
	w := make([]float64, last-base+1)
	for i := 1; i < len(w); i++ {
		w[i] = math.Inf(1)
	}
	totalW := math.Inf(1)
	for s := base; s <= last; s++ {
		ws := w[s-base]
		if math.IsInf(ws, 1) {
			continue
		}
		if seg.ToEnd {
			if f.IsFinal(fst.StateID(s)) {
				totalW = core.LogAddWeights(totalW, ws)
			}
		} else if s == last {
			totalW = core.LogAddWeights(totalW, ws)
			break
		}
		for _, a := range f.Arcs(fst.StateID(s)) {
			if int(a.To) <= last {
				w[int(a.To)-base] = core.LogAddWeights(w[int(a.To)-base], ws+a.Weight)
			}
		}
	}
	return totalW
}
