package staccato

import "container/heap"

// BestReadings enumerates complete readings of the document in descending
// probability order, calling fn with each reading's text and probability
// until fn returns false or the readings are exhausted. Unlike Readings,
// which walks all k^chunks readings in index order, BestReadings is lazy:
// reaching the n-th best reading costs O(n·chunks·log n) regardless of how
// many readings the document encodes, which is what makes top-reading
// snippet extraction affordable on documents whose full reading set is
// astronomically large.
//
// The order is fully deterministic: readings with equal probability are
// emitted in ascending lexicographic order of their per-chunk alternative
// index vectors (chunk 0's index most significant). Probabilities are
// computed as the left-to-right product of the chosen alternatives'
// probabilities — the same accumulation order Readings uses — so the two
// enumerations report bit-identical probabilities for the same reading.
func (d *Doc) BestReadings(fn func(text string, prob float64) bool) {
	n := len(d.Chunks)
	if n == 0 {
		fn("", 1)
		return
	}
	for _, c := range d.Chunks {
		if len(c.Alts) == 0 {
			return // no complete reading exists
		}
	}

	// Classic lazy k-best over a product of sorted lists: each frontier
	// entry is an index vector; popping the best pushes its n successors
	// (one index bumped each), deduplicated so every vector enters the
	// heap once. Per-chunk alternative lists are sorted by descending
	// probability, so bumping an index never increases the product —
	// every successor is no better than its parent, and the heap order
	// is a valid enumeration order.
	h := &readingHeap{}
	seen := map[string]bool{}
	push := func(idx []int) {
		key := indexKey(idx)
		if seen[key] {
			return
		}
		seen[key] = true
		p := 1.0
		for i, ci := range idx {
			p *= d.Chunks[i].Alts[ci].Prob
		}
		heap.Push(h, readingCand{idx: idx, key: key, prob: p})
	}
	push(make([]int, n))
	for h.Len() > 0 {
		top := heap.Pop(h).(readingCand)
		var text []byte
		for i, ci := range top.idx {
			text = append(text, d.Chunks[i].Alts[ci].Text...)
		}
		if !fn(string(text), top.prob) {
			return
		}
		for i := range top.idx {
			if top.idx[i]+1 < len(d.Chunks[i].Alts) {
				next := append([]int(nil), top.idx...)
				next[i]++
				push(next)
			}
		}
	}
}

// readingCand is one frontier entry of the lazy enumeration.
type readingCand struct {
	idx  []int
	key  string // encoded idx, doubling as the tie-break
	prob float64
}

// indexKey encodes an index vector compactly; because every chunk's
// alternative count is far below 2^16, two bytes per chunk preserve the
// vector's lexicographic order in the string comparison.
func indexKey(idx []int) string {
	b := make([]byte, 2*len(idx))
	for i, v := range idx {
		b[2*i] = byte(v >> 8)
		b[2*i+1] = byte(v)
	}
	return string(b)
}

// readingHeap orders candidates by descending probability, ties broken by
// ascending index vector — a total, deterministic order.
type readingHeap []readingCand

func (h readingHeap) Len() int { return len(h) }
func (h readingHeap) Less(i, j int) bool {
	if h[i].prob > h[j].prob {
		return true
	}
	if h[i].prob < h[j].prob {
		return false
	}
	return h[i].key < h[j].key
}
func (h readingHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readingHeap) Push(x any)   { *h = append(*h, x.(readingCand)) }
func (h *readingHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
