package query_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

func benchDoc(b *testing.B) *staccato.Doc {
	b.Helper()
	_, f := testgen.MustGenerate(testgen.Config{Length: 200, Seed: 17})
	d, err := staccato.Build(f, "bench", 10, 4)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkTermRecompileEachCall is the regression baseline for the v1
// API shape: the term automaton is recompiled on every term×doc call.
// Compare with BenchmarkTermCompiledReuse — the gap is the compile-once
// win the Query type exists to lock in.
func BenchmarkTermRecompileEachCall(b *testing.B) {
	d := benchDoc(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := query.Substring("probabilistic")
		if err != nil {
			b.Fatal(err)
		}
		q.Eval(d)
	}
}

// BenchmarkTermCompiledReuse evaluates one compiled Query repeatedly —
// the pattern Engine uses across a whole corpus.
func BenchmarkTermCompiledReuse(b *testing.B) {
	d := benchDoc(b)
	q, err := query.Substring("probabilistic")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Eval(d)
	}
}

// BenchmarkBooleanEval times the product-automaton DP on a three-leaf
// boolean query.
func BenchmarkBooleanEval(b *testing.B) {
	d := benchDoc(b)
	mk := func(term string) *query.Query {
		q, err := query.Substring(term)
		if err != nil {
			b.Fatal(err)
		}
		return q
	}
	q := query.And(mk("the"), query.Or(mk("ing"), mk("ion")))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Eval(d)
	}
}

// BenchmarkEngineSearch measures corpus throughput at several worker pool
// sizes over a 200-doc store. scripts/bench_engine.sh turns the ns/op of
// these sub-benchmarks into BENCH_engine.json for the perf trajectory.
func BenchmarkEngineSearch(b *testing.B) {
	cases, err := testgen.Docs(200, testgen.Config{Length: 40, Seed: 3}, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	st := store.NewMemStore()
	ctx := context.Background()
	for _, c := range cases {
		if err := st.Put(ctx, c.Doc); err != nil {
			b.Fatal(err)
		}
	}
	q, err := query.Substring("the")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := query.NewEngine(st, query.EngineOptions{Workers: workers})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Search(ctx, q, query.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
