package query

import (
	"context"
	"errors"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"

	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// Result is one document's answer to a corpus query. The JSON form is
// the wire shape of the staccatod search endpoint.
type Result struct {
	DocID string  `json:"doc_id"`
	Prob  float64 `json:"prob"`
}

// ExecMode names the execution path a query run took.
type ExecMode string

const (
	// ExecScan is the unrestricted path: every live document is read,
	// decoded, and evaluated.
	ExecScan ExecMode = "scan"
	// ExecPrunedScan is ForEach's restricted path: the corpus ID list is
	// still walked in full (the every-doc streaming contract needs a
	// Result per document), but documents outside the candidate set are
	// reported at probability zero without being read or evaluated.
	ExecPrunedScan ExecMode = "pruned-scan"
	// ExecCandidateOnly is Search's restricted path: only the candidate
	// set's members are ever touched — no corpus ID listing, no
	// zero-result synthesis — so cost scales with the candidate count,
	// not the corpus size.
	ExecCandidateOnly ExecMode = "candidate-only"
	// ExecTopK is SearchTopK's path: candidates are processed
	// best-bound-first in growing rounds and the run stops as soon as the
	// running k-th result provably beats every remaining bound, so cost
	// scales with how discriminating the bounds are, not the candidate
	// count.
	ExecTopK ExecMode = "top-k"
)

// SearchStats reports how a query executed: how much of the corpus the
// planner pruned away versus how much the DP actually evaluated. The
// engine fills Mode and the Docs*/CandidatesFetched counters; callers
// that planned the query (such as staccatodb.DB) fill the planner
// fields — and, for candidate-only runs, the corpus-level DocsTotal and
// DocsPruned the engine never observes.
// The JSON form is the wire shape of the staccatod search and explain
// endpoints.
type SearchStats struct {
	// Mode is the execution path the run took.
	Mode ExecMode `json:"mode"`
	// DocsTotal is the number of live documents the run considered —
	// pruned and evaluated alike. In candidate-only mode the engine
	// never sees the corpus, so it leaves DocsTotal zero; staccatodb.DB
	// fills it from the store's live-document count.
	DocsTotal int `json:"docs_total"`
	// DocsScanned is the number of documents the DP actually evaluated.
	DocsScanned int `json:"docs_scanned"`
	// DocsPruned is the number of documents skipped via the candidate set
	// without being evaluated. Filled by the caller in candidate-only
	// mode, like DocsTotal.
	DocsPruned int `json:"docs_pruned"`
	// CandidatesFetched is the number of store fetches the candidate
	// modes attempted (zero in the scan modes) — deleted candidates that
	// came back not-found included, so it can exceed DocsScanned. It runs
	// below the candidate set's size only when top-k early termination
	// skipped the rest (see BoundsSkipped).
	CandidatesFetched int `json:"candidates_fetched"`
	// CandidatesDeleted is how many fetched candidates turned out deleted
	// between planning and fetching: CandidatesFetched - DocsScanned.
	CandidatesDeleted int `json:"candidates_deleted"`
	// BoundsSkipped is the number of candidates top-k execution never
	// fetched because their probability upper bound could not affect the
	// result — cut up front by MinProb or left behind by an early stop.
	// Zero in every other mode.
	BoundsSkipped int `json:"bounds_skipped"`
	// EarlyStopped reports that a top-k run proved the remaining bounds
	// beaten and stopped before exhausting the candidate set.
	EarlyStopped bool `json:"early_stopped"`
	// IndexUsed reports whether a candidate set restricted the run at all.
	IndexUsed bool `json:"index_used"`
	// PlanGrams is the number of distinct grams the planner consulted.
	PlanGrams int `json:"plan_grams"`
	// Plan is the rendered Plan the run executed under.
	Plan string `json:"plan"`
}

// EngineOptions configures a new Engine.
type EngineOptions struct {
	// Workers is how many documents are evaluated concurrently. Zero or
	// negative selects runtime.GOMAXPROCS(0).
	Workers int
}

// Engine executes compiled Queries against every document in a DocStore.
// Documents stream out of the store, fan out to a fixed worker pool for
// evaluation, and results are re-sequenced into scan order, so every run
// over an unchanged store is deterministic regardless of worker count.
// An Engine is stateless apart from its configuration and may be shared
// across goroutines.
//
// When a candidate set from a Plan restricts a run, documents outside the
// set are reported with probability zero without being evaluated — and,
// when the store implements store.IDLister, without even being read from
// the store. The no-false-negative planner contract makes the two
// execution paths byte-identical.
type Engine struct {
	st      store.DocStore
	workers int
}

// NewEngine returns an Engine reading from st. st must be non-nil.
func NewEngine(st store.DocStore, opts EngineOptions) *Engine {
	if st == nil {
		panic("query: NewEngine requires a non-nil DocStore")
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{st: st, workers: w}
}

// Workers returns the engine's worker pool size.
func (e *Engine) Workers() int { return e.workers }

// SearchOptions narrows, ranks, and instruments what Search returns.
type SearchOptions struct {
	// MinProb drops documents whose probability is below the threshold.
	// Documents with probability exactly zero are always dropped.
	MinProb float64
	// TopN keeps only the N best-ranked documents; zero keeps all.
	TopN int
	// Candidates, when non-nil, restricts evaluation to its members;
	// documents outside it are treated as guaranteed non-matches. Obtain
	// one from Plan.Candidates — a set that can drop true matches breaks
	// the engine's result guarantees.
	Candidates *CandidateSet
	// Stats, when non-nil, receives the run's execution counters.
	Stats *SearchStats
	// Rescore, when non-nil, transforms each document before evaluation —
	// the lexicon rescoring hook (fuzzy.Lexicon.Rescorer). The transform
	// must be deterministic and support-preserving: it may move
	// probability mass between a chunk's alternatives but must keep every
	// alternative's probability strictly positive, or candidate pruning
	// (computed from the untransformed index) could drop true matches. It
	// must not mutate its argument, which workers share with the store.
	Rescore func(*staccato.Doc) *staccato.Doc
}

// Search evaluates q against every stored document and returns the
// matches ranked by descending probability (ties broken by ascending
// DocID), filtered and truncated per opts. The ranking is fully
// deterministic: the same store contents and query produce identical
// results at any worker count, with or without a candidate set.
//
// Search walks the corpus even when opts.Candidates restricts it (the
// pruned-scan path: non-candidates cost a set lookup each, never a read
// or an evaluation). When the candidate set is already in hand and the
// corpus walk itself is the cost worth avoiding, use SearchCandidates —
// its output is byte-identical.
func (e *Engine) Search(ctx context.Context, q *Query, opts SearchOptions) ([]Result, error) {
	var out []Result
	err := e.forEachPruned(ctx, q, opts.Candidates, opts.Stats, opts.Rescore, func(r Result) error {
		if r.Prob <= 0 || r.Prob < opts.MinProb {
			return nil
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rankResults(out, opts.TopN), nil
}

// rankResults orders matches by descending probability (ties by
// ascending DocID) and applies the TopN cut — the one ranking both
// Search paths share, which is what makes their outputs byte-identical.
func rankResults(out []Result, topN int) []Result {
	slices.SortFunc(out, func(a, b Result) int {
		//lint:allow floateq sort comparators need exact comparison — an epsilon tie-break is not a strict weak order and would make the ranking itself nondeterministic
		if a.Prob != b.Prob {
			if a.Prob > b.Prob {
				return -1
			}
			return 1
		}
		return strings.Compare(a.DocID, b.DocID)
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// candidateBatchSize is how many candidate IDs one SearchCandidates
// worker job carries. Batching amortizes store locking and — through
// store.BatchGetter — lets a disk backend sort the batch by record
// offset into a near-sequential read; the size is small enough that a
// handful of candidates still spreads across the pool.
const candidateBatchSize = 64

// SearchCandidates evaluates q against exactly the members of cand and
// returns the matches ranked, filtered, and truncated exactly like
// Search. cand must come from a Plan (or otherwise honor the
// no-false-negative contract): because every document outside a plan's
// candidate set has match probability zero and Search discards zero
// results, SearchCandidates' output is byte-identical to Search's at
// any worker count — while its cost scales with cand.Len(), not the
// corpus size. No corpus ID list is materialized and no zero results
// are synthesized; candidates are fetched by point lookup, batched
// through store.BatchGetter when the store implements it. A candidate
// deleted between planning and fetching is skipped, matching what a
// scan started after the delete would return. opts.Candidates is
// ignored (cand is the candidate set); opts.Stats, when non-nil,
// receives Mode, DocsScanned, and CandidatesFetched — corpus-level
// counters (DocsTotal, DocsPruned) are the caller's to fill, since the
// whole point is that the engine never observes the corpus.
func (e *Engine) SearchCandidates(ctx context.Context, q *Query, cand *CandidateSet, opts SearchOptions) ([]Result, error) {
	if q == nil || q.expr == nil {
		return nil, errors.New("query: SearchCandidates requires a compiled, non-nil Query")
	}
	if cand == nil {
		return nil, errors.New("query: SearchCandidates requires a non-nil candidate set; use Search for unrestricted runs")
	}
	ids := cand.IDs() // ascending: deterministic batching, near-sequential disk reads
	out, fetched, evaluated, err := e.evalCandidates(ctx, q, ids, opts)
	if err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		opts.Stats.Mode = ExecCandidateOnly
		opts.Stats.DocsScanned = evaluated
		opts.Stats.CandidatesFetched = fetched
		opts.Stats.CandidatesDeleted = fetched - evaluated
	}
	return rankResults(out, opts.TopN), nil
}

// boundSlack widens stored bounds by one part in 10⁹ wherever the engine
// compares an evaluated probability against one. The bound DP and the
// evaluation DP sum the same products in different association orders, so
// an exact-in-real-arithmetic "P ≤ bound" can come out a few ulps the
// wrong way in floats; comparing against bound*boundSlack keeps every
// skip decision provably safe without giving up meaningful pruning.
const boundSlack = 1 + 1e-9

// SearchTopK evaluates q against the members of cand best-bound-first and
// stops as soon as the running opts.TopN-th probability strictly beats
// every remaining candidate's (slack-widened) upper bound — at which
// point no remaining candidate can enter the top N or win a tie (ties
// break toward ascending DocID, and a tie would require probability equal
// to the k-th, which the strict inequality excludes). Results are
// byte-identical to Search and SearchCandidates with the same options, at
// any worker count: candidates are processed in rounds of fixed,
// worker-independent sizes (candidateBatchSize, doubling each round), so
// the stats are deterministic too.
//
// cand must honor the no-false-negative contract AND its bounds must be
// admissible (never below the true match probability of stored
// documents); both come free from Plan.Candidates over a
// BoundedPostingSource. A set without bound information still returns
// correct results — every bound reads as 1 — it just never stops early.
//
// opts.TopN must be positive; opts.Rescore must be nil, because bounds
// describe the stored documents and rescoring moves probability mass they
// do not account for (callers fall back to SearchCandidates). Candidates
// whose widened bound falls below opts.MinProb are skipped without a
// fetch, like the early-stopped tail; both are counted in
// Stats.BoundsSkipped.
func (e *Engine) SearchTopK(ctx context.Context, q *Query, cand *CandidateSet, opts SearchOptions) ([]Result, error) {
	if q == nil || q.expr == nil {
		return nil, errors.New("query: SearchTopK requires a compiled, non-nil Query")
	}
	if cand == nil {
		return nil, errors.New("query: SearchTopK requires a non-nil candidate set; use Search for unrestricted runs")
	}
	if opts.TopN <= 0 {
		return nil, errors.New("query: SearchTopK requires TopN > 0; use SearchCandidates to rank everything")
	}
	if opts.Rescore != nil {
		return nil, errors.New("query: SearchTopK cannot rescore: index bounds do not cover rescored probabilities; use SearchCandidates")
	}
	ranked := cand.Ranked()
	// Candidates whose bound already sits below MinProb cannot produce a
	// reportable result; ranked is bound-descending, so they form a tail.
	usable := len(ranked)
	skipped := 0
	if opts.MinProb > 0 {
		usable = sort.Search(len(ranked), func(i int) bool {
			return ranked[i].Bound*boundSlack < opts.MinProb
		})
		skipped = len(ranked) - usable
	}
	var (
		out                []Result
		fetched, evaluated int
		earlyStopped       bool
	)
	next := 0
	roundSize := candidateBatchSize
	for next < usable {
		end := next + roundSize
		if end > usable {
			end = usable
		}
		ids := make([]string, 0, end-next)
		for _, c := range ranked[next:end] {
			ids = append(ids, c.ID)
		}
		sort.Strings(ids) // near-sequential reads; ranking is fetch-order-independent
		res, f, ev, err := e.evalCandidates(ctx, q, ids, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
		fetched += f
		evaluated += ev
		next = end
		roundSize *= 2
		// Keeping only the running top N between rounds is lossless: the
		// ranking is a total order, so the global top N is the top N of the
		// per-round top-N union.
		out = rankResults(out, opts.TopN)
		if next < usable && len(out) == opts.TopN && out[opts.TopN-1].Prob > ranked[next].Bound*boundSlack {
			earlyStopped = true
			skipped += usable - next
			break
		}
	}
	if opts.Stats != nil {
		opts.Stats.Mode = ExecTopK
		opts.Stats.DocsScanned = evaluated
		opts.Stats.CandidatesFetched = fetched
		opts.Stats.CandidatesDeleted = fetched - evaluated
		opts.Stats.BoundsSkipped = skipped
		opts.Stats.EarlyStopped = earlyStopped
	}
	return rankResults(out, opts.TopN), nil
}

// evalCandidates fetches and evaluates exactly the documents named by
// ids, fanning candidateBatchSize batches across the worker pool, and
// returns the unranked matches that survive the MinProb filter along
// with the fetch-attempt and evaluation counts. A nil slot from the
// store (deleted between planning and fetching) counts as fetched but
// not evaluated.
func (e *Engine) evalCandidates(ctx context.Context, q *Query, ids []string, opts SearchOptions) (out []Result, fetched, evaluated int, err error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	getter, batched := e.st.(store.BatchGetter)
	var mu sync.Mutex
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	workers := e.workers
	if n := (len(ids) + candidateBatchSize - 1) / candidateBatchSize; workers > n {
		workers = n // never park workers that could have no batch to take
	}
	batches := make(chan []string)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []Result
			localFetched, localEval := 0, 0
			for batch := range batches {
				docs, err := e.fetchCandidates(ctx, getter, batched, batch)
				if err != nil {
					fail(err)
					return
				}
				localFetched += len(docs)
				for _, doc := range docs {
					if ctx.Err() != nil {
						return // bound cancellation latency to one evaluation
					}
					if doc == nil {
						continue // deleted between planning and fetching
					}
					localEval++
					if opts.Rescore != nil {
						doc = opts.Rescore(doc)
					}
					p := q.Eval(doc)
					if p <= 0 || p < opts.MinProb {
						continue
					}
					local = append(local, Result{DocID: doc.ID, Prob: p})
				}
			}
			mu.Lock()
			out = append(out, local...)
			fetched += localFetched
			evaluated += localEval
			mu.Unlock()
		}()
	}
feed:
	for start := 0; start < len(ids); start += candidateBatchSize {
		end := start + candidateBatchSize
		if end > len(ids) {
			end = len(ids)
		}
		select {
		case batches <- ids[start:end]:
		case <-ctx.Done():
			break feed
		}
	}
	close(batches)
	wg.Wait()
	if firstErr != nil {
		return nil, 0, 0, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, err
	}
	return out, fetched, evaluated, nil
}

// fetchCandidates reads one batch of candidate documents, through the
// store's BatchGetter when it has one and by per-ID Get otherwise. The
// returned slice is aligned with ids; missing documents are nil.
func (e *Engine) fetchCandidates(ctx context.Context, getter store.BatchGetter, batched bool, ids []string) ([]*staccato.Doc, error) {
	if batched {
		return getter.GetBatch(ctx, ids)
	}
	out := make([]*staccato.Doc, len(ids))
	for i, id := range ids {
		doc, err := e.st.Get(ctx, id)
		switch {
		case errors.Is(err, store.ErrNotFound):
			// skip: the candidate vanished between planning and fetching
		case err != nil:
			return nil, err
		default:
			out[i] = doc
		}
	}
	return out, nil
}

// ForEach evaluates q against every stored document and streams one
// Result per document — unfiltered, probability zero included — to fn in
// ascending DocID (scan) order. fn runs on the caller's goroutine.
// Returning store.ErrStopScan from fn ends the stream early without
// error; any other error cancels in-flight work and is returned.
// Cancelling ctx aborts the stream with ctx's error: once cancellation
// is observed, fn is not called again.
func (e *Engine) ForEach(ctx context.Context, q *Query, fn func(Result) error) error {
	return e.ForEachPruned(ctx, q, nil, nil, fn)
}

// ForEachPruned is ForEach restricted by a candidate set: documents
// outside cand stream out with probability zero without being evaluated.
// A nil cand evaluates everything, exactly like ForEach. stats, when
// non-nil, receives the run's counters before the call returns. cand is
// a snapshot: a document added to the store after cand was computed but
// before this run lists it may stream out at probability zero even if
// it matches — callers needing a write to be visible must compute the
// candidate set after the write completes (Search's ranked output is
// unaffected: it drops zero-probability results, so it matches an
// execution ordered before such a write).
func (e *Engine) ForEachPruned(ctx context.Context, q *Query, cand *CandidateSet, stats *SearchStats, fn func(Result) error) error {
	return e.forEachPruned(ctx, q, cand, stats, nil, fn)
}

// forEachPruned is ForEachPruned plus the rescore hook Search threads
// through from SearchOptions.Rescore; a nil rescore evaluates documents
// as stored.
func (e *Engine) forEachPruned(ctx context.Context, q *Query, cand *CandidateSet, stats *SearchStats, rescore func(*staccato.Doc) *staccato.Doc, fn func(Result) error) error {
	if q == nil || q.expr == nil {
		return errors.New("query: ForEach requires a compiled, non-nil Query")
	}
	eval := func(d *staccato.Doc) float64 {
		if rescore != nil {
			d = rescore(d)
		}
		return q.Eval(d)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// job is one document's unit of work. Exactly one of doc and id is
	// set: the Scan feeder carries decoded documents, the IDLister feeder
	// carries bare IDs and lets the worker read only unpruned documents.
	type job struct {
		seq  int
		doc  *staccato.Doc
		id   string
		skip bool // pruned: report zero without evaluating
	}
	type seqResult struct {
		seq       int
		res       Result
		evaluated bool
		dropped   bool // document vanished between listing and read
	}
	jobs := make(chan job, e.workers)
	results := make(chan seqResult, e.workers)

	// window bounds how many documents may be in flight — scanned but not
	// yet delivered to fn. Without it, one slow document would let the
	// feeder run the whole corpus ahead and park O(corpus) results in the
	// collector's re-sequencing buffer. The feeder acquires a token per
	// document; the collector releases it on delivery.
	window := make(chan struct{}, 2*e.workers+2)

	admit := func(j job) error {
		select {
		case window <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		select {
		case jobs <- j:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// The feeder pulls work out of the store in ID order, stamping each
	// document with its sequence number so order can be restored after the
	// pool. With a candidate set and an ID-listing store, pruned documents
	// never enter the pipeline at all: the ID list is snapshotted up
	// front, only candidates become worker jobs, and the collector
	// synthesizes the zero results for the gaps — the planner's speedup
	// comes from skipping the pruned documents' read, decode, evaluation,
	// AND per-document scheduling.
	var prunedIDs []string // seq -> ID; non-nil only on the listed path
	if cand != nil {
		if lister, ok := e.st.(store.IDLister); ok {
			ids, err := lister.ListDocIDs(ctx)
			if err != nil {
				return err
			}
			prunedIDs = ids
		}
	}
	var feedWG sync.WaitGroup
	var feedErr error
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		defer close(jobs)
		if prunedIDs != nil {
			for seq, id := range prunedIDs {
				if !cand.Has(id) {
					continue // the collector emits the zero result
				}
				if err := admit(job{seq: seq, id: id}); err != nil {
					feedErr = err
					return
				}
			}
			return
		}
		seq := 0
		feedErr = e.st.Scan(ctx, func(d *staccato.Doc) error {
			j := job{seq: seq, doc: d, skip: !cand.Has(d.ID)}
			if err := admit(j); err != nil {
				return err
			}
			seq++
			return nil
		})
	}()

	// Workers: evaluate the shared compiled query, one document at a time.
	// The first worker failure cancels the run and is reported once.
	var workerErr error
	var workerOnce sync.Once
	fail := func(err error) {
		workerOnce.Do(func() {
			workerErr = err
			cancel()
		})
	}
	var poolWG sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		poolWG.Add(1)
		go func() {
			defer poolWG.Done()
			for j := range jobs {
				r := seqResult{seq: j.seq}
				switch {
				case j.skip:
					id := j.id
					if j.doc != nil {
						id = j.doc.ID
					}
					r.res = Result{DocID: id}
				case j.doc != nil:
					r.res = Result{DocID: j.doc.ID, Prob: eval(j.doc)}
					r.evaluated = true
				default:
					doc, err := e.st.Get(ctx, j.id)
					switch {
					case errors.Is(err, store.ErrNotFound):
						r.res = Result{DocID: j.id}
						r.dropped = true
					case err != nil:
						fail(err)
						return
					default:
						r.res = Result{DocID: doc.ID, Prob: eval(doc)}
						r.evaluated = true
					}
				}
				select {
				case results <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		feedWG.Wait()
		poolWG.Wait()
		close(results)
	}()

	// Collector: re-sequence out-of-order completions and deliver them to
	// fn in scan order, synthesizing the zero results for sequence numbers
	// the feeder pruned away on the listed path. The window cap bounds
	// `pending` to the in-flight limit regardless of corpus size or
	// per-document latency skew.
	var runStats SearchStats
	pending := make(map[int]seqResult, e.workers)
	nextSeq := 0
	var fnErr error
	advance := func() {
		for fnErr == nil && ctx.Err() == nil {
			if prunedIDs != nil && nextSeq < len(prunedIDs) && !cand.Has(prunedIDs[nextSeq]) {
				id := prunedIDs[nextSeq]
				nextSeq++
				runStats.DocsTotal++
				runStats.DocsPruned++
				if err := fn(Result{DocID: id}); err != nil {
					fnErr = err
					cancel()
					return
				}
				continue
			}
			res, ok := pending[nextSeq]
			if !ok {
				return
			}
			delete(pending, nextSeq)
			nextSeq++
			<-window // delivered: let the feeder admit another document
			if res.dropped {
				continue
			}
			runStats.DocsTotal++
			if res.evaluated {
				runStats.DocsScanned++
			} else {
				runStats.DocsPruned++
			}
			if err := fn(res.res); err != nil {
				fnErr = err
				cancel()
				return
			}
		}
	}
	advance() // a corpus whose head (or whole) is pruned yields no results
	for r := range results {
		if fnErr != nil || ctx.Err() != nil {
			continue // draining after failure/stop/cancellation
		}
		pending[r.seq] = r
		advance()
	}
	feedWG.Wait() // happens-before for feedErr
	if stats != nil {
		stats.Mode = ExecScan
		if cand != nil {
			stats.Mode = ExecPrunedScan
		}
		stats.DocsTotal = runStats.DocsTotal
		stats.DocsScanned = runStats.DocsScanned
		stats.DocsPruned = runStats.DocsPruned
	}

	if fnErr != nil {
		if errors.Is(fnErr, store.ErrStopScan) {
			return nil
		}
		return fnErr
	}
	if workerErr != nil {
		return workerErr
	}
	if feedErr != nil && !errors.Is(feedErr, context.Canceled) {
		return feedErr
	}
	// The scan may have finished before an external cancellation was
	// observed; the deferred cancel has not run yet, so a non-nil error
	// here can only come from the caller's context — or from the
	// worker-failure cancel already reported above.
	if err := ctx.Err(); err != nil {
		return err
	}
	return feedErr
}
