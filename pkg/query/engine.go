package query

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"

	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// Result is one document's answer to a corpus query.
type Result struct {
	DocID string
	Prob  float64
}

// EngineOptions configures a new Engine.
type EngineOptions struct {
	// Workers is how many documents are evaluated concurrently. Zero or
	// negative selects runtime.GOMAXPROCS(0).
	Workers int
}

// Engine executes compiled Queries against every document in a DocStore.
// Documents stream out of DocStore.Scan, fan out to a fixed worker pool
// for evaluation, and results are re-sequenced into scan order, so every
// run over an unchanged store is deterministic regardless of worker count.
// An Engine is stateless apart from its configuration and may be shared
// across goroutines.
type Engine struct {
	st      store.DocStore
	workers int
}

// NewEngine returns an Engine reading from st. st must be non-nil.
func NewEngine(st store.DocStore, opts EngineOptions) *Engine {
	if st == nil {
		panic("query: NewEngine requires a non-nil DocStore")
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{st: st, workers: w}
}

// Workers returns the engine's worker pool size.
func (e *Engine) Workers() int { return e.workers }

// SearchOptions narrows and ranks what Search returns.
type SearchOptions struct {
	// MinProb drops documents whose probability is below the threshold.
	// Documents with probability exactly zero are always dropped.
	MinProb float64
	// TopN keeps only the N best-ranked documents; zero keeps all.
	TopN int
}

// Search evaluates q against every stored document and returns the
// matches ranked by descending probability (ties broken by ascending
// DocID), filtered and truncated per opts. The ranking is fully
// deterministic: the same store contents and query produce identical
// results at any worker count.
func (e *Engine) Search(ctx context.Context, q *Query, opts SearchOptions) ([]Result, error) {
	var out []Result
	err := e.ForEach(ctx, q, func(r Result) error {
		if r.Prob <= 0 || r.Prob < opts.MinProb {
			return nil
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].DocID < out[j].DocID
	})
	if opts.TopN > 0 && len(out) > opts.TopN {
		out = out[:opts.TopN]
	}
	return out, nil
}

// ForEach evaluates q against every stored document and streams one
// Result per document — unfiltered, probability zero included — to fn in
// ascending DocID (scan) order. fn runs on the caller's goroutine.
// Returning store.ErrStopScan from fn ends the stream early without
// error; any other error cancels in-flight work and is returned.
// Cancelling ctx aborts the stream with ctx's error: once cancellation
// is observed, fn is not called again.
func (e *Engine) ForEach(ctx context.Context, q *Query, fn func(Result) error) error {
	if q == nil || q.expr == nil {
		return errors.New("query: ForEach requires a compiled, non-nil Query")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		seq int
		doc *staccato.Doc
	}
	type seqResult struct {
		seq int
		res Result
	}
	jobs := make(chan job, e.workers)
	results := make(chan seqResult, e.workers)

	// window bounds how many documents may be in flight — scanned but not
	// yet delivered to fn. Without it, one slow document would let the
	// scanner run the whole corpus ahead and park O(corpus) results in the
	// collector's re-sequencing buffer. The scanner acquires a token per
	// document; the collector releases it on delivery.
	window := make(chan struct{}, 2*e.workers+2)

	// Scanner: pull documents out of the store in ID order, stamping each
	// with its sequence number so order can be restored after the pool.
	var scanWG sync.WaitGroup
	var scanErr error
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		defer close(jobs)
		seq := 0
		scanErr = e.st.Scan(ctx, func(d *staccato.Doc) error {
			select {
			case window <- struct{}{}:
			case <-ctx.Done():
				return ctx.Err()
			}
			select {
			case jobs <- job{seq: seq, doc: d}:
				seq++
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()

	// Workers: evaluate the shared compiled query, one document at a time.
	var poolWG sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		poolWG.Add(1)
		go func() {
			defer poolWG.Done()
			for j := range jobs {
				r := seqResult{seq: j.seq, res: Result{DocID: j.doc.ID, Prob: q.Eval(j.doc)}}
				select {
				case results <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		scanWG.Wait()
		poolWG.Wait()
		close(results)
	}()

	// Collector: re-sequence out-of-order completions and deliver them to
	// fn in scan order. The window cap bounds `pending` to the in-flight
	// limit regardless of corpus size or per-document latency skew.
	pending := make(map[int]Result, e.workers)
	nextSeq := 0
	var fnErr error
	for r := range results {
		if fnErr != nil || ctx.Err() != nil {
			continue // draining after failure/stop/cancellation
		}
		pending[r.seq] = r.res
		for {
			res, ok := pending[nextSeq]
			if !ok {
				break
			}
			delete(pending, nextSeq)
			nextSeq++
			<-window // delivered: let the scanner admit another document
			if err := fn(res); err != nil {
				fnErr = err
				cancel()
				break
			}
		}
	}
	scanWG.Wait() // happens-before for scanErr

	if fnErr != nil {
		if errors.Is(fnErr, store.ErrStopScan) {
			return nil
		}
		return fnErr
	}
	if scanErr != nil {
		return scanErr
	}
	// The scan may have finished before an external cancellation was
	// observed; the deferred cancel has not run yet, so a non-nil error
	// here can only come from the caller's context.
	return ctx.Err()
}
