package query

import (
	"sort"

	"github.com/paper-repo/staccato-go/pkg/fst"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Match is one query result: the probability that the document contains
// the term under the Doc's retained distribution.
type Match struct {
	Term string
	Prob float64
}

// Eval evaluates each term against the document and returns matches sorted
// by descending probability (ties broken by term).
//
// Deprecated: compile each term once with Term (or Substring/Keyword) and
// reuse the Query across documents; recompiling per call is what this
// wrapper costs you.
func Eval(d *staccato.Doc, terms []string, mode Mode) ([]Match, error) {
	out := make([]Match, 0, len(terms))
	for _, t := range terms {
		q, err := newTerm(t, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, Match{Term: t, Prob: q.Eval(d)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Term < out[j].Term
	})
	return out, nil
}

// SubstringProb returns the probability that the document text contains
// term as a substring.
//
// Deprecated: use Substring once and (*Query).Eval per document.
func SubstringProb(d *staccato.Doc, term string) (float64, error) {
	q, err := Substring(term)
	if err != nil {
		return 0, err
	}
	return q.Eval(d), nil
}

// KeywordProb returns the probability that the document text contains term
// as a whole token.
//
// Deprecated: use Keyword once and (*Query).Eval per document.
func KeywordProb(d *staccato.Doc, term string) (float64, error) {
	q, err := Keyword(term)
	if err != nil {
		return 0, err
	}
	return q.Eval(d), nil
}

// FSTSubstringProb computes the exact probability that the string emitted
// by the transducer contains term.
//
// Deprecated: use Substring once and (*Query).EvalFST, which also supports
// keyword mode and boolean combinations.
func FSTSubstringProb(f *fst.SFST, term string) (float64, error) {
	q, err := Substring(term)
	if err != nil {
		return 0, err
	}
	return q.EvalFST(f)
}
