package query_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"unicode/utf8"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// oracleReading is one entry of the brute-force snippet oracle.
type oracleReading struct {
	text string
	prob float64
}

// matchOracle decides the query against one concrete string with an
// implementation independent of pkg/query's span finder: plain
// strings.Contains for substring leaves and a FieldsFunc token split for
// keyword leaves, composed through a tiny recursive evaluation of the
// rendered query. It only handles the shapes randomSnippetQueries builds.
type matchOracle struct {
	mode string // "substring" or "keyword"
}

func (o matchOracle) leafMatches(text, term string) bool {
	if o.mode == "keyword" {
		for _, tok := range strings.FieldsFunc(text, func(r rune) bool { return !core.IsWordRune(r) }) {
			if tok == term {
				return true
			}
		}
		return false
	}
	return strings.Contains(text, term)
}

// snippetDocs builds a deterministic battery of small documents whose
// full reading sets are enumerable.
func snippetDocs(t *testing.T, n int, seed int64) []*staccato.Doc {
	t.Helper()
	cases, err := testgen.Docs(n, testgen.Config{Length: 20, Seed: seed}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*staccato.Doc, len(cases))
	for i, c := range cases {
		docs[i] = c.Doc
	}
	return docs
}

// TestSnippetPositionsWitnessed is the snippet witness property: every
// reported reading is a real retained reading carrying the DP's exact
// per-reading mass, every span's offsets point at a genuine occurrence of
// its term, and the reported readings are precisely the top matching
// readings of the brute-force enumeration.
func TestSnippetPositionsWitnessed(t *testing.T) {
	docs := snippetDocs(t, 12, 31)
	rng := rand.New(rand.NewSource(53))
	for qi := 0; qi < 40; qi++ {
		src := docs[rng.Intn(len(docs))].MAP()
		ln := 2 + rng.Intn(4)
		if ln > len(src) {
			ln = len(src)
		}
		at := rng.Intn(len(src) - ln + 1)
		term := src[at : at+ln]
		mode := "substring"
		q := mustQ(query.Substring(term))
		if rng.Intn(3) == 0 && !strings.ContainsRune(term, ' ') {
			mode = "keyword"
			q = mustQ(query.Keyword(term))
		}
		oracle := matchOracle{mode: mode}

		for _, d := range docs {
			sn := q.Snippets(d, query.SnippetOptions{MaxReadings: 5, MaxEnumerate: 1 << 20})
			if sn.DocID != d.ID {
				t.Fatalf("snippet doc id %q, want %q", sn.DocID, d.ID)
			}
			//lint:allow floateq Snippets documents Prob as exactly the DP's Eval output
			if sn.Prob != q.Eval(d) {
				t.Fatalf("doc %s term %q: snippet prob %v != Eval %v", d.ID, term, sn.Prob, q.Eval(d))
			}
			if sn.Truncated {
				t.Fatalf("doc %s term %q: truncated despite an exhaustive budget", d.ID, term)
			}

			// Brute-force oracle: all readings in Readings order, stably
			// sorted by descending probability, filtered by the independent
			// matcher — the top 5 of that list must be reported verbatim.
			var all []oracleReading
			d.Readings(func(text string, prob float64) bool {
				all = append(all, oracleReading{text, prob})
				return true
			})
			sort.SliceStable(all, func(i, j int) bool { return all[i].prob > all[j].prob })
			var want []oracleReading
			for _, r := range all {
				if oracle.leafMatches(r.text, term) {
					want = append(want, r)
					if len(want) == 5 {
						break
					}
				}
			}
			if len(sn.Readings) != len(want) {
				t.Fatalf("doc %s term %q (%s): got %d readings, oracle has %d",
					d.ID, term, mode, len(sn.Readings), len(want))
			}
			for i, r := range sn.Readings {
				//lint:allow floateq the per-reading mass is documented bit-identical with Doc.Readings (same multiplication order)
				if r.Text != want[i].text || r.Prob != want[i].prob {
					t.Fatalf("doc %s term %q: reading %d = (%q, %v), oracle wants (%q, %v)",
						d.ID, term, i, r.Text, r.Prob, want[i].text, want[i].prob)
				}
				if len(r.Spans) == 0 {
					t.Fatalf("doc %s term %q: matching reading %q reported no spans", d.ID, term, r.Text)
				}
				for _, sp := range r.Spans {
					if sp.Term != term {
						t.Fatalf("doc %s: span term %q, query term %q", d.ID, sp.Term, term)
					}
					if sp.Start < 0 || sp.End > len(r.Text) || r.Text[sp.Start:sp.End] != term {
						t.Fatalf("doc %s term %q: span [%d,%d) does not witness the term in %q",
							d.ID, term, sp.Start, sp.End, r.Text)
					}
					if got := utf8.RuneCountInString(r.Text[:sp.Start]); got != sp.RuneStart {
						t.Fatalf("doc %s: rune start %d, want %d", d.ID, sp.RuneStart, got)
					}
					if got := sp.RuneStart + utf8.RuneCountInString(term); got != sp.RuneEnd {
						t.Fatalf("doc %s: rune end %d, want %d", d.ID, sp.RuneEnd, got)
					}
					if mode == "keyword" {
						if sp.Start > 0 && core.IsWordRune(rune(r.Text[sp.Start-1])) {
							t.Fatalf("doc %s: keyword span lacks a left boundary in %q", d.ID, r.Text)
						}
						if sp.End < len(r.Text) && core.IsWordRune(rune(r.Text[sp.End])) {
							t.Fatalf("doc %s: keyword span lacks a right boundary in %q", d.ID, r.Text)
						}
					}
				}
			}
		}
	}
}

// TestMatchTextAgreesWithEval checks MatchText's matched bit against the
// DP on single-reading documents, across boolean shapes: a concrete
// string matches iff Eval on a document encoding exactly that string
// says probability 1.
func TestMatchTextAgreesWithEval(t *testing.T) {
	docs := snippetDocs(t, 8, 77)
	var texts []string
	for _, d := range docs {
		texts = append(texts, d.MAP())
	}
	rng := rand.New(rand.NewSource(99))
	pick := func() string {
		src := texts[rng.Intn(len(texts))]
		ln := 2 + rng.Intn(4)
		i := rng.Intn(len(src) - ln + 1)
		return src[i : i+ln]
	}
	for i := 0; i < 60; i++ {
		a := mustQ(query.Substring(pick()))
		b := mustQ(query.Substring(pick()))
		var q *query.Query
		switch i % 4 {
		case 0:
			q = a
		case 1:
			q = query.And(a, b)
		case 2:
			q = query.Or(a, query.Not(b))
		default:
			q = query.And(a, query.Not(b))
		}
		for _, text := range texts {
			single := &staccato.Doc{ID: "one", Chunks: []staccato.PathSet{
				{Alts: []staccato.Alt{{Text: text, Prob: 1}}, Retained: 1},
			}}
			matched, _ := q.MatchText(text)
			if want := q.Eval(single) > 0.5; matched != want {
				t.Fatalf("query %s on %q: MatchText=%v, Eval=%v", q.String(), text, matched, want)
			}
		}
	}
}

// TestSnippetTruncation pins the budget contract: a budget too small to
// reach any matching reading reports Truncated with the readings it did
// find, and never examines more than the budget.
func TestSnippetTruncation(t *testing.T) {
	// Two chunks, where the only matching reading is the least probable
	// combination: "xz" appears only as alt2+alt2.
	d := &staccato.Doc{ID: "t", Chunks: []staccato.PathSet{
		{Alts: []staccato.Alt{{Text: "aa", Prob: 0.6}, {Text: "ax", Prob: 0.4}}, Retained: 1},
		{Alts: []staccato.Alt{{Text: "bb", Prob: 0.7}, {Text: "zb", Prob: 0.3}}, Retained: 1},
	}}
	q := mustQ(query.Substring("xz"))
	full := q.Snippets(d, query.SnippetOptions{})
	if len(full.Readings) != 1 || full.Truncated || full.Readings[0].Text != "axzb" {
		t.Fatalf("full budget: %+v", full)
	}
	cut := q.Snippets(d, query.SnippetOptions{MaxReadings: 1, MaxEnumerate: 2})
	if len(cut.Readings) != 0 || !cut.Truncated {
		t.Fatalf("budget 2 must truncate before the rank-4 matching reading: %+v", cut)
	}
	if cut.Prob <= 0 {
		t.Fatalf("truncated snippet still carries the DP probability, got %v", cut.Prob)
	}
}
