package query

import (
	"fmt"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/pkg/fuzzy"
)

// automaton is a deterministic matcher compiled from a query term. step
// consumes one rune and reports whether the term just finished matching
// (matching is absorbing, so callers stop on the first hit). acceptAtEnd
// reports states that count as a match when the document ends — needed for
// keyword queries, whose trailing boundary can be the end of text.
type automaton interface {
	numStates() int
	start() int
	step(q int, r rune) (next int, matched bool)
	acceptAtEnd(q int) bool
}

// maxTermRunes bounds compiled terms so automaton states (plus the
// product DP's matched sentinel) always fit the uint16 joint-state
// encoding, with generous headroom for any realistic query.
const maxTermRunes = 1 << 12

func compile(term string, mode Mode, dist int) (automaton, error) {
	pat := []rune(term)
	if len(pat) == 0 {
		return nil, fmt.Errorf("query: empty term")
	}
	if len(pat) > maxTermRunes {
		return nil, fmt.Errorf("query: term of %d runes exceeds the %d-rune limit", len(pat), maxTermRunes)
	}
	if dist != 0 && mode != ModeFuzzy {
		return nil, fmt.Errorf("query: edit distance %d on non-fuzzy mode %d", dist, mode)
	}
	switch mode {
	case ModeSubstring:
		return newKMP(pat), nil
	case ModeKeyword:
		for _, r := range pat {
			if !core.IsWordRune(r) {
				return nil, fmt.Errorf("query: keyword term %q contains non-word character %q", term, r)
			}
		}
		return newKeyword(pat), nil
	case ModeFuzzy:
		d, err := fuzzy.Compile(term, dist)
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		return fuzzyAuto{d}, nil
	default:
		return nil, fmt.Errorf("query: unknown mode %d", mode)
	}
}

// fuzzyAuto adapts a Levenshtein DFA to the automaton interface. The DFA
// already matches on entering an accepting state (a window within the
// edit distance just ended), so step delegates directly; there is no
// end-of-text acceptance because matching is not boundary-conditioned.
type fuzzyAuto struct {
	dfa *fuzzy.DFA
}

func (a fuzzyAuto) numStates() int                 { return a.dfa.NumStates() }
func (a fuzzyAuto) start() int                     { return a.dfa.Start() }
func (a fuzzyAuto) step(q int, r rune) (int, bool) { return a.dfa.Step(q, r) }
func (a fuzzyAuto) acceptAtEnd(int) bool           { return false }

// kmpAuto is the classic Knuth–Morris–Pratt automaton: state q means "the
// last q runes seen equal the first q runes of the pattern". Reaching
// len(pat) is a match.
type kmpAuto struct {
	pat  []rune
	fail []int
}

func newKMP(pat []rune) *kmpAuto {
	fail := make([]int, len(pat))
	for i := 1; i < len(pat); i++ {
		j := fail[i-1]
		for j > 0 && pat[i] != pat[j] {
			j = fail[j-1]
		}
		if pat[i] == pat[j] {
			j++
		}
		fail[i] = j
	}
	return &kmpAuto{pat: pat, fail: fail}
}

func (a *kmpAuto) numStates() int { return len(a.pat) }
func (a *kmpAuto) start() int     { return 0 }

func (a *kmpAuto) step(q int, r rune) (int, bool) {
	for q > 0 && r != a.pat[q] {
		q = a.fail[q-1]
	}
	if r == a.pat[q] {
		q++
	}
	if q == len(a.pat) {
		return 0, true
	}
	return q, false
}

func (a *kmpAuto) acceptAtEnd(int) bool { return false }

// keywordAuto matches a term delimited by non-word characters (token
// boundaries). Because the term itself is all word runes, a failed partial
// match can never overlap a valid restart — a restart position must follow
// a non-word rune — so no failure function is needed. States:
//
//	0            dead: previous rune was a word rune, cannot start a match
//	1            ready: at a boundary, a match may start
//	1+j (j=1..m) matched the first j runes of the term
//
// State 1+m ("whole term seen") matches when the next rune is a non-word
// rune or the document ends.
type keywordAuto struct {
	pat []rune
}

func newKeyword(pat []rune) *keywordAuto { return &keywordAuto{pat: pat} }

func (a *keywordAuto) numStates() int { return len(a.pat) + 2 }
func (a *keywordAuto) start() int     { return 1 }

func (a *keywordAuto) step(q int, r rune) (int, bool) {
	m := len(a.pat)
	if q == m+1 { // full term seen, awaiting right boundary
		if !core.IsWordRune(r) {
			return q, true
		}
		return 0, false
	}
	if q >= 1 {
		j := q - 1 // runes of the term matched so far
		if r == a.pat[j] {
			return q + 1, false
		}
	}
	if !core.IsWordRune(r) {
		return 1, false
	}
	return 0, false
}

func (a *keywordAuto) acceptAtEnd(q int) bool { return q == len(a.pat)+1 }
