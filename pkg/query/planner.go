package query

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// This file is the planning half of indexed execution. A compiled Query
// is a boolean formula over term automata; the Planner extracts from it
// the gram-level evidence every match MUST leave in an inverted q-gram
// index, and turns posting-list lookups into a candidate document set the
// engine then restricts its scan to.
//
// The contract is strictly no-false-negative: a document outside the
// candidate set provably has match probability zero, so Search results
// are byte-identical with planning on, off, or unavailable. To keep that
// guarantee the extraction is conservative wherever the index cannot
// help:
//
//   - a substring or keyword leaf of at least gramSize runes requires
//     every q-gram of its term (a reading containing the term contains
//     them all), so its candidates are the intersection of those postings;
//   - a shorter leaf leaves no gram evidence and cannot prune;
//   - AND intersects its children's candidate sets (children that cannot
//     prune simply drop out of the intersection);
//   - OR unions its children and can only prune if every child can;
//   - NOT cannot prune: a document matching the negated branch still has
//     nonzero probability of not matching it, so negations always scan.

// CandidateSet is a set of document IDs that may match a query; documents
// outside the set are guaranteed non-matches. A nil *CandidateSet means
// "no pruning information: every document is a candidate", which is why
// the methods below are defined on the nil receiver.
//
// A set built from a bounds-carrying posting source additionally holds,
// per candidate, an admissible upper bound on that document's match
// probability (see Bound); sets without bound information answer 1 for
// every candidate, which is always admissible.
type CandidateSet struct {
	ids map[string]struct{}
	// bounds, when non-nil, maps each candidate to an upper bound on its
	// match probability in [0, 1]. nil means no bound information.
	bounds map[string]float64
}

// NewCandidateSet builds a set from ids.
func NewCandidateSet(ids ...string) *CandidateSet {
	c := &CandidateSet{ids: make(map[string]struct{}, len(ids))}
	for _, id := range ids {
		c.ids[id] = struct{}{}
	}
	return c
}

// Has reports whether id is a candidate. The nil set admits everything.
func (c *CandidateSet) Has(id string) bool {
	if c == nil {
		return true
	}
	_, ok := c.ids[id]
	return ok
}

// Len returns the number of candidates, or -1 for the nil
// (everything-is-a-candidate) set.
func (c *CandidateSet) Len() int {
	if c == nil {
		return -1
	}
	return len(c.ids)
}

// IDs returns the candidates in ascending order; nil for the nil set.
func (c *CandidateSet) IDs() []string {
	if c == nil {
		return nil
	}
	out := make([]string, 0, len(c.ids))
	for id := range c.ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Bound returns an admissible upper bound on id's match probability: the
// recorded bound when the set carries one, else the vacuous 1. The nil
// set admits everything at bound 1.
func (c *CandidateSet) Bound(id string) float64 {
	if c == nil || c.bounds == nil {
		return 1
	}
	if b, ok := c.bounds[id]; ok {
		return b
	}
	return 1
}

// Bounded reports whether the set carries per-candidate probability
// bounds (possibly vacuous ones) rather than defaulting everything to 1.
func (c *CandidateSet) Bounded() bool { return c != nil && c.bounds != nil }

// BoundedCandidate pairs a candidate document ID with its probability
// upper bound.
type BoundedCandidate struct {
	ID    string
	Bound float64
}

// Ranked returns the candidates ordered best-bound-first (descending
// bound, ties by ascending ID — the processing order the top-k engine
// path wants). Sets without bounds rank everything at 1, i.e. in plain
// ascending-ID order. Nil for the nil set.
func (c *CandidateSet) Ranked() []BoundedCandidate {
	if c == nil {
		return nil
	}
	out := make([]BoundedCandidate, 0, len(c.ids))
	for id := range c.ids {
		out = append(out, BoundedCandidate{ID: id, Bound: c.Bound(id)})
	}
	slices.SortFunc(out, func(a, b BoundedCandidate) int {
		//lint:allow floateq exact equality picks the deterministic ID tiebreak; either branch is admissible
		if a.Bound != b.Bound {
			if a.Bound > b.Bound {
				return -1
			}
			return 1
		}
		return strings.Compare(a.ID, b.ID)
	})
	return out
}

func intersectSets(a, b *CandidateSet) *CandidateSet {
	if a.Len() > b.Len() {
		a, b = b, a
	}
	out := &CandidateSet{ids: make(map[string]struct{}, a.Len())}
	if a.bounds != nil || b.bounds != nil {
		out.bounds = make(map[string]float64, a.Len())
	}
	for id := range a.ids {
		if b.Has(id) {
			out.ids[id] = struct{}{}
			if out.bounds != nil {
				// A conjunction's match is contained in each conjunct's, so
				// the min of the two bounds is admissible.
				ba, bb := a.Bound(id), b.Bound(id)
				if bb < ba {
					ba = bb
				}
				out.bounds[id] = ba
			}
		}
	}
	return out
}

// PostingSource answers gram lookups for the planner — the seam between
// pkg/query and an inverted index implementation (index.Index satisfies
// it). Implementations must honor the same no-false-negative contract:
// every live document whose retained readings could contain all of grams
// must appear in the result.
type PostingSource interface {
	// Candidates returns the IDs of documents that may contain every gram
	// in grams. ok=false means the source cannot answer (for example,
	// grams is empty) and the caller must not prune.
	Candidates(grams []string) (ids []string, ok bool)
}

// BoundedPostingSource is a PostingSource that can also report, per
// candidate, an admissible upper bound on the probability that the
// document contains all of grams (index.Index satisfies it). Bounds must
// never under-estimate: bounds[i] ≥ P(some retained reading of ids[i]
// contains every gram). The planner uses bounds opportunistically — a
// plain PostingSource still plans, just without early-termination fuel.
type BoundedPostingSource interface {
	PostingSource
	CandidatesWithBounds(grams []string) (ids []string, bounds []float64, ok bool)
}

// Plan is the pruning strategy extracted from a Query at a given gram
// size. A Plan is immutable, independent of any particular index, and may
// be reused across Candidates calls and goroutines.
type Plan struct {
	gramSize int
	root     planNode
}

// Plan extracts the conservatively-required gram sets from q. gramSize
// must match the target index's; a gramSize < 1 yields a plan that never
// prunes.
func (q *Query) Plan(gramSize int) *Plan {
	p := &Plan{gramSize: gramSize}
	if gramSize < 1 {
		p.root = planAll{reason: "planning disabled"}
		return p
	}
	p.root = buildPlan(exprOf(q), q.leaves, gramSize)
	return p
}

// Candidates evaluates the plan against src. A nil result means the plan
// cannot prune and every document must be scanned; a non-nil result —
// possibly empty — restricts the scan to its members.
func (p *Plan) Candidates(src PostingSource) *CandidateSet {
	set, ok := p.root.candidates(src)
	if !ok {
		return nil
	}
	return set
}

// Prunable reports whether the plan can restrict a scan at all, given a
// cooperative posting source.
func (p *Plan) Prunable() bool { return p.root.prunable() }

// NumGrams returns the number of distinct grams the plan consults.
func (p *Plan) NumGrams() int {
	grams := make(map[string]struct{})
	p.root.collectGrams(grams)
	return len(grams)
}

// String renders the plan in the same lisp-ish shape as Query.String,
// marking each branch as gram-pruned or scan-forced, e.g.
// and(grams(substr("foo") ×3), scan(negation cannot prune)).
func (p *Plan) String() string {
	var sb strings.Builder
	p.root.render(&sb)
	return sb.String()
}

// planNode mirrors the query's expr tree, reduced to what matters for
// pruning. candidates returns (set, true) to restrict the scan to set, or
// (nil, false) when this branch cannot prune.
type planNode interface {
	candidates(src PostingSource) (*CandidateSet, bool)
	prunable() bool
	collectGrams(into map[string]struct{})
	render(sb *strings.Builder)
}

// planAll is a branch that cannot prune: every document is a candidate.
type planAll struct{ reason string }

func (n planAll) candidates(PostingSource) (*CandidateSet, bool) { return nil, false }
func (n planAll) prunable() bool                                 { return false }
func (n planAll) collectGrams(map[string]struct{})               {}
func (n planAll) render(sb *strings.Builder)                     { fmt.Fprintf(sb, "scan(%s)", n.reason) }

// planNone is the constant-false branch: no document can match.
type planNone struct{}

func (planNone) candidates(PostingSource) (*CandidateSet, bool) { return NewCandidateSet(), true }
func (planNone) prunable() bool                                 { return true }
func (planNone) collectGrams(map[string]struct{})               {}
func (planNone) render(sb *strings.Builder)                     { sb.WriteString("none") }

// planGrams is a prunable leaf: all grams must be present in a matching
// document. For a fuzzy leaf, term is one contiguous piece of the query
// term (see buildFuzzyLeaf) and dist records the leaf's edit distance
// for rendering.
type planGrams struct {
	term  string
	mode  Mode
	dist  int
	grams []string
}

func (n planGrams) candidates(src PostingSource) (*CandidateSet, bool) {
	if bsrc, can := src.(BoundedPostingSource); can {
		ids, bnds, ok := bsrc.CandidatesWithBounds(n.grams)
		if !ok {
			return nil, false
		}
		c := &CandidateSet{
			ids:    make(map[string]struct{}, len(ids)),
			bounds: make(map[string]float64, len(ids)),
		}
		for i, id := range ids {
			c.ids[id] = struct{}{}
			b := 1.0
			if i < len(bnds) {
				b = bnds[i]
			}
			c.bounds[id] = b
		}
		return c, true
	}
	ids, ok := src.Candidates(n.grams)
	if !ok {
		return nil, false
	}
	return NewCandidateSet(ids...), true
}

func (n planGrams) prunable() bool { return true }

func (n planGrams) collectGrams(into map[string]struct{}) {
	for _, g := range n.grams {
		into[g] = struct{}{}
	}
}

func (n planGrams) render(sb *strings.Builder) {
	switch n.mode {
	case ModeKeyword:
		fmt.Fprintf(sb, "grams(kw(%q) ×%d)", n.term, len(n.grams))
	case ModeFuzzy:
		fmt.Fprintf(sb, "grams(fuzzy(%q, %d) ×%d)", n.term, n.dist, len(n.grams))
	default:
		fmt.Fprintf(sb, "grams(substr(%q) ×%d)", n.term, len(n.grams))
	}
}

type planAnd []planNode

func (n planAnd) candidates(src PostingSource) (*CandidateSet, bool) {
	var acc *CandidateSet
	got := false
	for _, kid := range n {
		set, ok := kid.candidates(src)
		if !ok {
			continue // this child cannot prune; the others still restrict
		}
		if !got {
			acc, got = set, true
			continue
		}
		acc = intersectSets(acc, set)
	}
	return acc, got
}

func (n planAnd) prunable() bool {
	for _, kid := range n {
		if kid.prunable() {
			return true
		}
	}
	return false
}

func (n planAnd) collectGrams(into map[string]struct{}) {
	for _, kid := range n {
		kid.collectGrams(into)
	}
}

func (n planAnd) render(sb *strings.Builder) { renderPlanList(sb, "and", n) }

type planOr []planNode

func (n planOr) candidates(src PostingSource) (*CandidateSet, bool) {
	acc := &CandidateSet{ids: make(map[string]struct{}), bounds: make(map[string]float64)}
	for _, kid := range n {
		set, ok := kid.candidates(src)
		if !ok {
			return nil, false // one unprunable branch admits any document
		}
		// A disjunction's bound is the capped sum of its children's
		// (union bound); max would under-estimate when branches overlap.
		// Each id accumulates exactly once per child, so no per-id float
		// result depends on the order the ids are visited in.
		//lint:allow mapiter each id accumulates once per child; iteration order cannot change any per-id sum
		for id := range set.ids { // union in place: one pass per child
			acc.ids[id] = struct{}{}
			acc.bounds[id] += set.Bound(id)
		}
	}
	for id, b := range acc.bounds {
		if b > 1 {
			acc.bounds[id] = 1
		}
	}
	return acc, true
}

func (n planOr) prunable() bool {
	for _, kid := range n {
		if !kid.prunable() {
			return false
		}
	}
	return true
}

func (n planOr) collectGrams(into map[string]struct{}) {
	for _, kid := range n {
		kid.collectGrams(into)
	}
}

func (n planOr) render(sb *strings.Builder) { renderPlanList(sb, "or", n) }

func renderPlanList(sb *strings.Builder, name string, kids []planNode) {
	sb.WriteString(name)
	sb.WriteString("(")
	for i, kid := range kids {
		if i > 0 {
			sb.WriteString(", ")
		}
		kid.render(sb)
	}
	sb.WriteString(")")
}

// buildPlan lowers an expr tree into plan nodes, folding away branches
// that cannot influence pruning.
func buildPlan(e expr, leaves []leaf, gramSize int) planNode {
	switch t := e.(type) {
	case constExpr:
		if bool(t) {
			return planAll{reason: "matches every document"}
		}
		return planNone{}
	case leafExpr:
		lf := leaves[t]
		if lf.mode == ModeFuzzy {
			return buildFuzzyLeaf(lf, gramSize)
		}
		grams := termGrams(lf.term, gramSize)
		if len(grams) == 0 {
			return planAll{reason: fmt.Sprintf("term %q shorter than gram size %d", lf.term, gramSize)}
		}
		return planGrams{term: lf.term, mode: lf.mode, grams: grams}
	case notExpr:
		// P(not q) > 0 for any document with P(q) < 1; the index records
		// possible readings, not certain ones, so negation never prunes.
		return planAll{reason: "negation cannot prune"}
	case andExpr:
		kids := make([]planNode, 0, len(t))
		for _, kid := range t {
			k := buildPlan(kid, leaves, gramSize)
			if _, none := k.(planNone); none {
				return planNone{} // a false conjunct kills the whole branch
			}
			if _, all := k.(planAll); all {
				continue // an unprunable conjunct just drops out
			}
			kids = append(kids, k)
		}
		switch len(kids) {
		case 0:
			return planAll{reason: "no conjunct can prune"}
		case 1:
			return kids[0]
		}
		return planAnd(kids)
	case orExpr:
		kids := make([]planNode, 0, len(t))
		for _, kid := range t {
			k := buildPlan(kid, leaves, gramSize)
			if all, isAll := k.(planAll); isAll {
				return all // one unprunable disjunct admits any document
			}
			if _, none := k.(planNone); none {
				continue // a false disjunct contributes nothing
			}
			kids = append(kids, k)
		}
		switch len(kids) {
		case 0:
			return planNone{}
		case 1:
			return kids[0]
		}
		return planOr(kids)
	default:
		return planAll{reason: "unknown expression"}
	}
}

// buildFuzzyLeaf lowers a fuzzy leaf by the pigeonhole argument: split
// the term's m runes into dist+1 contiguous near-equal pieces. Any
// occurrence within dist edits leaves at least one piece untouched —
// each substitution or deletion lands inside at most one piece, and an
// insertion at a piece boundary lands inside none — and that surviving
// piece appears contiguously in the matched window, so the document must
// contain every one of its q-grams. The union over pieces of "has all of
// this piece's grams" is therefore a sound superset of the matches. The
// lowering is only available when every piece carries gram evidence,
// i.e. the shortest piece — floor(m/(dist+1)) runes — is at least
// gramSize; shorter terms degrade to a scan, per the strictly
// no-false-negative contract.
func buildFuzzyLeaf(lf leaf, gramSize int) planNode {
	runes := []rune(lf.term)
	if len(runes)/(lf.dist+1) < gramSize {
		return planAll{reason: fmt.Sprintf("fuzzy term %q at distance %d leaves pieces shorter than gram size %d", lf.term, lf.dist, gramSize)}
	}
	kids := make([]planNode, 0, lf.dist+1)
	for _, piece := range splitPieces(runes, lf.dist+1) {
		kids = append(kids, planGrams{term: piece, mode: ModeFuzzy, dist: lf.dist, grams: termGrams(piece, gramSize)})
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return planOr(kids)
}

// splitPieces splits runes into n contiguous pieces whose lengths differ
// by at most one; the shortest is floor(len/n) runes.
func splitPieces(runes []rune, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, string(runes[i*len(runes)/n:(i+1)*len(runes)/n]))
	}
	return out
}

// termGrams returns every q-rune window of term, deduplicated and sorted;
// empty when the term is shorter than q runes.
func termGrams(term string, q int) []string {
	runes := []rune(term)
	if len(runes) < q {
		return nil
	}
	set := make(map[string]struct{}, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		set[string(runes[i:i+q])] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
