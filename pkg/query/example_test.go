package query_test

import (
	"context"
	"fmt"

	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// A Staccato document is a product distribution over per-chunk path
// sets; queries return the probability that the document's true text
// satisfies the predicate, summed over readings — here the "staccato"
// reading carries 0.6 of the mass.
func ExampleSubstring() {
	doc := &staccato.Doc{
		ID: "doc-1",
		Chunks: []staccato.PathSet{
			{Retained: 1, Alts: []staccato.Alt{
				{Text: "stac", Prob: 0.6},
				{Text: "stoc", Prob: 0.4},
			}},
			{Retained: 1, Alts: []staccato.Alt{
				{Text: "cato", Prob: 1},
			}},
		},
	}
	q, err := query.Substring("staccato")
	if err != nil {
		panic(err)
	}
	// Compile once, evaluate everywhere: a Query is immutable and safe
	// for concurrent use. The match spans both chunks.
	fmt.Printf("%.2f\n", q.Eval(doc))
	// Output: 0.60
}

// Boolean queries are evaluated per reading, not by multiplying
// marginals: "cat" and "dog" each have probability 0.5, but no single
// reading contains both, so their conjunction is 0 — where independence
// would wrongly claim 0.25.
func ExampleAnd() {
	doc := &staccato.Doc{
		ID: "doc-1",
		Chunks: []staccato.PathSet{
			{Retained: 1, Alts: []staccato.Alt{
				{Text: "cat", Prob: 0.5},
				{Text: "dog", Prob: 0.5},
			}},
		},
	}
	cat, _ := query.Substring("cat")
	dog, _ := query.Substring("dog")
	fmt.Printf("and: %.2f\n", query.And(cat, dog).Eval(doc))
	fmt.Printf("or:  %.2f\n", query.Or(cat, dog).Eval(doc))
	// Output:
	// and: 0.00
	// or:  1.00
}

// Engine runs one compiled query over every document in a DocStore and
// returns matches ranked by descending probability. Results are
// deterministic at any worker count.
func ExampleEngine_Search() {
	ctx := context.Background()
	st := store.NewMemStore()
	docs := []*staccato.Doc{
		{ID: "doc-a", Chunks: []staccato.PathSet{
			{Retained: 1, Alts: []staccato.Alt{{Text: "the cat sat", Prob: 1}}},
		}},
		{ID: "doc-b", Chunks: []staccato.PathSet{
			{Retained: 1, Alts: []staccato.Alt{
				{Text: "cat", Prob: 0.25},
				{Text: "cot", Prob: 0.75},
			}},
		}},
		{ID: "doc-c", Chunks: []staccato.PathSet{
			{Retained: 1, Alts: []staccato.Alt{{Text: "dog", Prob: 1}}},
		}},
	}
	for _, d := range docs {
		if err := st.Put(ctx, d); err != nil {
			panic(err)
		}
	}

	q, err := query.Substring("cat")
	if err != nil {
		panic(err)
	}
	eng := query.NewEngine(st, query.EngineOptions{Workers: 2})
	results, err := eng.Search(ctx, q, query.SearchOptions{MinProb: 0.1})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s %.2f\n", r.DocID, r.Prob)
	}
	// Output:
	// doc-a 1.00
	// doc-b 0.25
}
