package query_test

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// sub compiles a substring leaf, failing the test on error.
func sub(t testing.TB, term string) *query.Query {
	t.Helper()
	q, err := query.Substring(term)
	if err != nil {
		t.Fatalf("Substring(%q): %v", term, err)
	}
	return q
}

// kw compiles a keyword leaf, failing the test on error.
func kw(t testing.TB, term string) *query.Query {
	t.Helper()
	q, err := query.Keyword(term)
	if err != nil {
		t.Fatalf("Keyword(%q): %v", term, err)
	}
	return q
}

// containsToken is the keyword-mode oracle: term appears as a whole token.
func containsToken(text, term string) bool {
	for _, tok := range strings.FieldsFunc(text, func(r rune) bool { return !core.IsWordRune(r) }) {
		if tok == term {
			return true
		}
	}
	return false
}

// oracleProb brute-forces the query probability by enumerating every
// retained reading of the document.
func oracleProb(d *staccato.Doc, sat func(string) bool) float64 {
	var p float64
	d.Readings(func(text string, prob float64) bool {
		if sat(text) {
			p += prob
		}
		return true
	})
	return p
}

func TestQueryString(t *testing.T) {
	q := query.And(
		sub(t, "foo"),
		query.Not(kw(t, "bar")),
	)
	if got, want := q.String(), `and(substr("foo"), not(kw("bar")))`; got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	or := query.Or(sub(t, "a"), sub(t, "b"), sub(t, "c"))
	if got, want := or.String(), `or(substr("a"), substr("b"), substr("c"))`; got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestQuerySharesDuplicateLeaves(t *testing.T) {
	q := query.And(
		sub(t, "ab"),
		query.Or(sub(t, "ab"), kw(t, "ab")),
	)
	if q.NumTerms() != 2 {
		t.Errorf("NumTerms = %d, want 2 (substring and keyword \"ab\" are distinct; duplicate substring is shared)", q.NumTerms())
	}
}

func TestTermTooLongRejected(t *testing.T) {
	if _, err := query.Substring(strings.Repeat("a", 1<<12+1)); err == nil {
		t.Error("compile accepted a term beyond the rune limit")
	}
}

// TestBooleanRespectsCorrelation pins the tentpole semantics: And/Or run
// as one joint DP over the reading distribution, so correlated terms are
// NOT combined by multiplying marginals.
func TestBooleanRespectsCorrelation(t *testing.T) {
	a := sub(t, "a")
	b := sub(t, "b")
	c := sub(t, "c")

	// Negative correlation: "a" and "c" live on mutually exclusive
	// readings, so the conjunction is impossible even though each marginal
	// is 0.5 (naive product: 0.25).
	excl := doc([]staccato.Alt{{Text: "ab", Prob: 0.5}, {Text: "cd", Prob: 0.5}})
	approx(t, "P(a)", a.Eval(excl), 0.5)
	approx(t, "P(c)", c.Eval(excl), 0.5)
	approx(t, "P(a AND c)", query.And(a, c).Eval(excl), 0)
	// The disjunction is certain (naive independence: 0.75).
	approx(t, "P(a OR c)", query.Or(a, c).Eval(excl), 1)

	// Positive correlation: "a" and "b" ride the same reading, so the
	// conjunction equals the shared reading's mass (naive product: 0.36).
	same := doc([]staccato.Alt{{Text: "ab", Prob: 0.6}, {Text: "xy", Prob: 0.4}})
	approx(t, "P(a AND b)", query.And(a, b).Eval(same), 0.6)

	// Negation complements exactly.
	approx(t, "P(NOT a)", query.Not(a).Eval(excl), 0.5)
	approx(t, "P(NOT (a OR c))", query.Not(query.Or(a, c)).Eval(excl), 0)
}

func TestBooleanAcrossChunkBoundaries(t *testing.T) {
	// "bc" only exists spanning chunks via ab+cd (0.5*0.7); "xx" via ax+xd
	// (0.5*0.3). The two spans are mutually exclusive, so the conjunction
	// is 0 and the disjunction is their sum.
	d := doc(
		[]staccato.Alt{{Text: "ab", Prob: 0.5}, {Text: "ax", Prob: 0.5}},
		[]staccato.Alt{{Text: "cd", Prob: 0.7}, {Text: "xd", Prob: 0.3}},
	)
	bc := sub(t, "bc")
	xx := sub(t, "xx")
	approx(t, "P(bc AND xx)", query.And(bc, xx).Eval(d), 0)
	approx(t, "P(bc OR xx)", query.Or(bc, xx).Eval(d), 0.5)
	approx(t, "P(bc AND NOT xx)", query.And(bc, query.Not(xx)).Eval(d), 0.35)
}

// boolCase pairs a compiled query with a plain-string oracle predicate.
type boolCase struct {
	q   *query.Query
	sat func(string) bool
}

// randBool builds a random boolean query (and its oracle) out of n-grams
// of truth, whole words of truth, and occasional random bigrams that are
// usually absent.
func randBool(t *testing.T, rng *rand.Rand, truth string, depth int) boolCase {
	t.Helper()
	const letters = "abcdefghijklmnopqrstuvwxyz"
	words := strings.Fields(truth)
	leaf := func() boolCase {
		if rng.Intn(3) == 0 && len(words) > 0 {
			w := words[rng.Intn(len(words))]
			return boolCase{
				q:   kw(t, w),
				sat: func(s string) bool { return containsToken(s, w) },
			}
		}
		var term string
		if rng.Intn(4) == 0 {
			term = string([]byte{letters[rng.Intn(26)], letters[rng.Intn(26)]})
		} else {
			n := 1 + rng.Intn(3)
			i := rng.Intn(len(truth) - n + 1)
			term = truth[i : i+n]
		}
		return boolCase{
			q:   sub(t, term),
			sat: func(s string) bool { return strings.Contains(s, term) },
		}
	}
	if depth == 0 || rng.Intn(3) == 0 {
		return leaf()
	}
	switch rng.Intn(3) {
	case 0:
		a, b := randBool(t, rng, truth, depth-1), randBool(t, rng, truth, depth-1)
		return boolCase{query.And(a.q, b.q), func(s string) bool { return a.sat(s) && b.sat(s) }}
	case 1:
		a, b := randBool(t, rng, truth, depth-1), randBool(t, rng, truth, depth-1)
		return boolCase{query.Or(a.q, b.q), func(s string) bool { return a.sat(s) || b.sat(s) }}
	default:
		a := randBool(t, rng, truth, depth-1)
		return boolCase{query.Not(a.q), func(s string) bool { return !a.sat(s) }}
	}
}

// TestBooleanMatchesEnumerationOracle property-tests the product DP
// against brute-force enumeration of every retained reading.
func TestBooleanMatchesEnumerationOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		truth, f := testgen.MustGenerate(testgen.Config{Length: 12, Seed: seed})
		d, err := staccato.Build(f, "d", 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		if n := d.NumReadings(); n > 200 {
			t.Fatalf("doc too large to enumerate: %v readings", n)
		}
		rng := rand.New(rand.NewSource(seed * 100))
		for i := 0; i < 25; i++ {
			bc := randBool(t, rng, truth, 3)
			got := bc.q.Eval(d)
			want := oracleProb(d, bc.sat)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("seed %d: %s = %v, oracle %v", seed, bc.q, got, want)
			}
		}
	}
}

// TestEvalFSTMatchesBruteForce property-tests the exact transducer-level
// evaluation — including keyword leaves and boolean combinations — against
// full path enumeration on small SFSTs.
func TestEvalFSTMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		truth, f := testgen.MustGenerate(testgen.Config{Length: 8, Seed: seed})
		dist := enumerate(f)
		var total float64
		for _, p := range dist {
			total += p
		}
		rng := rand.New(rand.NewSource(seed * 7))
		for i := 0; i < 15; i++ {
			bc := randBool(t, rng, truth, 2)
			var want float64
			for s, p := range dist {
				if bc.sat(s) {
					want += p
				}
			}
			want /= total
			got, err := bc.q.EvalFST(f)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, bc.q, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("seed %d: EvalFST %s = %v, brute force %v", seed, bc.q, got, want)
			}
		}
	}
}

// TestCompiledQueryConcurrentReuse shares one compiled Query across
// goroutines and checks every evaluation agrees with a sequential run —
// the immutability contract the Engine relies on.
func TestCompiledQueryConcurrentReuse(t *testing.T) {
	cases, err := testgen.Docs(16, testgen.Config{Length: 30, Seed: 2}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := query.And(
		sub(t, "th"),
		query.Not(kw(t, "zzz")),
	)
	want := make([]float64, len(cases))
	for i, c := range cases {
		want[i] = q.Eval(c.Doc)
	}
	var wg sync.WaitGroup
	got := make([]float64, len(cases))
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = q.Eval(cases[i].Doc)
		}(i)
	}
	wg.Wait()
	for i := range cases {
		if got[i] != want[i] {
			t.Errorf("doc %d: concurrent Eval = %v, sequential %v", i, got[i], want[i])
		}
	}
}

// TestDocBooleanConvergesToFST checks the approximation story holds for
// boolean queries: at the full-distribution dial (1 chunk, all paths) the
// chunk DP must agree exactly with the transducer-level evaluation.
func TestDocBooleanConvergesToFST(t *testing.T) {
	truth, f := testgen.MustGenerate(testgen.Config{Length: 8, Seed: 3})
	d, err := staccato.Build(f, "d", 1, staccato.AllPaths)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		bc := randBool(t, rng, truth, 2)
		exact, err := bc.q.EvalFST(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := bc.q.Eval(d); math.Abs(got-exact) > 1e-9 {
			t.Errorf("%s: full-dial doc %v != FST %v", bc.q, got, exact)
		}
	}
}

// TestCombinatorsTolerateZeroValueQuery pins the documented semantics: a
// nil or never-compiled operand behaves as a query matching nothing.
func TestCombinatorsTolerateZeroValueQuery(t *testing.T) {
	d := doc([]staccato.Alt{{Text: "x", Prob: 1}})
	x := sub(t, "x")
	var zero query.Query

	approx(t, "P(NOT zero)", query.Not(&zero).Eval(d), 1)
	approx(t, "P(NOT nil)", query.Not(nil).Eval(d), 1)
	approx(t, "P(x AND zero)", query.And(x, &zero).Eval(d), 0)
	approx(t, "P(x OR zero)", query.Or(x, &zero).Eval(d), 1)
	approx(t, "P(zero AND x)", query.And(&zero, x).Eval(d), 0)
	if got, want := query.And(x, &zero).String(), `and(substr("x"), false)`; got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestZeroValueQueryString(t *testing.T) {
	var q query.Query
	if got := q.String(); got != "false" {
		t.Errorf("zero-value String() = %q, want \"false\"", got)
	}
}
