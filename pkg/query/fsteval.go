package query

import (
	"fmt"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/pkg/fst"
)

// EvalFST computes the exact probability that the string emitted by the
// transducer satisfies the query, without materializing any paths: the
// product of the leaf automata runs directly over the SFST's state graph,
// with a sparse probability distribution over (fst state × joint automaton
// state). Polynomial in the transducer size even when the path count is
// astronomical.
//
// This is the FullSFST oracle: tests use it to bound the Staccato dial
// from above, and it supports the full boolean algebra — including
// keyword-mode leaves, whose trailing boundary may be the end of the
// emitted string.
func (q *Query) EvalFST(f *fst.SFST) (float64, error) {
	if q.expr == nil {
		return 0, fmt.Errorf("query: EvalFST requires a compiled Query")
	}
	n := f.NumStates()
	states := make([]uint16, len(q.leaves))
	for i, lf := range q.leaves {
		states[i] = uint16(lf.auto.start())
	}
	// mass[s] maps joint automaton states to probability mass arriving at
	// fst state s. States are visited in topological order (the Build
	// normalization), so each state's mass is complete before it is read.
	mass := make([]map[string]float64, n)
	mass[f.Start()] = map[string]float64{encodeStates(states): 1}

	bits := make([]bool, len(q.leaves))
	var matched, total float64
	for s := 0; s < n; s++ {
		cur := mass[s]
		if cur == nil {
			continue
		}
		// Sorted key order fixes float accumulation order, so the result
		// is bit-identical across runs (Go map iteration is randomized).
		keys := sortedKeys(cur)
		if f.IsFinal(fst.StateID(s)) {
			for _, key := range keys {
				p := cur[key]
				decodeStates(key, states)
				q.endBits(states, bits)
				total += p
				if q.expr.eval(bits) {
					matched += p
				}
			}
		}
		for _, arc := range f.Arcs(fst.StateID(s)) {
			p := core.ProbFromWeight(arc.Weight)
			for _, key := range keys {
				pq := cur[key]
				k2 := key
				if arc.Label != fst.Epsilon {
					decodeStates(key, states)
					q.advanceRune(states, arc.Label)
					k2 = encodeStates(states)
				}
				m := mass[arc.To]
				if m == nil {
					m = make(map[string]float64)
					mass[arc.To] = m
				}
				m[k2] += pq * p
			}
		}
		mass[s] = nil // fully propagated; release early
	}
	//lint:allow floateq exact zero means no accepting path contributed any mass at all; an epsilon test would misreport tiny-but-real mass as an error
	if total == 0 {
		return 0, fmt.Errorf("query: transducer has no accepting mass")
	}
	return matched / total, nil
}
