package query

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// checkContextWindow asserts every rune-safety property addContext
// promises for one (text, span, n) triple: the context is valid UTF-8
// (no rune was split), it contains the matched text verbatim, and the
// window never exceeds the span plus n runes of surrounding text on each
// side — clamped at the text edges, never beyond them.
func checkContextWindow(t *testing.T, text string, sp Span, n int) {
	t.Helper()
	runes := []rune(text)
	if !utf8.ValidString(sp.Context) {
		t.Fatalf("context %q is not valid UTF-8: a rune was split", sp.Context)
	}
	matched := string(runes[sp.RuneStart:sp.RuneEnd])
	if !strings.Contains(sp.Context, matched) {
		t.Fatalf("context %q does not contain the matched text %q", sp.Context, matched)
	}
	lo := sp.RuneStart - n
	if lo < 0 {
		lo = 0
	}
	hi := sp.RuneEnd + n
	if hi > len(runes) {
		hi = len(runes)
	}
	if got, want := utf8.RuneCountInString(sp.Context), hi-lo; got != want {
		t.Fatalf("context %q spans %d runes, want exactly the clamped window of %d", sp.Context, got, want)
	}
	if got := string(runes[lo:hi]); sp.Context != got {
		t.Fatalf("context %q != text window %q", sp.Context, got)
	}
}

// TestAddContextMultiByteRunes is the deterministic property sweep for
// the context extractor over texts dominated by multi-byte runes, where a
// byte-offset implementation would slice mid-rune. Every (span position,
// width, context size) combination must produce a valid window.
func TestAddContextMultiByteRunes(t *testing.T) {
	texts := []string{
		"héllo wörld çafé",
		"日本語のテキストです",
		"mixed ascii と 日本語 and émoji 🙂🙃 tail",
		"🙂🙃🙂🙃🙂🙃",
		"a",
		"",
	}
	for _, text := range texts {
		runes := []rune(text)
		for start := 0; start <= len(runes); start++ {
			for end := start; end <= len(runes); end++ {
				for _, n := range []int{0, 1, 2, 5, 1000} {
					spans := []Span{{RuneStart: start, RuneEnd: end}}
					addContext(text, spans, n)
					checkContextWindow(t, text, spans[0], n)
				}
			}
		}
	}
}

// TestSnippetContextClampEndToEnd pins the single documented cap: a
// ContextRunes request beyond MaxContextRunes behaves exactly like
// MaxContextRunes, so every surface (library, CLI flag, server knob)
// shares one limit.
func TestSnippetContextClampEndToEnd(t *testing.T) {
	got := SnippetOptions{ContextRunes: MaxContextRunes * 10}.withDefaults()
	if got.ContextRunes != MaxContextRunes {
		t.Fatalf("ContextRunes clamped to %d, want MaxContextRunes = %d", got.ContextRunes, MaxContextRunes)
	}
	kept := SnippetOptions{ContextRunes: 7}.withDefaults()
	if kept.ContextRunes != 7 {
		t.Fatalf("ContextRunes = %d, want in-range request 7 untouched", kept.ContextRunes)
	}
}

// FuzzSnippetContext hammers addContext with arbitrary (often invalid
// UTF-8 producing) strings and arbitrary span geometry. The harness
// normalizes the offsets into the valid range MatchText guarantees and
// then requires the same window properties the deterministic test pins.
func FuzzSnippetContext(f *testing.F) {
	f.Add("héllo wörld", 1, 3, 4)
	f.Add("日本語のテキスト", 0, 2, 1)
	f.Add("🙂🙃🙂", 2, 3, 512)
	f.Add("plain ascii text", 6, 11, 0)
	f.Add("", 0, 0, 8)
	f.Fuzz(func(t *testing.T, text string, start, end, n int) {
		if !utf8.ValidString(text) {
			// Readings are Go strings built from valid alternatives; the
			// extractor's contract starts at valid UTF-8.
			return
		}
		runes := []rune(text)
		if start < 0 {
			start = -start
		}
		if end < 0 {
			end = -end
		}
		if len(runes) > 0 {
			start %= len(runes) + 1
			end %= len(runes) + 1
		} else {
			start, end = 0, 0
		}
		if end < start {
			start, end = end, start
		}
		if n < 0 {
			n = -n
		}
		n %= MaxContextRunes + 1
		spans := []Span{{RuneStart: start, RuneEnd: end}}
		addContext(text, spans, n)
		checkContextWindow(t, text, spans[0], n)
	})
}
