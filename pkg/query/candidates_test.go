package query_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/index"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// plainStore hides MemStore's optional capabilities behind the bare
// DocStore interface, forcing the engine onto its fallback paths.
type plainStore struct{ inner *store.MemStore }

func (p plainStore) Put(ctx context.Context, doc *staccato.Doc) error { return p.inner.Put(ctx, doc) }
func (p plainStore) Get(ctx context.Context, id string) (*staccato.Doc, error) {
	return p.inner.Get(ctx, id)
}
func (p plainStore) Delete(ctx context.Context, id string) error { return p.inner.Delete(ctx, id) }
func (p plainStore) Scan(ctx context.Context, fn func(doc *staccato.Doc) error) error {
	return p.inner.Scan(ctx, fn)
}

// candidateCorpus builds a MemStore + matching index + truth list.
func candidateCorpus(t *testing.T, n int, seed int64) (*store.MemStore, *index.Index, []string) {
	t.Helper()
	ctx := context.Background()
	cases, err := testgen.Docs(n, testgen.Config{Length: 30, Seed: seed}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewMemStore()
	ix := index.New(3)
	truths := make([]string, len(cases))
	for i, c := range cases {
		if err := st.Put(ctx, c.Doc); err != nil {
			t.Fatal(err)
		}
		ix.Add(c.Doc)
		truths[i] = c.Truth
	}
	return st, ix, truths
}

// TestSearchCandidatesByteIdenticalToSearch is the tentpole's engine
// contract: for random boolean queries whose plans prune,
// SearchCandidates returns byte-identical output to both the full-scan
// and the pruned-scan Search paths, at 1, 2, and 8 workers, with and
// without the store's BatchGetter capability.
func TestSearchCandidatesByteIdenticalToSearch(t *testing.T) {
	ctx := context.Background()
	st, ix, truths := candidateCorpus(t, 60, 71)
	rng := rand.New(rand.NewSource(7))
	prunedRuns := 0
	for trial := 0; trial < 40; trial++ {
		q := buildRandomQuery(t, rng, truths, 2)
		cand := q.Plan(3).Candidates(ix)
		if cand == nil {
			continue // unprunable plan: SearchCandidates is not offered one
		}
		prunedRuns++
		opts := query.SearchOptions{MinProb: float64(trial%3) * 0.05, TopN: trial % 7}
		for _, workers := range []int{1, 2, 8} {
			eng := query.NewEngine(st, query.EngineOptions{Workers: workers})
			fullScan, err := eng.Search(ctx, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			prunedOpts := opts
			prunedOpts.Candidates = cand
			prunedScan, err := eng.Search(ctx, q, prunedOpts)
			if err != nil {
				t.Fatal(err)
			}
			var stats query.SearchStats
			candOpts := opts
			candOpts.Stats = &stats
			candOnly, err := eng.SearchCandidates(ctx, q, cand, candOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(candOnly, fullScan) || !reflect.DeepEqual(candOnly, prunedScan) {
				t.Fatalf("trial %d workers %d: query %s: modes disagree\n full:   %+v\n pruned: %+v\n cand:   %+v",
					trial, workers, q.String(), fullScan, prunedScan, candOnly)
			}
			if stats.Mode != query.ExecCandidateOnly {
				t.Fatalf("trial %d: Mode = %q, want %q", trial, stats.Mode, query.ExecCandidateOnly)
			}
			if stats.CandidatesFetched != cand.Len() || stats.DocsScanned != cand.Len() {
				t.Fatalf("trial %d: fetched %d / scanned %d, want %d (no concurrent deletes)",
					trial, stats.CandidatesFetched, stats.DocsScanned, cand.Len())
			}

			// The per-ID Get fallback must agree too.
			plainEng := query.NewEngine(plainStore{inner: st}, query.EngineOptions{Workers: workers})
			viaGet, err := plainEng.SearchCandidates(ctx, q, cand, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(viaGet, candOnly) {
				t.Fatalf("trial %d: Get-fallback results differ from BatchGetter results\n get:   %+v\n batch: %+v",
					trial, viaGet, candOnly)
			}
		}
	}
	if prunedRuns == 0 {
		t.Fatal("no trial produced a candidate set; the test is vacuous")
	}
}

// TestSearchCandidatesSkipsDeletedCandidate: a candidate deleted between
// planning and execution is skipped — never an error — matching a scan
// ordered after the delete. The stats must keep the fetch attempt and
// the evaluation apart: the deleted candidate is still fetched (the
// not-found answer IS a store fetch) but not scanned, and the gap is
// reported in CandidatesDeleted. Regression test for the bug that
// assigned one counter to both fields, which made a delete between plan
// and fetch invisible in the stats.
func TestSearchCandidatesSkipsDeletedCandidate(t *testing.T) {
	ctx := context.Background()
	st, ix, _ := candidateCorpus(t, 20, 73)
	ids, err := st.ListDocIDs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Get(ctx, ids[7])
	if err != nil {
		t.Fatal(err)
	}
	term := doc.MAP()[5:11]
	q := mustQ(query.Substring(term))
	cand := q.Plan(3).Candidates(ix)
	if cand == nil || !cand.Has(ids[7]) {
		t.Fatalf("expected a candidate set containing %s; got %v", ids[7], cand.IDs())
	}
	if err := st.Delete(ctx, ids[7]); err != nil {
		t.Fatal(err)
	}
	for _, victim := range []store.DocStore{st, plainStore{inner: st}} {
		eng := query.NewEngine(victim, query.EngineOptions{Workers: 2})
		var stats query.SearchStats
		res, err := eng.SearchCandidates(ctx, q, cand, query.SearchOptions{Stats: &stats})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.DocID == ids[7] {
				t.Fatalf("deleted doc %s still in results %+v", ids[7], res)
			}
		}
		if stats.CandidatesFetched != cand.Len() {
			t.Fatalf("CandidatesFetched = %d, want %d (every candidate is a fetch attempt)",
				stats.CandidatesFetched, cand.Len())
		}
		if stats.DocsScanned != cand.Len()-1 {
			t.Fatalf("DocsScanned = %d, want %d (the deleted candidate is not evaluated)",
				stats.DocsScanned, cand.Len()-1)
		}
		if stats.CandidatesDeleted != 1 {
			t.Fatalf("CandidatesDeleted = %d, want 1", stats.CandidatesDeleted)
		}
	}
}

// TestSearchCandidatesEmptySetTouchesNothing: a plan that proves no
// document can match yields an empty candidate set, and the engine must
// return instantly without a single store read.
func TestSearchCandidatesEmptySetTouchesNothing(t *testing.T) {
	st, _, _ := candidateCorpus(t, 10, 79)
	eng := query.NewEngine(failingGetStore{inner: st}, query.EngineOptions{Workers: 4})
	var stats query.SearchStats
	res, err := eng.SearchCandidates(context.Background(), mustQ(query.Substring("abcdef")),
		query.NewCandidateSet(), query.SearchOptions{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || stats.CandidatesFetched != 0 || stats.Mode != query.ExecCandidateOnly {
		t.Fatalf("empty candidate set: res %+v stats %+v", res, stats)
	}
}

// failingGetStore fails every read — proof that a code path never
// touched the store.
type failingGetStore struct{ inner *store.MemStore }

func (f failingGetStore) Put(ctx context.Context, doc *staccato.Doc) error {
	return f.inner.Put(ctx, doc)
}
func (f failingGetStore) Get(ctx context.Context, id string) (*staccato.Doc, error) {
	return nil, errors.New("store read on a path that promised none")
}
func (f failingGetStore) Delete(ctx context.Context, id string) error {
	return f.inner.Delete(ctx, id)
}
func (f failingGetStore) Scan(ctx context.Context, fn func(doc *staccato.Doc) error) error {
	return errors.New("store scan on a path that promised none")
}

// TestSearchCandidatesValidation: nil query and nil candidate set are
// contract violations, reported as errors rather than silent scans.
func TestSearchCandidatesValidation(t *testing.T) {
	st, _, _ := candidateCorpus(t, 5, 83)
	eng := query.NewEngine(st, query.EngineOptions{Workers: 2})
	ctx := context.Background()
	if _, err := eng.SearchCandidates(ctx, nil, query.NewCandidateSet("x"), query.SearchOptions{}); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := eng.SearchCandidates(ctx, mustQ(query.Substring("abc")), nil, query.SearchOptions{}); err == nil {
		t.Error("nil candidate set accepted (would silently skip the whole corpus)")
	}
}

// TestSearchCandidatesReadErrorPropagates: a store failure mid-run
// cancels the whole call and surfaces the error.
func TestSearchCandidatesReadErrorPropagates(t *testing.T) {
	st, ix, _ := candidateCorpus(t, 20, 89)
	ids, err := st.ListDocIDs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Get(context.Background(), ids[3])
	if err != nil {
		t.Fatal(err)
	}
	q := mustQ(query.Substring(doc.MAP()[4:10]))
	cand := q.Plan(3).Candidates(ix)
	if cand == nil || cand.Len() == 0 {
		t.Fatal("expected a non-empty candidate set")
	}
	eng := query.NewEngine(failingGetStore{inner: st}, query.EngineOptions{Workers: 3})
	if _, err := eng.SearchCandidates(context.Background(), q, cand, query.SearchOptions{}); err == nil {
		t.Fatal("store read failure did not surface")
	}
}

// TestSearchCandidatesCancelledContext: a pre-cancelled context aborts
// the run with the context's error.
func TestSearchCandidatesCancelledContext(t *testing.T) {
	st, ix, truths := candidateCorpus(t, 20, 97)
	q := mustQ(query.Substring(truths[0][0:6]))
	cand := q.Plan(3).Candidates(ix)
	if cand == nil {
		cand = query.NewCandidateSet("doc-0001")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := query.NewEngine(st, query.EngineOptions{Workers: 2})
	if _, err := eng.SearchCandidates(ctx, q, cand, query.SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
