package query_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// corpusStore ingests a deterministic synthetic corpus into a MemStore.
func corpusStore(t testing.TB, n, length int, seed int64, chunks, k int) *store.MemStore {
	t.Helper()
	cases, err := testgen.Docs(n, testgen.Config{Length: length, Seed: seed}, chunks, k)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewMemStore()
	ctx := context.Background()
	for _, c := range cases {
		if err := st.Put(ctx, c.Doc); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// putDoc stores a hand-built single-chunk document with the given alts.
func putDoc(t *testing.T, st *store.MemStore, id string, alts ...staccato.Alt) {
	t.Helper()
	d := &staccato.Doc{
		ID:     id,
		Params: staccato.Params{Chunks: 1, K: len(alts)},
		Chunks: []staccato.PathSet{{Alts: alts, Retained: 1}},
	}
	if err := st.Put(context.Background(), d); err != nil {
		t.Fatal(err)
	}
}

// TestEngineSearchDeterministicAcrossWorkers is the acceptance scenario:
// on a 500-doc seeded corpus, Search at workers=8 must return results
// byte-identical to workers=1.
func TestEngineSearchDeterministicAcrossWorkers(t *testing.T) {
	st := corpusStore(t, 500, 24, 1, 4, 3)
	q := query.And(
		sub(t, "e"),
		query.Not(sub(t, "zz")),
	)
	ctx := context.Background()
	base, err := query.NewEngine(st, query.EngineOptions{Workers: 1}).
		Search(ctx, q, query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("corpus query matched nothing; test term too selective")
	}
	for _, workers := range []int{2, 8} {
		got, err := query.NewEngine(st, query.EngineOptions{Workers: workers}).
			Search(ctx, q, query.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d results differ from workers=1", workers)
		}
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", base) {
			t.Fatalf("workers=%d results not byte-identical to workers=1", workers)
		}
	}
}

func TestEngineSearchRankingThresholdTopN(t *testing.T) {
	st := store.NewMemStore()
	putDoc(t, st, "doc-half", staccato.Alt{Text: "xa", Prob: 0.5}, staccato.Alt{Text: "ya", Prob: 0.5})
	putDoc(t, st, "doc-sure-b", staccato.Alt{Text: "xb", Prob: 1})
	putDoc(t, st, "doc-sure-a", staccato.Alt{Text: "xc", Prob: 1})
	putDoc(t, st, "doc-none", staccato.Alt{Text: "qq", Prob: 1})
	q := sub(t, "x")
	eng := query.NewEngine(st, query.EngineOptions{Workers: 4})
	ctx := context.Background()

	got, err := eng.Search(ctx, q, query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Prob-zero doc dropped; ties ranked by ascending DocID.
	want := []query.Result{
		{DocID: "doc-sure-a", Prob: 1},
		{DocID: "doc-sure-b", Prob: 1},
		{DocID: "doc-half", Prob: 0.5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Search = %+v, want %+v", got, want)
	}

	got, err = eng.Search(ctx, q, query.SearchOptions{MinProb: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("MinProb=0.6 kept %d results, want 2: %+v", len(got), got)
	}

	got, err = eng.Search(ctx, q, query.SearchOptions{TopN: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[:1]) {
		t.Errorf("TopN=1 = %+v, want %+v", got, want[:1])
	}
}

func TestEngineForEachStreamsInScanOrder(t *testing.T) {
	st := corpusStore(t, 40, 20, 7, 3, 2)
	q := sub(t, "a")
	eng := query.NewEngine(st, query.EngineOptions{Workers: 8})

	var ids []string
	if err := eng.ForEach(context.Background(), q, func(r query.Result) error {
		ids = append(ids, r.DocID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 40 {
		t.Fatalf("ForEach visited %d docs, want 40 (zero-probability docs included)", len(ids))
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("ForEach order not ascending: %v", ids)
	}
}

func TestEngineForEachStopScan(t *testing.T) {
	st := corpusStore(t, 40, 20, 7, 3, 2)
	q := sub(t, "a")
	eng := query.NewEngine(st, query.EngineOptions{Workers: 8})

	var ids []string
	if err := eng.ForEach(context.Background(), q, func(r query.Result) error {
		ids = append(ids, r.DocID)
		if len(ids) == 3 {
			return store.ErrStopScan
		}
		return nil
	}); err != nil {
		t.Fatalf("ErrStopScan must end the stream without error, got %v", err)
	}
	if !reflect.DeepEqual(ids, []string{"doc-0001", "doc-0002", "doc-0003"}) {
		t.Errorf("early-stopped stream = %v", ids)
	}
}

func TestEngineForEachFnError(t *testing.T) {
	st := corpusStore(t, 10, 20, 7, 3, 2)
	q := sub(t, "a")
	eng := query.NewEngine(st, query.EngineOptions{Workers: 4})
	boom := errors.New("boom")
	err := eng.ForEach(context.Background(), q, func(query.Result) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("ForEach error = %v, want %v", err, boom)
	}
}

func TestEngineContextCancelled(t *testing.T) {
	st := corpusStore(t, 10, 20, 7, 3, 2)
	q := sub(t, "a")
	eng := query.NewEngine(st, query.EngineOptions{Workers: 4})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Search(ctx, q, query.SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Search on cancelled context = %v, want context.Canceled", err)
	}

	// Cancel mid-stream: the error surfaces and the stream ends. The
	// corpus is much larger than the pipeline's in-flight window (a few
	// docs at workers=2), so the scanner is still running when the second
	// result reaches the callback and must observe the cancellation.
	big := corpusStore(t, 64, 20, 7, 3, 2)
	eng2 := query.NewEngine(big, query.EngineOptions{Workers: 2})
	ctx2, cancel2 := context.WithCancel(context.Background())
	n := 0
	err := eng2.ForEach(ctx2, q, func(query.Result) error {
		n++
		if n == 2 {
			cancel2()
		}
		return nil
	})
	cancel2()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ForEach after mid-stream cancel = %v, want context.Canceled", err)
	}
}

func TestEngineNilQuery(t *testing.T) {
	eng := query.NewEngine(store.NewMemStore(), query.EngineOptions{})
	if _, err := eng.Search(context.Background(), nil, query.SearchOptions{}); err == nil {
		t.Error("Search accepted a nil query")
	}
	// A zero-value Query was never compiled; the engine must reject it
	// instead of panicking in a worker goroutine.
	if _, err := eng.Search(context.Background(), &query.Query{}, query.SearchOptions{}); err == nil {
		t.Error("Search accepted a zero-value query")
	}
}

func TestZeroValueQueryEvalsToZero(t *testing.T) {
	d := doc([]staccato.Alt{{Text: "x", Prob: 1}})
	var q query.Query
	if p := q.Eval(d); p != 0 {
		t.Errorf("zero-value Query.Eval = %v, want 0", p)
	}
}

func TestEngineDefaultWorkers(t *testing.T) {
	eng := query.NewEngine(store.NewMemStore(), query.EngineOptions{})
	if eng.Workers() < 1 {
		t.Errorf("default Workers = %d, want >= 1", eng.Workers())
	}
	if w := query.NewEngine(store.NewMemStore(), query.EngineOptions{Workers: 3}).Workers(); w != 3 {
		t.Errorf("Workers = %d, want 3", w)
	}
}
