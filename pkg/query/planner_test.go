package query_test

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/index"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/store"
)

// fakeSource records lookups and serves canned posting results.
type fakeSource struct {
	byGram map[string][]string
	calls  [][]string
}

func (f *fakeSource) Candidates(grams []string) ([]string, bool) {
	f.calls = append(f.calls, grams)
	if len(grams) == 0 {
		return nil, false
	}
	// Intersect the per-gram doc lists.
	count := map[string]int{}
	for _, g := range grams {
		for _, id := range f.byGram[g] {
			count[id]++
		}
	}
	var out []string
	for id, n := range count {
		if n == len(grams) {
			out = append(out, id)
		}
	}
	return out, true
}

// mustQ unwraps a compile result; the terms in this file are all valid,
// so a failure is a test bug worth a panic.
func mustQ(q *query.Query, err error) *query.Query {
	if err != nil {
		panic(err)
	}
	return q
}

func TestPlanLeafGrams(t *testing.T) {
	q := mustQ(query.Substring("abcd"))
	plan := q.Plan(3)
	if !plan.Prunable() {
		t.Fatal("substring leaf of 4 runes should be prunable at q=3")
	}
	if plan.NumGrams() != 2 {
		t.Errorf("NumGrams = %d, want 2 (abc, bcd)", plan.NumGrams())
	}
	src := &fakeSource{byGram: map[string][]string{"abc": {"d1", "d2"}, "bcd": {"d2", "d3"}}}
	cand := plan.Candidates(src)
	if cand == nil {
		t.Fatal("expected a candidate set")
	}
	if got := cand.IDs(); !reflect.DeepEqual(got, []string{"d2"}) {
		t.Errorf("candidates = %v, want [d2]", got)
	}
}

func TestPlanShortTermCannotPrune(t *testing.T) {
	q := mustQ(query.Substring("ab"))
	plan := q.Plan(3)
	if plan.Prunable() {
		t.Error("2-rune term must not prune at q=3")
	}
	if cand := plan.Candidates(&fakeSource{}); cand != nil {
		t.Errorf("candidates = %v, want nil (scan all)", cand.IDs())
	}
	if !strings.Contains(plan.String(), "scan(") {
		t.Errorf("plan %q should render a scan branch", plan.String())
	}
}

func TestPlanNotCannotPrune(t *testing.T) {
	q := query.Not(mustQ(query.Substring("abcd")))
	plan := q.Plan(3)
	if plan.Prunable() {
		t.Error("negation must not prune")
	}
	if cand := plan.Candidates(&fakeSource{}); cand != nil {
		t.Errorf("candidates = %v, want nil", cand.IDs())
	}
}

func TestPlanAndIntersectsOrUnions(t *testing.T) {
	src := &fakeSource{byGram: map[string][]string{
		"aaa": {"d1", "d2"},
		"bbb": {"d2", "d3"},
	}}
	a := mustQ(query.Substring("aaa"))
	b := mustQ(query.Substring("bbb"))

	and := query.And(a, b).Plan(3).Candidates(src)
	if got := and.IDs(); !reflect.DeepEqual(got, []string{"d2"}) {
		t.Errorf("AND candidates = %v, want [d2]", got)
	}
	or := query.Or(a, b).Plan(3).Candidates(src)
	if got := or.IDs(); !reflect.DeepEqual(got, []string{"d1", "d2", "d3"}) {
		t.Errorf("OR candidates = %v, want [d1 d2 d3]", got)
	}
}

func TestPlanAndWithUnprunableConjunctStillPrunes(t *testing.T) {
	src := &fakeSource{byGram: map[string][]string{"aaa": {"d1"}}}
	q := query.And(mustQ(query.Substring("aaa")), mustQ(query.Substring("x")))
	cand := q.Plan(3).Candidates(src)
	if cand == nil {
		t.Fatal("AND with one prunable conjunct should still prune")
	}
	if got := cand.IDs(); !reflect.DeepEqual(got, []string{"d1"}) {
		t.Errorf("candidates = %v, want [d1]", got)
	}
}

func TestPlanOrWithUnprunableDisjunctScans(t *testing.T) {
	src := &fakeSource{byGram: map[string][]string{"aaa": {"d1"}}}
	q := query.Or(mustQ(query.Substring("aaa")), mustQ(query.Substring("x")))
	if cand := q.Plan(3).Candidates(src); cand != nil {
		t.Errorf("OR with an unprunable disjunct must scan; got %v", cand.IDs())
	}
}

func TestPlanConstFalsePrunesEverything(t *testing.T) {
	// A nil operand is the documented constant-false query.
	cand := query.And(nil).Plan(3).Candidates(&fakeSource{})
	if cand == nil || cand.Len() != 0 {
		t.Errorf("const-false plan: candidates = %v, want empty set", cand)
	}
	// Its negation matches everything and cannot prune.
	if c := query.Not(nil).Plan(3).Candidates(&fakeSource{}); c != nil {
		t.Errorf("not(false) should scan; got %v", c.IDs())
	}
}

func TestPlanGramSizeDisabled(t *testing.T) {
	q := mustQ(query.Substring("abcd"))
	if q.Plan(0).Prunable() {
		t.Error("gramSize 0 must disable pruning")
	}
}

// buildRandomQuery assembles a random boolean query from terms drawn from
// the corpus truths plus junk, exercising substring/keyword leaves, all
// combinators, and sub-gram-size terms.
func buildRandomQuery(t *testing.T, rng *rand.Rand, truths []string, depth int) *query.Query {
	t.Helper()
	pickTerm := func() string {
		if rng.Intn(4) == 0 {
			junk := []string{"zq", "xvz", "qqqq", "zzzzz", "a"}
			return junk[rng.Intn(len(junk))]
		}
		truth := truths[rng.Intn(len(truths))]
		n := 2 + rng.Intn(6)
		if n > len(truth) {
			n = len(truth)
		}
		i := rng.Intn(len(truth) - n + 1)
		return truth[i : i+n]
	}
	leaf := func() *query.Query {
		term := pickTerm()
		if rng.Intn(3) == 0 {
			kw := strings.TrimSpace(term)
			if kw == "" || strings.ContainsRune(kw, ' ') {
				kw = "word"
			}
			return mustQ(query.Keyword(kw))
		}
		return mustQ(query.Substring(term))
	}
	if depth <= 0 || rng.Intn(3) == 0 {
		return leaf()
	}
	switch rng.Intn(3) {
	case 0:
		return query.And(buildRandomQuery(t, rng, truths, depth-1), buildRandomQuery(t, rng, truths, depth-1))
	case 1:
		return query.Or(buildRandomQuery(t, rng, truths, depth-1), buildRandomQuery(t, rng, truths, depth-1))
	default:
		return query.Not(buildRandomQuery(t, rng, truths, depth-1))
	}
}

// TestPlannerNoFalseNegatives is the planner's load-bearing property:
// over random boolean queries on a generated corpus, every document with
// nonzero match probability appears in the candidate set whenever the
// plan prunes at all.
func TestPlannerNoFalseNegatives(t *testing.T) {
	const gramSize = 3
	cases, err := testgen.Docs(40, testgen.Config{Length: 30, Seed: 21}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.New(gramSize)
	truths := make([]string, len(cases))
	for i, c := range cases {
		ix.Add(c.Doc)
		truths[i] = c.Truth
	}
	rng := rand.New(rand.NewSource(77))
	pruned := 0
	for trial := 0; trial < 200; trial++ {
		q := buildRandomQuery(t, rng, truths, 3)
		cand := q.Plan(gramSize).Candidates(ix)
		if cand == nil {
			continue
		}
		pruned++
		for _, c := range cases {
			p := q.Eval(c.Doc)
			if p > 0 && !cand.Has(c.Doc.ID) {
				t.Fatalf("trial %d: query %s: doc %s has P=%v but was pruned (plan %s)",
					trial, q.String(), c.Doc.ID, p, q.Plan(gramSize).String())
			}
		}
	}
	if pruned == 0 {
		t.Fatal("no trial produced a prunable plan; the test is vacuous")
	}
}

// TestEngineSearchByteIdenticalWithCandidates runs the same query with
// and without planner candidates and requires identical Search output —
// the engine half of the byte-identical acceptance criterion — plus
// coherent stats.
func TestEngineSearchByteIdenticalWithCandidates(t *testing.T) {
	const gramSize = 3
	ctx := context.Background()
	cases, err := testgen.Docs(60, testgen.Config{Length: 30, Seed: 31}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewMemStore()
	ix := index.New(gramSize)
	truths := make([]string, len(cases))
	for i, c := range cases {
		if err := st.Put(ctx, c.Doc); err != nil {
			t.Fatal(err)
		}
		ix.Add(c.Doc)
		truths[i] = c.Truth
	}
	eng := query.NewEngine(st, query.EngineOptions{Workers: 4})
	rng := rand.New(rand.NewSource(5))
	prunedRuns := 0
	for trial := 0; trial < 50; trial++ {
		q := buildRandomQuery(t, rng, truths, 2)
		cand := q.Plan(gramSize).Candidates(ix)
		var stats query.SearchStats
		withIdx, err := eng.Search(ctx, q, query.SearchOptions{Candidates: cand, Stats: &stats})
		if err != nil {
			t.Fatal(err)
		}
		without, err := eng.Search(ctx, q, query.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(withIdx, without) {
			t.Fatalf("trial %d: query %s: results differ\n with: %+v\n without: %+v",
				trial, q.String(), withIdx, without)
		}
		if stats.DocsTotal != len(cases) || stats.DocsScanned+stats.DocsPruned != stats.DocsTotal {
			t.Fatalf("trial %d: incoherent stats %+v", trial, stats)
		}
		if cand != nil && stats.DocsPruned != len(cases)-cand.Len() {
			t.Fatalf("trial %d: pruned %d, want %d", trial, stats.DocsPruned, len(cases)-cand.Len())
		}
		if stats.DocsPruned > 0 {
			prunedRuns++
		}
	}
	if prunedRuns == 0 {
		t.Fatal("no run pruned anything; the test is vacuous")
	}
}

// TestForEachPrunedStreamsZeroForPruned checks the ForEach contract under
// pruning: every document still gets exactly one Result, in ID order,
// with pruned documents reported at probability zero.
func TestForEachPrunedStreamsZeroForPruned(t *testing.T) {
	ctx := context.Background()
	cases, err := testgen.Docs(20, testgen.Config{Length: 25, Seed: 41}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewMemStore()
	ix := index.New(3)
	for _, c := range cases {
		if err := st.Put(ctx, c.Doc); err != nil {
			t.Fatal(err)
		}
		ix.Add(c.Doc)
	}
	// A term from one doc's MAP string: selective, so most docs prune.
	term := cases[7].Doc.MAP()[5:11]
	q := mustQ(query.Substring(term))
	cand := q.Plan(3).Candidates(ix)
	if cand == nil {
		t.Fatal("expected a candidate set")
	}
	eng := query.NewEngine(st, query.EngineOptions{Workers: 3})
	var got []query.Result
	err = eng.ForEachPruned(ctx, q, cand, nil, func(r query.Result) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cases) {
		t.Fatalf("streamed %d results, want %d", len(got), len(cases))
	}
	var plain []query.Result
	if err := eng.ForEach(ctx, q, func(r query.Result) error {
		plain = append(plain, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Fatalf("pruned stream differs from plain stream\n pruned: %+v\n plain:  %+v", got, plain)
	}
}
