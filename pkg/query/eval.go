package query

import (
	"sort"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Eval returns the probability, under the document's retained product
// distribution, that its true text satisfies the query. A zero-value
// Query (never compiled) matches nothing and evaluates to 0.
//
// Single-term queries run a dense DP over the term automaton's states.
// Boolean queries run the same DP over the product of the leaf automata:
// a joint state records, for every leaf, either its automaton state or an
// absorbing "already matched" sentinel, so the final distribution carries
// exact joint match probabilities and And/Or/Not are decided per reading —
// not by multiplying marginals, which is wrong whenever terms are
// correlated through shared readings.
func (q *Query) Eval(d *staccato.Doc) float64 {
	if q.expr == nil {
		return 0
	}
	if le, ok := q.expr.(leafExpr); ok {
		return evalDoc(d, q.leaves[le].auto)
	}
	return q.evalProduct(d)
}

// evalDoc pushes a distribution over automaton states through the chunks.
// Mass that reaches the accepting condition is absorbed into matched; the
// remainder carries partial-match state across chunk boundaries, which is
// how matches spanning two chunks are credited.
func evalDoc(d *staccato.Doc, a automaton) float64 {
	vec := make([]float64, a.numStates())
	vec[a.start()] = 1
	matched := 0.0
	for _, ch := range d.Chunks {
		next := make([]float64, len(vec))
		for q, p := range vec {
			//lint:allow floateq exact zero marks an unreached state (never written); an epsilon test would skip real low-probability mass
			if p == 0 {
				continue
			}
			for _, alt := range ch.Alts {
				q2, hit := runString(a, q, alt.Text)
				if hit {
					matched += p * alt.Prob
				} else {
					next[q2] += p * alt.Prob
				}
			}
		}
		vec = next
	}
	for q, p := range vec {
		if p > 0 && a.acceptAtEnd(q) {
			matched += p
		}
	}
	return matched
}

// runString advances the automaton over s from state q, reporting a match
// as soon as one completes (matching is absorbing for "contains" queries).
func runString(a automaton, q int, s string) (int, bool) {
	for _, r := range s {
		var hit bool
		q, hit = a.step(q, r)
		if hit {
			return q, true
		}
	}
	return q, false
}

// evalProduct is the boolean DP. Joint states are sparse — only
// combinations actually reachable through retained readings are tracked —
// keyed by the encoded per-leaf state vector. Every pass walks the states
// in sorted key order: float accumulation order is then fixed, so the
// same (Doc, Query) pair always produces the bit-identical probability —
// the determinism Engine promises across worker counts and runs.
func (q *Query) evalProduct(d *staccato.Doc) float64 {
	states := make([]uint16, len(q.leaves))
	for i, lf := range q.leaves {
		states[i] = uint16(lf.auto.start())
	}
	cur := map[string]float64{encodeStates(states): 1}
	for _, ch := range d.Chunks {
		next := make(map[string]float64, len(cur))
		for _, key := range sortedKeys(cur) {
			p := cur[key]
			for _, alt := range ch.Alts {
				decodeStates(key, states)
				q.advanceString(states, alt.Text)
				next[encodeStates(states)] += p * alt.Prob
			}
		}
		cur = next
	}
	bits := make([]bool, len(q.leaves))
	var total float64
	for _, key := range sortedKeys(cur) {
		decodeStates(key, states)
		q.endBits(states, bits)
		if q.expr.eval(bits) {
			total += cur[key]
		}
	}
	return total
}

// sortedKeys returns m's keys in ascending order, pinning the float
// summation order of the sparse DPs.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// advanceString steps every leaf automaton over s in place. A leaf that
// completes a match moves to its sentinel state (numStates), where it
// stays — matching is absorbing.
func (q *Query) advanceString(states []uint16, s string) {
	for _, r := range s {
		q.advanceRune(states, r)
	}
}

// advanceRune steps every leaf automaton by one rune in place.
func (q *Query) advanceRune(states []uint16, r rune) {
	for i, lf := range q.leaves {
		sentinel := uint16(lf.auto.numStates())
		if states[i] == sentinel {
			continue
		}
		q2, hit := lf.auto.step(int(states[i]), r)
		if hit {
			states[i] = sentinel
		} else {
			states[i] = uint16(q2)
		}
	}
}

// endBits fills bits[i] with whether leaf i counts as matched when the
// document ends in the given joint state.
func (q *Query) endBits(states []uint16, bits []bool) {
	for i, lf := range q.leaves {
		bits[i] = states[i] == uint16(lf.auto.numStates()) || lf.auto.acceptAtEnd(int(states[i]))
	}
}

// encodeStates packs a per-leaf state vector into a map key. Two bytes per
// leaf: compile rejects terms long enough to overflow uint16 state IDs.
func encodeStates(states []uint16) string {
	b := make([]byte, 2*len(states))
	for i, s := range states {
		b[2*i] = byte(s)
		b[2*i+1] = byte(s >> 8)
	}
	return string(b)
}

func decodeStates(key string, dst []uint16) {
	for i := range dst {
		dst[i] = uint16(key[2*i]) | uint16(key[2*i+1])<<8
	}
}
