package query

import (
	"sort"
	"strings"
	"unicode/utf8"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Defaults for SnippetOptions zero values.
const (
	// DefaultMaxReadings is how many matching readings a snippet reports
	// per document.
	DefaultMaxReadings = 3
	// DefaultMaxEnumerate bounds how many readings (matching or not) the
	// best-first enumeration examines per document before giving up.
	DefaultMaxEnumerate = 4096
)

// Span is one occurrence of a query term inside a reading, in both byte
// and rune offsets ([Start, End) and [RuneStart, RuneEnd)). Byte offsets
// index the reading's UTF-8 bytes — the natural unit for slicing the text
// into retrieval chunks — while rune offsets are stable under any
// re-encoding. The JSON form is the wire shape of the staccatod snippets
// endpoint.
type Span struct {
	Term      string `json:"term"`
	Start     int    `json:"start"`
	End       int    `json:"end"`
	RuneStart int    `json:"rune_start"`
	RuneEnd   int    `json:"rune_end"`
}

// SnippetReading is one retained reading that satisfies the query: its
// full text, its probability under the document's product distribution
// (the same mass Doc.Readings reports for it), and every occurrence of
// the query's terms within it. A reading is the unit a RAG pipeline
// chunks for retrieval: text plus positions plus how much probability the
// document assigns to this being the true text.
type SnippetReading struct {
	Text  string  `json:"text"`
	Prob  float64 `json:"prob"`
	Spans []Span  `json:"spans"`
}

// DocSnippets is one matching document's snippet report: the document's
// overall match probability (identical to the Result.Prob Search ranks
// by) and its most probable readings that satisfy the query, best first.
// Truncated reports that the enumeration budget ran out before
// MaxReadings matching readings were found — the readings present are
// still correct and still the best ones.
type DocSnippets struct {
	DocID     string           `json:"doc_id"`
	Prob      float64          `json:"prob"`
	Readings  []SnippetReading `json:"readings"`
	Truncated bool             `json:"truncated,omitempty"`
}

// SnippetOptions shapes snippet extraction. Zero values select the
// defaults above.
type SnippetOptions struct {
	// MaxReadings is how many matching readings to report per document.
	MaxReadings int
	// MaxEnumerate bounds how many readings the best-first enumeration
	// may examine per document; documents dominated by non-matching
	// readings give up (Truncated) rather than enumerate without bound.
	MaxEnumerate int
}

func (o SnippetOptions) withDefaults() SnippetOptions {
	if o.MaxReadings <= 0 {
		o.MaxReadings = DefaultMaxReadings
	}
	if o.MaxEnumerate <= 0 {
		o.MaxEnumerate = DefaultMaxEnumerate
	}
	return o
}

// Snippets extracts the document's top matching readings for the query:
// readings are enumerated best-probability-first (staccato.Doc.BestReadings)
// and the first MaxReadings that satisfy the query are reported, each with
// the positions of every query term occurring in it. Prob is the DP's
// overall match probability, exactly what Search reports for the document.
//
// Extraction is deterministic: the same (Doc, Query, SnippetOptions)
// always produces the identical DocSnippets, which is what lets
// staccatodb.DB.Snippets promise byte-identical output across execution
// modes and worker counts.
func (q *Query) Snippets(d *staccato.Doc, opts SnippetOptions) DocSnippets {
	opts = opts.withDefaults()
	out := DocSnippets{DocID: d.ID, Prob: q.Eval(d)}
	if q.expr == nil || out.Prob <= 0 {
		return out
	}
	examined := 0
	exhausted := true
	d.BestReadings(func(text string, prob float64) bool {
		if examined >= opts.MaxEnumerate {
			exhausted = false
			return false
		}
		examined++
		if ok, spans := q.MatchText(text); ok {
			out.Readings = append(out.Readings, SnippetReading{Text: text, Prob: prob, Spans: spans})
		}
		return len(out.Readings) < opts.MaxReadings
	})
	// The DP said the document matches, so matching readings exist; if the
	// budget stopped the enumeration before MaxReadings of them surfaced,
	// say so instead of silently under-reporting.
	if !exhausted && len(out.Readings) < opts.MaxReadings {
		out.Truncated = true
	}
	return out
}

// MatchText evaluates the query against one concrete string — a single
// fully-determined reading — returning whether it satisfies the boolean
// formula and every occurrence of the query's leaf terms within it,
// sorted by (Start, End, Term). The matched bit agrees exactly with what
// Eval computes for a document encoding only this reading: a leaf's bit
// is "the term occurs at least once", and the formula is evaluated over
// the leaf bits. Occurrences are reported for every leaf, including
// leaves under Not — a reading satisfying or(a, not(b)) via the first
// disjunct may still contain b, and the spans say so.
func (q *Query) MatchText(text string) (bool, []Span) {
	if q.expr == nil {
		return false, nil
	}
	bits := make([]bool, len(q.leaves))
	var spans []Span
	for i, lf := range q.leaves {
		var occ []Span
		if lf.mode == ModeKeyword {
			occ = keywordSpans(text, lf.term)
		} else {
			occ = substringSpans(text, lf.term)
		}
		bits[i] = len(occ) > 0
		spans = append(spans, occ...)
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].End != spans[j].End {
			return spans[i].End < spans[j].End
		}
		return spans[i].Term < spans[j].Term
	})
	return q.expr.eval(bits), spans
}

// substringSpans finds every occurrence of term in text, overlapping ones
// included, with byte and rune offsets. Byte search is rune-exact: UTF-8
// is self-synchronizing, so a byte-level occurrence of a valid encoding
// is a rune-level occurrence.
func substringSpans(text, term string) []Span {
	if term == "" {
		return nil
	}
	var out []Span
	termRunes := utf8.RuneCountInString(term)
	runesBefore := 0 // rune count of text[:from]
	from := 0
	for {
		i := strings.Index(text[from:], term)
		if i < 0 {
			return out
		}
		start := from + i
		runesBefore += utf8.RuneCountInString(text[from:start])
		out = append(out, Span{
			Term:      term,
			Start:     start,
			End:       start + len(term),
			RuneStart: runesBefore,
			RuneEnd:   runesBefore + termRunes,
		})
		// Advance one rune past the occurrence's start so overlapping
		// occurrences are still found.
		_, sz := utf8.DecodeRuneInString(text[start:])
		from = start + sz
		runesBefore++
	}
}

// keywordSpans finds every occurrence of term as a whole token: a maximal
// run of word runes equal to term. This is exactly the keyword automaton's
// semantics — the term delimited by non-word runes or the text edges.
func keywordSpans(text, term string) []Span {
	var out []Span
	tokStart, tokRuneStart := -1, 0
	runeIdx := 0
	flush := func(endByte, endRune int) {
		if tokStart >= 0 && text[tokStart:endByte] == term {
			out = append(out, Span{
				Term:      term,
				Start:     tokStart,
				End:       endByte,
				RuneStart: tokRuneStart,
				RuneEnd:   endRune,
			})
		}
		tokStart = -1
	}
	for i, r := range text {
		if core.IsWordRune(r) {
			if tokStart < 0 {
				tokStart, tokRuneStart = i, runeIdx
			}
		} else {
			flush(i, runeIdx)
		}
		runeIdx++
	}
	flush(len(text), runeIdx)
	return out
}
