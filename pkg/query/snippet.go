package query

import (
	"sort"
	"strings"
	"unicode/utf8"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Defaults for SnippetOptions zero values.
const (
	// DefaultMaxReadings is how many matching readings a snippet reports
	// per document.
	DefaultMaxReadings = 3
	// DefaultMaxEnumerate bounds how many readings (matching or not) the
	// best-first enumeration examines per document before giving up.
	DefaultMaxEnumerate = 4096
	// MaxContextRunes caps SnippetOptions.ContextRunes: larger requests
	// are clamped, not rejected. One cap here keeps every surface — the
	// library, the CLI -context flag, and the server's context_runes
	// knob — agreeing on the widest context window a span may carry.
	MaxContextRunes = 512
)

// Span is one occurrence of a query term inside a reading, in both byte
// and rune offsets ([Start, End) and [RuneStart, RuneEnd)). Byte offsets
// index the reading's UTF-8 bytes — the natural unit for slicing the text
// into retrieval chunks — while rune offsets are stable under any
// re-encoding. For a fuzzy leaf, Term is the matched variant as it
// appears in the reading, not the query term — the caller sees what the
// text actually says. Context, filled only when SnippetOptions.ContextRunes
// is positive, is the matched text plus up to that many runes of
// surrounding reading text on each side. The JSON form is the wire shape
// of the staccatod snippets endpoint.
type Span struct {
	Term      string `json:"term"`
	Start     int    `json:"start"`
	End       int    `json:"end"`
	RuneStart int    `json:"rune_start"`
	RuneEnd   int    `json:"rune_end"`
	Context   string `json:"context,omitempty"`
}

// SnippetReading is one retained reading that satisfies the query: its
// full text, its probability under the document's product distribution
// (the same mass Doc.Readings reports for it), and every occurrence of
// the query's terms within it. A reading is the unit a RAG pipeline
// chunks for retrieval: text plus positions plus how much probability the
// document assigns to this being the true text.
type SnippetReading struct {
	Text  string  `json:"text"`
	Prob  float64 `json:"prob"`
	Spans []Span  `json:"spans"`
}

// DocSnippets is one matching document's snippet report: the document's
// overall match probability (identical to the Result.Prob Search ranks
// by) and its most probable readings that satisfy the query, best first.
// Truncated reports that the enumeration budget ran out before
// MaxReadings matching readings were found — the readings present are
// still correct and still the best ones.
type DocSnippets struct {
	DocID     string           `json:"doc_id"`
	Prob      float64          `json:"prob"`
	Readings  []SnippetReading `json:"readings"`
	Truncated bool             `json:"truncated,omitempty"`
}

// SnippetOptions shapes snippet extraction. Zero values select the
// defaults above.
type SnippetOptions struct {
	// MaxReadings is how many matching readings to report per document.
	MaxReadings int
	// MaxEnumerate bounds how many readings the best-first enumeration
	// may examine per document; documents dominated by non-matching
	// readings give up (Truncated) rather than enumerate without bound.
	MaxEnumerate int
	// ContextRunes, when positive, fills each Span.Context with the
	// matched text plus up to ContextRunes runes of surrounding reading
	// text on each side. Zero leaves Context empty; values above
	// MaxContextRunes are clamped to it.
	ContextRunes int
}

func (o SnippetOptions) withDefaults() SnippetOptions {
	if o.MaxReadings <= 0 {
		o.MaxReadings = DefaultMaxReadings
	}
	if o.MaxEnumerate <= 0 {
		o.MaxEnumerate = DefaultMaxEnumerate
	}
	if o.ContextRunes > MaxContextRunes {
		o.ContextRunes = MaxContextRunes
	}
	return o
}

// Snippets extracts the document's top matching readings for the query:
// readings are enumerated best-probability-first (staccato.Doc.BestReadings)
// and the first MaxReadings that satisfy the query are reported, each with
// the positions of every query term occurring in it. Prob is the DP's
// overall match probability, exactly what Search reports for the document.
//
// Extraction is deterministic: the same (Doc, Query, SnippetOptions)
// always produces the identical DocSnippets, which is what lets
// staccatodb.DB.Snippets promise byte-identical output across execution
// modes and worker counts.
func (q *Query) Snippets(d *staccato.Doc, opts SnippetOptions) DocSnippets {
	opts = opts.withDefaults()
	out := DocSnippets{DocID: d.ID, Prob: q.Eval(d)}
	if q.expr == nil || out.Prob <= 0 {
		return out
	}
	examined := 0
	exhausted := true
	d.BestReadings(func(text string, prob float64) bool {
		if examined >= opts.MaxEnumerate {
			exhausted = false
			return false
		}
		examined++
		if ok, spans := q.MatchText(text); ok {
			if opts.ContextRunes > 0 {
				addContext(text, spans, opts.ContextRunes)
			}
			out.Readings = append(out.Readings, SnippetReading{Text: text, Prob: prob, Spans: spans})
		}
		return len(out.Readings) < opts.MaxReadings
	})
	// The DP said the document matches, so matching readings exist; if the
	// budget stopped the enumeration before MaxReadings of them surfaced,
	// say so instead of silently under-reporting.
	if !exhausted && len(out.Readings) < opts.MaxReadings {
		out.Truncated = true
	}
	return out
}

// MatchText evaluates the query against one concrete string — a single
// fully-determined reading — returning whether it satisfies the boolean
// formula and every occurrence of the query's leaf terms within it,
// sorted by (Start, End, Term). The matched bit agrees exactly with what
// Eval computes for a document encoding only this reading: a leaf's bit
// is "the term occurs at least once", and the formula is evaluated over
// the leaf bits. Occurrences are reported for every leaf, including
// leaves under Not — a reading satisfying or(a, not(b)) via the first
// disjunct may still contain b, and the spans say so.
func (q *Query) MatchText(text string) (bool, []Span) {
	if q.expr == nil {
		return false, nil
	}
	bits := make([]bool, len(q.leaves))
	var spans []Span
	for i, lf := range q.leaves {
		var occ []Span
		switch lf.mode {
		case ModeKeyword:
			occ = keywordSpans(text, lf.term)
		case ModeFuzzy:
			occ = fuzzySpans(text, lf.term, lf.dist)
		default:
			occ = substringSpans(text, lf.term)
		}
		bits[i] = len(occ) > 0
		spans = append(spans, occ...)
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].End != spans[j].End {
			return spans[i].End < spans[j].End
		}
		return spans[i].Term < spans[j].Term
	})
	return q.expr.eval(bits), spans
}

// substringSpans finds every occurrence of term in text, overlapping ones
// included, with byte and rune offsets. Byte search is rune-exact: UTF-8
// is self-synchronizing, so a byte-level occurrence of a valid encoding
// is a rune-level occurrence.
func substringSpans(text, term string) []Span {
	if term == "" {
		return nil
	}
	var out []Span
	termRunes := utf8.RuneCountInString(term)
	runesBefore := 0 // rune count of text[:from]
	from := 0
	for {
		i := strings.Index(text[from:], term)
		if i < 0 {
			return out
		}
		start := from + i
		runesBefore += utf8.RuneCountInString(text[from:start])
		out = append(out, Span{
			Term:      term,
			Start:     start,
			End:       start + len(term),
			RuneStart: runesBefore,
			RuneEnd:   runesBefore + termRunes,
		})
		// Advance one rune past the occurrence's start so overlapping
		// occurrences are still found.
		_, sz := utf8.DecodeRuneInString(text[start:])
		from = start + sz
		runesBefore++
	}
}

// fuzzySpans finds occurrences of term within edit distance dist in
// text, reporting one span per occurrence site. A Sellers DP over the
// text's runes marks every end position whose best-matching window is
// within dist; maximal runs of consecutive accepting ends — the smear a
// single occurrence leaves, since extending or trimming a match by one
// rune costs at most one edit — collapse to one span each. Within a run
// the reported window ends where the edit distance is smallest (latest
// such end on ties, so "staccat0" is reported over its truncation
// "staccat") and starts wherever minimizes the distance again (latest
// such start on ties, i.e. the tightest window). The span's Term
// is the matched variant as it appears in the text. Selection is
// deterministic, so snippet output stays byte-identical across execution
// modes.
func fuzzySpans(text, term string, dist int) []Span {
	pat := []rune(term)
	if len(pat) == 0 || len(pat) <= dist {
		return nil // such terms never compile into a query
	}
	runes := []rune(text)
	byteOff := make([]int, len(runes)+1)
	for i, b := 0, 0; ; i++ {
		byteOff[i] = b
		if i == len(runes) {
			break
		}
		b += utf8.RuneLen(runes[i])
	}

	// endCost[e] = min edits from term to some window ending at rune e.
	endCost := make([]int, len(runes)+1)
	endCost[0] = len(pat) // the empty window: delete the whole term
	col := make([]int, len(pat))
	for j := range col {
		col[j] = j + 1
	}
	for e, r := range runes {
		prevDiag, prevNew := 0, 0
		for j := range col {
			sub := prevDiag
			if pat[j] != r {
				sub++
			}
			v := sub
			if del := col[j] + 1; del < v {
				v = del
			}
			if ins := prevNew + 1; ins < v {
				v = ins
			}
			prevDiag = col[j]
			col[j] = v
			prevNew = v
		}
		endCost[e+1] = col[len(pat)-1]
	}

	var out []Span
	for e := 1; e <= len(runes); e++ {
		if endCost[e] > dist {
			continue
		}
		// Walk the maximal run of accepting ends starting here and pick
		// the best end within it.
		best := e
		for e+1 <= len(runes) && endCost[e+1] <= dist {
			e++
			if endCost[e] <= endCost[best] {
				best = e
			}
		}
		start := fuzzyStart(runes, pat, best, dist)
		out = append(out, Span{
			Term:      string(runes[start:best]),
			Start:     byteOff[start],
			End:       byteOff[best],
			RuneStart: start,
			RuneEnd:   best,
		})
	}
	return out
}

// fuzzyStart picks the start of the window ending at rune end: among the
// feasible lengths (a window within dist edits of an m-rune term has
// between m-dist and m+dist runes) it minimizes the edit distance to the
// term, preferring the latest start — the tightest window — on ties.
func fuzzyStart(runes, pat []rune, end, dist int) int {
	bestS, bestD := -1, -1
	for l := len(pat) - dist; l <= len(pat)+dist; l++ {
		s := end - l
		if s < 0 || s > end {
			continue
		}
		d := editDistRunes(runes[s:end], pat)
		if bestS < 0 || d < bestD || (d == bestD && s > bestS) {
			bestS, bestD = s, d
		}
	}
	return bestS
}

// editDistRunes is the plain Levenshtein distance between rune slices.
func editDistRunes(a, b []rune) int {
	col := make([]int, len(b)+1)
	for j := range col {
		col[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prevDiag := col[0]
		col[0] = i
		for j := 1; j <= len(b); j++ {
			v := prevDiag
			if a[i-1] != b[j-1] {
				v++
			}
			if del := col[j] + 1; del < v {
				v = del
			}
			if ins := col[j-1] + 1; ins < v {
				v = ins
			}
			prevDiag = col[j]
			col[j] = v
		}
	}
	return col[len(b)]
}

// addContext fills each span's Context with the matched text plus up to
// n runes of surrounding reading text on each side.
func addContext(text string, spans []Span, n int) {
	runes := []rune(text)
	for i := range spans {
		lo := spans[i].RuneStart - n
		if lo < 0 {
			lo = 0
		}
		hi := spans[i].RuneEnd + n
		if hi > len(runes) {
			hi = len(runes)
		}
		spans[i].Context = string(runes[lo:hi])
	}
}

// keywordSpans finds every occurrence of term as a whole token: a maximal
// run of word runes equal to term. This is exactly the keyword automaton's
// semantics — the term delimited by non-word runes or the text edges.
func keywordSpans(text, term string) []Span {
	var out []Span
	tokStart, tokRuneStart := -1, 0
	runeIdx := 0
	flush := func(endByte, endRune int) {
		if tokStart >= 0 && text[tokStart:endByte] == term {
			out = append(out, Span{
				Term:      term,
				Start:     tokStart,
				End:       endByte,
				RuneStart: tokRuneStart,
				RuneEnd:   endRune,
			})
		}
		tokStart = -1
	}
	for i, r := range text {
		if core.IsWordRune(r) {
			if tokStart < 0 {
				tokStart, tokRuneStart = i, runeIdx
			}
		} else {
			flush(i, runeIdx)
		}
		runeIdx++
	}
	flush(len(text), runeIdx)
	return out
}
