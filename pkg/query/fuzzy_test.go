package query_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/fuzzy"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// corruptTerm applies one random rune substitution, so roughly half the
// probe terms exercise the automaton's edit budget instead of matching
// verbatim.
func corruptTerm(rng *rand.Rand, s string) string {
	runes := []rune(s)
	if len(runes) == 0 {
		return s
	}
	i := rng.Intn(len(runes))
	runes[i] = rune('0' + rng.Intn(10)) // digits never appear in generated truths
	return string(runes)
}

// fuzzyProbeTerms cuts probe terms out of a truth string: exact
// substrings and corrupted ones, across the supported distances.
func fuzzyProbeTerms(rng *rand.Rand, truth string) []struct {
	term string
	dist int
} {
	var out []struct {
		term string
		dist int
	}
	for _, n := range []int{4, 6, 8} {
		if len(truth) < n {
			continue
		}
		start := rng.Intn(len(truth) - n + 1)
		term := truth[start : start+n]
		dist := rng.Intn(fuzzy.MaxDistance + 1)
		out = append(out, struct {
			term string
			dist int
		}{term, dist})
		out = append(out, struct {
			term string
			dist int
		}{corruptTerm(rng, term), dist})
	}
	return out
}

// TestFuzzyEvalMatchesReadingsOracle is the leaf's ground-truth check:
// the product-automaton DP's probability for a fuzzy leaf must equal the
// brute-force sum, over every retained reading, of the reading's mass
// when the reading contains a window within the edit distance (the
// fuzzy.Within oracle — an implementation with no automaton in it).
func TestFuzzyEvalMatchesReadingsOracle(t *testing.T) {
	cases, err := testgen.Docs(12, testgen.Config{Length: 20, Seed: 41}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	probes := 0
	for _, c := range cases {
		for _, pr := range fuzzyProbeTerms(rng, c.Truth) {
			q, err := query.Fuzzy(pr.term, pr.dist)
			if err != nil {
				t.Fatalf("Fuzzy(%q, %d): %v", pr.term, pr.dist, err)
			}
			var want float64
			c.Doc.Readings(func(text string, prob float64) bool {
				if fuzzy.Within(text, pr.term, pr.dist) {
					want += prob
				}
				return true
			})
			got := q.Eval(c.Doc)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("doc %s: P(fuzzy(%q, %d)) = %v, oracle %v", c.Doc.ID, pr.term, pr.dist, got, want)
			}
			probes++
		}
	}
	if probes < 30 {
		t.Fatalf("only %d probes exercised; the generator config is too small", probes)
	}
}

// TestFuzzyEvalFSTMatchesEnumeration checks the exact-oracle path: the
// fuzzy product automaton over the unapproximated SFST must agree with
// full path enumeration.
func TestFuzzyEvalFSTMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for seed := int64(1); seed <= 4; seed++ {
		truth, f := testgen.MustGenerate(testgen.Config{Length: 8, Seed: seed})
		dist := enumerate(f)
		var total float64
		for _, p := range dist {
			total += p
		}
		for _, pr := range fuzzyProbeTerms(rng, truth) {
			q, err := query.Fuzzy(pr.term, pr.dist)
			if err != nil {
				t.Fatalf("Fuzzy(%q, %d): %v", pr.term, pr.dist, err)
			}
			var want float64
			for s, p := range dist {
				if fuzzy.Within(s, pr.term, pr.dist) {
					want += p
				}
			}
			want /= total
			got, err := q.EvalFST(f)
			if err != nil {
				t.Fatalf("EvalFST fuzzy(%q, %d): %v", pr.term, pr.dist, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("seed %d: P(fuzzy(%q, %d)) = %v, enumeration %v", seed, pr.term, pr.dist, got, want)
			}
		}
	}
}

// TestFuzzyPlanNoFalseNegative is the planner's property test against
// the enumerate-readings oracle: for random fuzzy probes over a real
// corpus and a real q-gram index, every document with any oracle-matching
// retained reading must be in the plan's candidate set. (Eval > 0 iff
// such a reading exists, but the oracle here is deliberately
// automaton-free.)
func TestFuzzyPlanNoFalseNegative(t *testing.T) {
	ctx := context.Background()
	st, ix, truths := candidateCorpus(t, 50, 83)
	rng := rand.New(rand.NewSource(29))
	pruned := 0
	for _, truth := range truths {
		for _, pr := range fuzzyProbeTerms(rng, truth) {
			q, err := query.Fuzzy(pr.term, pr.dist)
			if err != nil {
				t.Fatalf("Fuzzy(%q, %d): %v", pr.term, pr.dist, err)
			}
			cand := q.Plan(3).Candidates(ix)
			if cand == nil {
				continue // degraded to scan: trivially no false negatives
			}
			pruned++
			if err := st.Scan(ctx, func(d *staccato.Doc) error {
				matches := false
				d.Readings(func(text string, _ float64) bool {
					matches = fuzzy.Within(text, pr.term, pr.dist)
					return !matches
				})
				if matches && !cand.Has(d.ID) {
					t.Errorf("fuzzy(%q, %d): doc %s has a matching reading but was pruned", pr.term, pr.dist, d.ID)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if pruned < 20 {
		t.Fatalf("only %d probes produced prunable plans; the property was barely exercised", pruned)
	}
}

// TestFuzzySearchByteIdenticalAcrossModes runs one fuzzy boolean query
// through all three engine paths at several worker counts and demands
// byte-identical rankings.
func TestFuzzySearchByteIdenticalAcrossModes(t *testing.T) {
	ctx := context.Background()
	st, ix, truths := candidateCorpus(t, 40, 97)
	// Pick the first corrupted probe whose plan prunes and whose scan
	// finds matches — the generator does not guarantee any particular
	// truth reading was retained, so probe until the test has teeth.
	rng := rand.New(rand.NewSource(3))
	var q *query.Query
	var cand *query.CandidateSet
	probe := query.NewEngine(st, query.EngineOptions{Workers: 1})
	for _, truth := range truths {
		cq := mustQ(query.Fuzzy(corruptTerm(rng, truth[5:12]), 1))
		cc := cq.Plan(3).Candidates(ix)
		if cc == nil {
			continue
		}
		res, err := probe.Search(ctx, cq, query.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) > 0 {
			q, cand = cq, cc
			break
		}
	}
	if q == nil {
		t.Fatal("no probe term produced a prunable, non-vacuous query")
	}
	var baseline []query.Result
	for _, workers := range []int{1, 2, 8} {
		eng := query.NewEngine(st, query.EngineOptions{Workers: workers})
		scan, err := eng.Search(ctx, q, query.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		prunedScan, err := eng.Search(ctx, q, query.SearchOptions{Candidates: cand})
		if err != nil {
			t.Fatal(err)
		}
		candOnly, err := eng.SearchCandidates(ctx, q, cand, query.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = scan
		}
		for name, got := range map[string][]query.Result{"scan": scan, "pruned-scan": prunedScan, "candidate-only": candOnly} {
			if !reflect.DeepEqual(got, baseline) {
				t.Errorf("workers=%d %s: results diverge from baseline", workers, name)
			}
		}
	}
}

// TestFuzzyRescoreDeterministicAcrossModes: with a lexicon rescorer in
// SearchOptions, all three execution paths still agree bit-for-bit.
func TestFuzzyRescoreDeterministicAcrossModes(t *testing.T) {
	ctx := context.Background()
	st, ix, truths := candidateCorpus(t, 30, 59)
	term := truths[1][3:10]
	q := mustQ(query.Fuzzy(term, 1))
	cand := q.Plan(3).Candidates(ix)
	if cand == nil {
		t.Fatal("probe term should produce a prunable plan")
	}
	lex := fuzzy.NewLexicon([]string{"the", "and", truths[2][:4]})
	rescore := lex.Rescorer(fuzzy.DefaultBoost)
	var baseline []query.Result
	for _, workers := range []int{1, 2, 8} {
		eng := query.NewEngine(st, query.EngineOptions{Workers: workers})
		scan, err := eng.Search(ctx, q, query.SearchOptions{Rescore: rescore})
		if err != nil {
			t.Fatal(err)
		}
		prunedScan, err := eng.Search(ctx, q, query.SearchOptions{Candidates: cand, Rescore: rescore})
		if err != nil {
			t.Fatal(err)
		}
		candOnly, err := eng.SearchCandidates(ctx, q, cand, query.SearchOptions{Rescore: rescore})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = scan
		}
		for name, got := range map[string][]query.Result{"scan": scan, "pruned-scan": prunedScan, "candidate-only": candOnly} {
			if !reflect.DeepEqual(got, baseline) {
				t.Errorf("workers=%d %s: rescored results diverge from baseline", workers, name)
			}
		}
	}
}

func TestFuzzyValidation(t *testing.T) {
	for _, c := range []struct {
		term string
		dist int
	}{
		{"", 0},
		{"ab", 2},   // term no longer than distance
		{"abc", 3},  // above fuzzy.MaxDistance
		{"abc", -1}, // negative distance
	} {
		if _, err := query.Fuzzy(c.term, c.dist); err == nil {
			t.Errorf("Fuzzy(%q, %d) should be rejected", c.term, c.dist)
		}
	}
	if _, err := query.Term("abc", query.ModeFuzzy); err != nil {
		t.Errorf("Term in ModeFuzzy should compile at distance 0: %v", err)
	}
}

// TestFuzzyDistanceZeroAgreesWithSubstring: the degenerate automaton is
// a slower substring matcher; its probabilities must agree exactly.
func TestFuzzyDistanceZeroAgreesWithSubstring(t *testing.T) {
	cases, err := testgen.Docs(5, testgen.Config{Length: 16, Seed: 61}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		term := c.Truth[2:7]
		fz := mustQ(query.Fuzzy(term, 0))
		sub := mustQ(query.Substring(term))
		got, want := fz.Eval(c.Doc), sub.Eval(c.Doc)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("doc %s: fuzzy-0 %v != substring %v for %q", c.Doc.ID, got, want, term)
		}
	}
}

func TestFuzzyLeafDedupOnDistance(t *testing.T) {
	a := mustQ(query.Fuzzy("abcdef", 1))
	b := mustQ(query.Fuzzy("abcdef", 2))
	c := mustQ(query.Fuzzy("abcdef", 1))
	if got := query.And(a, b).NumTerms(); got != 2 {
		t.Errorf("distinct distances must compile distinct automata: NumTerms=%d, want 2", got)
	}
	if got := query.And(a, c).NumTerms(); got != 1 {
		t.Errorf("identical (term, dist) leaves must share one automaton: NumTerms=%d, want 1", got)
	}
}

func TestFuzzyStringAndPlanRender(t *testing.T) {
	q := mustQ(query.Fuzzy("staccato", 1))
	if got := q.String(); got != `fuzzy("staccato", 1)` {
		t.Errorf("String() = %q", got)
	}
	plan := q.Plan(3)
	if !plan.Prunable() {
		t.Fatal("8-rune term at distance 1 should be prunable at q=3 (pieces of 4)")
	}
	s := plan.String()
	if want := `or(grams(fuzzy("stac", 1) ×2), grams(fuzzy("cato", 1) ×2))`; s != want {
		t.Errorf("plan = %q, want %q", s, want)
	}

	// Too short to split into distance+1 grammable pieces: degrade to scan.
	short := mustQ(query.Fuzzy("abcde", 1)) // floor(5/2)=2 < 3
	if short.Plan(3).Prunable() {
		t.Errorf("plan %q should degrade to scan", short.Plan(3).String())
	}
}

// TestFuzzyPlanPieceGramsAreSound spot-checks the pigeonhole lowering on
// a crafted example: a variant with one edit must still hit one piece's
// full gram set.
func TestFuzzyPlanPieceGramsAreSound(t *testing.T) {
	q := mustQ(query.Fuzzy("abcdefgh", 1)) // pieces "abcd", "efgh"
	src := &fakeSource{byGram: map[string][]string{
		// d1 holds "abxdefgh": the edit lands in piece 1, piece 2's grams all present.
		"efg": {"d1"}, "fgh": {"d1"},
		// d2 holds text with neither piece intact.
		"abc": {"d3"}, "bcd": {"d3"},
	}}
	cand := q.Plan(3).Candidates(src)
	if cand == nil {
		t.Fatal("expected a prunable plan")
	}
	for _, id := range []string{"d1", "d3"} {
		if !cand.Has(id) {
			t.Errorf("doc %s intact on one piece must be a candidate", id)
		}
	}
	if cand.Has("d2") {
		t.Error("doc with no piece intact should be prunable")
	}
}

func TestFuzzySpansReportMatchedVariant(t *testing.T) {
	q := mustQ(query.Fuzzy("staccato", 1))
	ok, spans := q.MatchText("the staccat0 system")
	if !ok || len(spans) != 1 {
		t.Fatalf("MatchText: ok=%v spans=%v", ok, spans)
	}
	sp := spans[0]
	if sp.Term != "staccat0" {
		t.Errorf("span term = %q, want the matched variant \"staccat0\"", sp.Term)
	}
	if sp.Start != 4 || sp.End != 12 || sp.RuneStart != 4 || sp.RuneEnd != 12 {
		t.Errorf("span offsets = %+v", sp)
	}

	// Rune-level offsets with multi-byte text before the match.
	q2 := mustQ(query.Fuzzy("日本語", 1))
	ok, spans = q2.MatchText("この日木語の")
	if !ok || len(spans) != 1 {
		t.Fatalf("unicode MatchText: ok=%v spans=%v", ok, spans)
	}
	if got := spans[0].Term; got != "日木語" {
		t.Errorf("unicode span term = %q, want \"日木語\"", got)
	}
	if spans[0].RuneStart != 2 || spans[0].RuneEnd != 5 {
		t.Errorf("unicode span rune offsets = %+v", spans[0])
	}

	// A non-matching text yields no spans and no match.
	if ok, spans := q.MatchText("nothing here"); ok || len(spans) != 0 {
		t.Errorf("non-match: ok=%v spans=%v", ok, spans)
	}

	// Two well-separated occurrences yield two spans.
	ok, spans = q.MatchText("staccat0 ... staccato")
	if !ok || len(spans) != 2 {
		t.Fatalf("two occurrences: ok=%v spans=%v", ok, spans)
	}
	if spans[0].Term != "staccat0" || spans[1].Term != "staccato" {
		t.Errorf("span terms = %q, %q", spans[0].Term, spans[1].Term)
	}
}

// TestFuzzySpanExactPreferredOverSloppy: when the text contains the term
// verbatim, the reported window is the term itself, not a wider window
// that also fits the edit budget.
func TestFuzzySpanExactPreferredOverSloppy(t *testing.T) {
	q := mustQ(query.Fuzzy("abcdef", 1))
	ok, spans := q.MatchText("xxabcdefxx")
	if !ok || len(spans) != 1 {
		t.Fatalf("ok=%v spans=%v", ok, spans)
	}
	if spans[0].Term != "abcdef" {
		t.Errorf("span term = %q, want the exact occurrence", spans[0].Term)
	}
}

func TestSnippetContextRunes(t *testing.T) {
	d := doc([]staccato.Alt{{Text: "the staccat0 system runs", Prob: 1}})
	q := mustQ(query.Fuzzy("staccato", 1))
	snips := q.Snippets(d, query.SnippetOptions{ContextRunes: 4})
	if len(snips.Readings) != 1 || len(snips.Readings[0].Spans) != 1 {
		t.Fatalf("snippets = %+v", snips)
	}
	sp := snips.Readings[0].Spans[0]
	if sp.Context != "the staccat0 sys" {
		t.Errorf("context = %q, want \"the staccat0 sys\" (±4 runes, clipped at the left edge)", sp.Context)
	}
	// Zero leaves Context empty — the wire format omits it.
	snips = q.Snippets(d, query.SnippetOptions{})
	if got := snips.Readings[0].Spans[0].Context; got != "" {
		t.Errorf("context without ContextRunes = %q, want empty", got)
	}
}
