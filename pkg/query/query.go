// Package query answers probabilistic text queries over Staccato
// documents. Instead of matching against one string, a query computes the
// probability that the document's true text satisfies a predicate, summing
// over the readings the Doc retains — including readings whose match spans
// a chunk boundary.
//
// The unit of the API is the compiled Query: an immutable value built from
// Substring and Keyword leaves combined with And, Or, and Not. Each leaf
// term is compiled once to a small deterministic automaton; the Query can
// then be evaluated against any number of documents, from any number of
// goroutines, without recompiling.
//
// Evaluation is dynamic programming across the chunk path sets: a
// probability distribution over automaton states is pushed through the
// chunks in one left-to-right pass, so cost is linear in the document
// regardless of how many full readings (k^chunks) the Doc encodes. Boolean
// queries run the DP over the product of the leaf automata, which keeps
// the correlations between terms that flow through shared readings —
// P(a AND b) is in general NOT P(a)·P(b), because the same alternative may
// contain both terms (positive correlation) or terms may live on mutually
// exclusive alternatives (negative correlation). The product DP gets those
// cases right where naive per-term multiplication does not.
//
// For ground truth, Query.EvalFST evaluates the same predicate exactly on
// the unapproximated SFST by running the product automaton over the
// transducer's state graph — the "FullSFST" baseline of the paper, and the
// upper bound the Staccato dial converges to as chunks decrease and k
// grows.
//
// Corpus-scale execution lives in Engine, which runs one compiled Query
// against every document in a store.DocStore through a worker pool and
// streams ranked Results. Query.Plan extracts the conservatively
// required gram sets from the compiled formula; evaluated against an
// inverted q-gram index (any PostingSource), the resulting CandidateSet
// lets the Engine skip documents that provably cannot match, with
// byte-identical results either way.
package query

import (
	"fmt"
	"strings"
)

// Mode selects how a term must occur in the document text.
type Mode int

const (
	// ModeSubstring matches the term anywhere in the text.
	ModeSubstring Mode = iota
	// ModeKeyword matches the term as a whole token: the occurrence must
	// be delimited by non-word characters (or the document edges). Terms
	// must consist of word characters only.
	ModeKeyword
	// ModeFuzzy matches any substring within a bounded edit distance of
	// the term (a Levenshtein automaton leaf); the distance rides on the
	// leaf. Fuzzy(term, 0) is semantically ModeSubstring.
	ModeFuzzy
)

// Query is a compiled boolean predicate over document text. Leaves are
// built with Substring and Keyword; composites with And, Or, and Not. A
// Query is immutable after construction and safe for concurrent use —
// compile once, evaluate everywhere.
type Query struct {
	leaves []leaf
	expr   expr
}

// leaf is one compiled term automaton. Duplicate (term, mode, dist)
// triples are shared when queries are combined, so a term appearing in
// several branches is tracked by a single automaton during evaluation.
// dist is meaningful only for ModeFuzzy and zero otherwise.
type leaf struct {
	term string
	mode Mode
	dist int
	auto automaton
}

// Substring compiles a query matching documents whose text contains term
// anywhere.
func Substring(term string) (*Query, error) { return newTerm(term, ModeSubstring, 0) }

// Keyword compiles a query matching documents whose text contains term as
// a whole token delimited by non-word characters or the document edges.
// The term must consist of word characters only.
func Keyword(term string) (*Query, error) { return newTerm(term, ModeKeyword, 0) }

// Fuzzy compiles a query matching documents whose text contains any
// substring within edit distance dist (Levenshtein: substitutions,
// insertions, deletions, counted over runes) of term. dist must be in
// [0, fuzzy.MaxDistance] and the term must be longer than dist runes —
// otherwise every text would match. Fuzzy(term, 0) matches exactly what
// Substring(term) matches, evaluated through the Levenshtein automaton.
func Fuzzy(term string, dist int) (*Query, error) { return newTerm(term, ModeFuzzy, dist) }

// Term compiles a single-term query in the given mode. For ModeFuzzy it
// compiles at distance 0; use Fuzzy for a real edit-distance leaf.
func Term(term string, mode Mode) (*Query, error) { return newTerm(term, mode, 0) }

func newTerm(term string, mode Mode, dist int) (*Query, error) {
	a, err := compile(term, mode, dist)
	if err != nil {
		return nil, err
	}
	return &Query{
		leaves: []leaf{{term: term, mode: mode, dist: dist, auto: a}},
		expr:   leafExpr(0),
	}, nil
}

// And returns the conjunction of the given queries: the document must
// satisfy every operand. Correlations between operands through shared
// readings are respected. A nil or zero-value operand is treated as a
// query that matches nothing.
func And(first *Query, rest ...*Query) *Query { return combine(opAnd, first, rest) }

// Or returns the disjunction of the given queries: the document must
// satisfy at least one operand. A nil or zero-value operand is treated
// as a query that matches nothing.
func Or(first *Query, rest ...*Query) *Query { return combine(opOr, first, rest) }

// Not returns the negation of q: the probability that the document does
// NOT satisfy q. A nil or zero-value q matches nothing, so its negation
// matches everything.
func Not(q *Query) *Query {
	out := &Query{}
	if q != nil {
		out.leaves = append([]leaf(nil), q.leaves...)
	}
	out.expr = notExpr{exprOf(q)}
	return out
}

// exprOf returns q's formula, mapping nil and zero-value (never
// compiled) queries to the constant-false predicate so the combinators
// honor the documented "matches nothing" semantics instead of carrying
// a nil expr into evaluation.
func exprOf(q *Query) expr {
	if q == nil || q.expr == nil {
		return constExpr(false)
	}
	return q.expr
}

type opKind int

const (
	opAnd opKind = iota
	opOr
)

func combine(op opKind, first *Query, rest []*Query) *Query {
	out := &Query{}
	if first != nil {
		out.leaves = append([]leaf(nil), first.leaves...)
	}
	kids := make([]expr, 0, 1+len(rest))
	kids = append(kids, exprOf(first))
	for _, q := range rest {
		kids = append(kids, out.merge(q))
	}
	if len(kids) == 1 {
		out.expr = kids[0]
		return out
	}
	if op == opAnd {
		out.expr = andExpr(kids)
	} else {
		out.expr = orExpr(kids)
	}
	return out
}

// merge folds src's leaves into q, sharing automata for (term, mode,
// dist) triples q already tracks, and returns src's formula rewritten
// against q's leaf numbering.
func (q *Query) merge(src *Query) expr {
	if src == nil || src.expr == nil {
		return constExpr(false)
	}
	to := make([]int, len(src.leaves))
	for i, lf := range src.leaves {
		j := -1
		for k, have := range q.leaves {
			if have.term == lf.term && have.mode == lf.mode && have.dist == lf.dist {
				j = k
				break
			}
		}
		if j < 0 {
			j = len(q.leaves)
			q.leaves = append(q.leaves, lf)
		}
		to[i] = j
	}
	return src.expr.remap(to)
}

// String renders the query in a lisp-ish form, e.g.
// and(substr("foo"), not(kw("bar"))). A zero-value Query renders as
// "false", matching its matches-nothing evaluation semantics.
func (q *Query) String() string {
	var sb strings.Builder
	exprOf(q).render(&sb, q.leaves)
	return sb.String()
}

// NumTerms returns the number of distinct compiled term automata the query
// tracks during evaluation.
func (q *Query) NumTerms() int { return len(q.leaves) }

// expr is a boolean formula over leaf indices. Nodes are immutable and may
// be shared freely between Queries.
type expr interface {
	// eval decides the formula given each leaf's matched bit.
	eval(bits []bool) bool
	// remap returns a copy of the formula with leaf i renumbered to to[i].
	remap(to []int) expr
	// render appends a human-readable form to sb.
	render(sb *strings.Builder, leaves []leaf)
}

// constExpr is a constant predicate; it appears only where a nil or
// zero-value Query was handed to a combinator.
type constExpr bool

func (e constExpr) eval([]bool) bool { return bool(e) }
func (e constExpr) remap([]int) expr { return e }
func (e constExpr) render(sb *strings.Builder, _ []leaf) {
	if e {
		sb.WriteString("true")
	} else {
		sb.WriteString("false")
	}
}

type leafExpr int

func (e leafExpr) eval(bits []bool) bool { return bits[e] }
func (e leafExpr) remap(to []int) expr   { return leafExpr(to[e]) }
func (e leafExpr) render(sb *strings.Builder, leaves []leaf) {
	lf := leaves[e]
	switch lf.mode {
	case ModeKeyword:
		fmt.Fprintf(sb, "kw(%q)", lf.term)
	case ModeFuzzy:
		fmt.Fprintf(sb, "fuzzy(%q, %d)", lf.term, lf.dist)
	default:
		fmt.Fprintf(sb, "substr(%q)", lf.term)
	}
}

type andExpr []expr

func (e andExpr) eval(bits []bool) bool {
	for _, kid := range e {
		if !kid.eval(bits) {
			return false
		}
	}
	return true
}

func (e andExpr) remap(to []int) expr { return andExpr(remapAll(e, to)) }
func (e andExpr) render(sb *strings.Builder, leaves []leaf) {
	renderList(sb, "and", e, leaves)
}

type orExpr []expr

func (e orExpr) eval(bits []bool) bool {
	for _, kid := range e {
		if kid.eval(bits) {
			return true
		}
	}
	return false
}

func (e orExpr) remap(to []int) expr { return orExpr(remapAll(e, to)) }
func (e orExpr) render(sb *strings.Builder, leaves []leaf) {
	renderList(sb, "or", e, leaves)
}

type notExpr struct{ sub expr }

func (e notExpr) eval(bits []bool) bool { return !e.sub.eval(bits) }
func (e notExpr) remap(to []int) expr   { return notExpr{e.sub.remap(to)} }
func (e notExpr) render(sb *strings.Builder, leaves []leaf) {
	sb.WriteString("not(")
	e.sub.render(sb, leaves)
	sb.WriteString(")")
}

func remapAll(kids []expr, to []int) []expr {
	out := make([]expr, len(kids))
	for i, kid := range kids {
		out[i] = kid.remap(to)
	}
	return out
}

func renderList(sb *strings.Builder, name string, kids []expr, leaves []leaf) {
	sb.WriteString(name)
	sb.WriteString("(")
	for i, kid := range kids {
		if i > 0 {
			sb.WriteString(", ")
		}
		kid.render(sb, leaves)
	}
	sb.WriteString(")")
}
