// Package query answers probabilistic text queries over Staccato
// documents. Instead of matching against one string, a query computes the
// probability that the document's true text contains the term, summing
// over the readings the Doc retains — including readings whose match spans
// a chunk boundary.
//
// Evaluation is dynamic programming across the chunk path sets: the query
// term is compiled to a small deterministic automaton, and a probability
// distribution over automaton states is pushed through the chunks in one
// left-to-right pass. The cost is O(chunks × k × |alt| × states), linear
// in the document regardless of how many full readings (k^chunks) the Doc
// encodes.
//
// For ground truth, FSTSubstringProb evaluates the same query exactly on
// the unapproximated SFST by running the automaton over the transducer's
// state graph — the "FullSFST" baseline of the paper, and the upper bound
// the Staccato dial converges to as chunks decrease and k grows.
package query

import (
	"fmt"
	"sort"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/pkg/fst"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Mode selects how a term must occur in the document text.
type Mode int

const (
	// ModeSubstring matches the term anywhere in the text.
	ModeSubstring Mode = iota
	// ModeKeyword matches the term as a whole token: the occurrence must
	// be delimited by non-word characters (or the document edges). Terms
	// must consist of word characters only.
	ModeKeyword
)

// Match is one query result: the probability that the document contains
// the term under the Doc's retained distribution.
type Match struct {
	Term string
	Prob float64
}

// Eval evaluates each term against the document and returns matches sorted
// by descending probability (ties broken by term).
func Eval(d *staccato.Doc, terms []string, mode Mode) ([]Match, error) {
	out := make([]Match, 0, len(terms))
	for _, t := range terms {
		a, err := compile(t, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, Match{Term: t, Prob: evalDoc(d, a)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Term < out[j].Term
	})
	return out, nil
}

// SubstringProb returns the probability that the document text contains
// term as a substring.
func SubstringProb(d *staccato.Doc, term string) (float64, error) {
	a, err := compile(term, ModeSubstring)
	if err != nil {
		return 0, err
	}
	return evalDoc(d, a), nil
}

// KeywordProb returns the probability that the document text contains term
// as a whole token.
func KeywordProb(d *staccato.Doc, term string) (float64, error) {
	a, err := compile(term, ModeKeyword)
	if err != nil {
		return 0, err
	}
	return evalDoc(d, a), nil
}

// evalDoc pushes a distribution over automaton states through the chunks.
// Mass that reaches the accepting condition is absorbed into matched; the
// remainder carries partial-match state across chunk boundaries, which is
// how matches spanning two chunks are credited.
func evalDoc(d *staccato.Doc, a automaton) float64 {
	vec := make([]float64, a.numStates())
	vec[a.start()] = 1
	matched := 0.0
	for _, ch := range d.Chunks {
		next := make([]float64, len(vec))
		for q, p := range vec {
			if p == 0 {
				continue
			}
			for _, alt := range ch.Alts {
				q2, hit := runString(a, q, alt.Text)
				if hit {
					matched += p * alt.Prob
				} else {
					next[q2] += p * alt.Prob
				}
			}
		}
		vec = next
	}
	for q, p := range vec {
		if p > 0 && a.acceptAtEnd(q) {
			matched += p
		}
	}
	return matched
}

// runString advances the automaton over s from state q, reporting a match
// as soon as one completes (matching is absorbing for "contains" queries).
func runString(a automaton, q int, s string) (int, bool) {
	for _, r := range s {
		var hit bool
		q, hit = a.step(q, r)
		if hit {
			return q, true
		}
	}
	return q, false
}

// FSTSubstringProb computes the exact probability that the string emitted
// by the transducer contains term, without materializing any paths: the
// matching automaton runs directly over the SFST's state graph, with a
// probability vector over (fst state × automaton state). Polynomial in the
// transducer size even when the path count is astronomical.
func FSTSubstringProb(f *fst.SFST, term string) (float64, error) {
	a, err := compile(term, ModeSubstring)
	if err != nil {
		return 0, err
	}
	n := f.NumStates()
	m := a.numStates()
	mass := make([][]float64, n)
	for i := range mass {
		mass[i] = make([]float64, m)
	}
	hitMass := make([]float64, n)
	mass[0][a.start()] = 1

	var matchedTotal, total float64
	for s := 0; s < n; s++ {
		if f.IsFinal(fst.StateID(s)) {
			matchedTotal += hitMass[s]
			total += hitMass[s]
			for _, p := range mass[s] {
				total += p
			}
		}
		for _, arc := range f.Arcs(fst.StateID(s)) {
			p := core.ProbFromWeight(arc.Weight)
			to := arc.To
			hitMass[to] += hitMass[s] * p
			for q, pq := range mass[s] {
				if pq == 0 {
					continue
				}
				if arc.Label == fst.Epsilon {
					mass[to][q] += pq * p
					continue
				}
				q2, hit := a.step(q, arc.Label)
				if hit {
					hitMass[to] += pq * p
				} else {
					mass[to][q2] += pq * p
				}
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("query: transducer has no accepting mass")
	}
	return matchedTotal / total, nil
}
