package query_test

import (
	"math"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/core"
	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/fst"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// doc builds a Doc literal from per-chunk (text, prob) pairs.
func doc(chunks ...[]staccato.Alt) *staccato.Doc {
	d := &staccato.Doc{ID: "t"}
	for _, alts := range chunks {
		d.Chunks = append(d.Chunks, staccato.PathSet{Alts: alts, Retained: 1})
	}
	return d
}

// substrProb, kwProb, and fstSubstrProb are the compiled-Query forms of
// the deleted v1 free functions, kept as test helpers so the table tests
// below stay term-oriented.
func substrProb(d *staccato.Doc, term string) (float64, error) {
	q, err := query.Substring(term)
	if err != nil {
		return 0, err
	}
	return q.Eval(d), nil
}

func kwProb(d *staccato.Doc, term string) (float64, error) {
	q, err := query.Keyword(term)
	if err != nil {
		return 0, err
	}
	return q.Eval(d), nil
}

func fstSubstrProb(f *fst.SFST, term string) (float64, error) {
	q, err := query.Substring(term)
	if err != nil {
		return 0, err
	}
	return q.EvalFST(f)
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestSubstringWithinChunk(t *testing.T) {
	d := doc([]staccato.Alt{{Text: "hello", Prob: 0.8}, {Text: "hallo", Prob: 0.2}})
	for _, tc := range []struct {
		term string
		want float64
	}{
		{"ell", 0.8},
		{"allo", 0.2},
		{"llo", 1.0},
		{"hello", 0.8},
		{"xyz", 0},
	} {
		p, err := substrProb(d, tc.term)
		if err != nil {
			t.Fatalf("%q: %v", tc.term, err)
		}
		approx(t, "P("+tc.term+")", p, tc.want)
	}
}

func TestSubstringSpansChunkBoundary(t *testing.T) {
	d := doc(
		[]staccato.Alt{{Text: "ab", Prob: 0.5}, {Text: "ax", Prob: 0.5}},
		[]staccato.Alt{{Text: "cd", Prob: 0.7}, {Text: "xd", Prob: 0.3}},
	)
	// "bc" requires first chunk "ab" and second "cd": 0.5 * 0.7.
	p, err := substrProb(d, "bc")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, `P(bc)`, p, 0.35)
	// "xx" spans as ...x + x...: "ax" then "xd": 0.5 * 0.3.
	p, err = substrProb(d, "xx")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, `P(xx)`, p, 0.15)
}

func TestSubstringThreeChunkSpan(t *testing.T) {
	d := doc(
		[]staccato.Alt{{Text: "a", Prob: 0.9}, {Text: "z", Prob: 0.1}},
		[]staccato.Alt{{Text: "b", Prob: 0.6}, {Text: "q", Prob: 0.4}},
		[]staccato.Alt{{Text: "c", Prob: 0.5}, {Text: "y", Prob: 0.5}},
	)
	p, err := substrProb(d, "abc")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "P(abc)", p, 0.9*0.6*0.5)
}

func TestSubstringDoesNotDoubleCount(t *testing.T) {
	// Both alternatives contain "a"; probability must be exactly 1, not
	// the sum of per-occurrence masses.
	d := doc([]staccato.Alt{{Text: "aa", Prob: 0.5}, {Text: "ba", Prob: 0.5}})
	p, err := substrProb(d, "a")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "P(a)", p, 1)
}

func TestCompiledTermsAcrossAlternatives(t *testing.T) {
	d := doc([]staccato.Alt{{Text: "abc", Prob: 0.6}, {Text: "abd", Prob: 0.4}})
	for _, tc := range []struct {
		term string
		want float64
	}{
		{"ab", 1},
		{"abd", 0.4},
		{"zz", 0},
	} {
		p, err := substrProb(d, tc.term)
		if err != nil {
			t.Fatalf("%q: %v", tc.term, err)
		}
		approx(t, "P("+tc.term+")", p, tc.want)
	}
}

func TestEmptyTermRejected(t *testing.T) {
	d := doc([]staccato.Alt{{Text: "x", Prob: 1}})
	if _, err := substrProb(d, ""); err == nil {
		t.Error("empty substring term should be rejected")
	}
	if _, err := kwProb(d, ""); err == nil {
		t.Error("empty keyword term should be rejected")
	}
}

func TestKeywordBoundaries(t *testing.T) {
	d := doc([]staccato.Alt{{Text: "the cat sat", Prob: 0.5}, {Text: "the category", Prob: 0.5}})
	for _, tc := range []struct {
		term string
		want float64
	}{
		{"cat", 0.5},      // "category" must not match as a keyword
		{"the", 1.0},      // at document start
		{"sat", 0.5},      // at document end
		{"category", 0.5}, // whole token at end
		{"at", 0},         // interior substring only
	} {
		p, err := kwProb(d, tc.term)
		if err != nil {
			t.Fatalf("%q: %v", tc.term, err)
		}
		approx(t, "keyword P("+tc.term+")", p, tc.want)
	}
}

func TestKeywordSpansChunkBoundary(t *testing.T) {
	d := doc(
		[]staccato.Alt{{Text: "big ca", Prob: 0.6}, {Text: "big co", Prob: 0.4}},
		[]staccato.Alt{{Text: "t nap", Prob: 0.5}, {Text: "ttle ", Prob: 0.5}},
	)
	// "cat" assembles from "big ca" + "t nap" only: 0.6 * 0.5. The
	// "ca"+"ttle " combination spells "cattle", which must not match.
	p, err := kwProb(d, "cat")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "keyword P(cat)", p, 0.3)
	// "cattle" spans the boundary as a whole token.
	p, err = kwProb(d, "cattle")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "keyword P(cattle)", p, 0.3)
}

func TestKeywordRejectsNonWordTerm(t *testing.T) {
	d := doc([]staccato.Alt{{Text: "x", Prob: 1}})
	if _, err := kwProb(d, "two words"); err == nil {
		t.Error("keyword term with a space should be rejected")
	}
}

func TestKeywordRepeatedToken(t *testing.T) {
	// After "foofoo" fails the right-boundary check, a later clean "foo"
	// token must still match.
	d := doc([]staccato.Alt{{Text: "foofoo foo", Prob: 1}})
	p, err := kwProb(d, "foo")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "keyword P(foo)", p, 1)
	d2 := doc([]staccato.Alt{{Text: "foofoo", Prob: 1}})
	p, err = kwProb(d2, "foo")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "keyword P(foo) in foofoo", p, 0)
}

// TestFSTSubstringMatchesBruteForce checks the exact transducer query
// against full path enumeration on small generated documents.
func TestFSTSubstringMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		truth, f := testgen.MustGenerate(testgen.Config{Length: 8, Seed: seed})
		dist := enumerate(f)
		var total float64
		for _, p := range dist {
			total += p
		}
		probes := map[string]bool{}
		for i := 0; i+3 <= len(truth); i++ {
			probes[truth[i:i+3]] = true
		}
		probes["zzz"] = true
		for probe := range probes {
			var want float64
			for s, p := range dist {
				if strings.Contains(s, probe) {
					want += p
				}
			}
			want /= total
			got, err := fstSubstrProb(f, probe)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, probe, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("seed %d: P(%q) = %v, brute force %v", seed, probe, got, want)
			}
		}
	}
}

// TestDocQueryMatchesBruteForce cross-checks the chunk DP against direct
// expansion of the product distribution.
func TestDocQueryMatchesBruteForce(t *testing.T) {
	_, f := testgen.MustGenerate(testgen.Config{Length: 12, Seed: 9})
	d, err := staccato.Build(f, "d", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var strs []string
	var probs []float64
	var cross func(i int, s string, p float64)
	cross = func(i int, s string, p float64) {
		if i == len(d.Chunks) {
			strs = append(strs, s)
			probs = append(probs, p)
			return
		}
		for _, alt := range d.Chunks[i].Alts {
			cross(i+1, s+alt.Text, p*alt.Prob)
		}
	}
	cross(0, "", 1)
	for _, probe := range []string{"ab", "th", "e", "qq", "xy"} {
		var want float64
		for i, s := range strs {
			if strings.Contains(s, probe) {
				want += probs[i]
			}
		}
		got, err := substrProb(d, probe)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("P(%q) = %v, brute force %v", probe, got, want)
		}
	}
}

// enumerate brute-forces the full path distribution of a small SFST.
func enumerate(f *fst.SFST) map[string]float64 {
	out := map[string]float64{}
	var walk func(s fst.StateID, prefix []rune, weight float64)
	walk = func(s fst.StateID, prefix []rune, weight float64) {
		if f.IsFinal(s) {
			out[string(prefix)] += core.ProbFromWeight(weight)
		}
		for _, a := range f.Arcs(s) {
			p := prefix
			if a.Label != fst.Epsilon {
				p = append(prefix[:len(prefix):len(prefix)], a.Label)
			}
			walk(a.To, p, weight+a.Weight)
		}
	}
	walk(f.Start(), nil, 0)
	return out
}
