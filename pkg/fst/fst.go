// Package fst implements the stochastic finite-state transducer (SFST)
// value type at the heart of Staccato. An SFST represents the full
// distribution an OCR engine emits for one document region: states are
// positions in the scanned image, arcs emit a character (or Epsilon for a
// deletion) with a probability carried as a negative-log weight. Every
// start→final path spells one candidate reading of the region, with
// probability exp(-sum of arc weights).
//
// SFSTs are built through a Builder and are immutable afterwards. Build
// validates the machine (acyclic, at least one accepting path), prunes
// states that are not on any accepting path, and renumbers the survivors
// in topological order with the start state at 0 — every downstream
// algorithm (Viterbi, chunking, query evaluation) relies on that
// normalization to run as a single forward sweep.
package fst

import "github.com/paper-repo/staccato-go/internal/core"

// StateID identifies a state within one SFST.
type StateID int32

// NoState is the null StateID, used for "no predecessor" markers.
const NoState StateID = -1

// Epsilon is the arc label for transitions that emit no character
// (deletions in OCR terms).
const Epsilon rune = -1

// Arc is a weighted, labeled transition. Weight is the negative natural
// log of the arc's probability, so weights are >= 0 and add along paths.
type Arc struct {
	To     StateID
	Label  rune
	Weight float64
}

// Prob returns the arc's probability, exp(-Weight).
func (a Arc) Prob() float64 { return core.ProbFromWeight(a.Weight) }

// SFST is an immutable stochastic finite-state transducer. States are
// numbered in topological order, the start state is always 0, and every
// state lies on at least one start→final path.
type SFST struct {
	arcs   [][]Arc
	finals []bool
	nArcs  int
}

// NumStates returns the number of states.
func (f *SFST) NumStates() int { return len(f.arcs) }

// NumArcs returns the total number of arcs.
func (f *SFST) NumArcs() int { return f.nArcs }

// Start returns the start state, which is always 0 after Build.
func (f *SFST) Start() StateID { return 0 }

// IsFinal reports whether s is an accepting state.
func (f *SFST) IsFinal(s StateID) bool {
	return s >= 0 && int(s) < len(f.finals) && f.finals[s]
}

// Finals returns the accepting states in ascending order.
func (f *SFST) Finals() []StateID {
	var out []StateID
	for s, ok := range f.finals {
		if ok {
			out = append(out, StateID(s))
		}
	}
	return out
}

// Arcs returns the outgoing arcs of s in canonical order. The returned
// slice is owned by the SFST and must not be modified.
func (f *SFST) Arcs(s StateID) []Arc { return f.arcs[s] }

// NumPaths returns the number of distinct start→final paths as a float64
// (the count grows exponentially with document length, so it is reported
// in floating point rather than an exact integer).
func (f *SFST) NumPaths() float64 {
	n := f.NumStates()
	count := make([]float64, n)
	count[0] = 1
	var total float64
	for s := 0; s < n; s++ {
		if f.finals[s] {
			total += count[s]
		}
		for _, a := range f.arcs[s] {
			count[a.To] += count[s]
		}
	}
	return total
}
