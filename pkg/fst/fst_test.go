package fst

import (
	"math"
	"reflect"
	"testing"

	"github.com/paper-repo/staccato-go/internal/core"
)

// buildThreeState builds the canonical hand-checkable transducer:
//
//	s0 --a(0.6)/b(0.4)--> s1 --x(0.9)/y(0.1)--> s2
//
// MAP path is "ax" with probability 0.54.
func buildThreeState(t *testing.T) *SFST {
	t.Helper()
	b := NewBuilder()
	s0, s1, s2 := b.AddState(), b.AddState(), b.AddState()
	b.AddArc(s0, s1, 'a', core.WeightFromProb(0.6))
	b.AddArc(s0, s1, 'b', core.WeightFromProb(0.4))
	b.AddArc(s1, s2, 'x', core.WeightFromProb(0.9))
	b.AddArc(s1, s2, 'y', core.WeightFromProb(0.1))
	b.SetStart(s0)
	b.SetFinal(s2)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

func TestViterbiThreeState(t *testing.T) {
	f := buildThreeState(t)
	got := f.Viterbi()
	if got.Output != "ax" {
		t.Errorf("MAP output = %q, want %q", got.Output, "ax")
	}
	if math.Abs(got.Prob-0.54) > 1e-12 {
		t.Errorf("MAP prob = %v, want 0.54", got.Prob)
	}
	if np := f.NumPaths(); np != 4 {
		t.Errorf("NumPaths = %v, want 4", np)
	}
}

func TestViterbiEpsilon(t *testing.T) {
	// s0 --a(0.6)/ε(0.4)--> s1 --b(1.0)--> s2: MAP is "ab"; the epsilon
	// path emits just "b".
	b := NewBuilder()
	s0, s1, s2 := b.AddState(), b.AddState(), b.AddState()
	b.AddArc(s0, s1, 'a', core.WeightFromProb(0.6))
	b.AddArc(s0, s1, Epsilon, core.WeightFromProb(0.4))
	b.AddArc(s1, s2, 'b', core.WeightFromProb(1))
	b.SetStart(s0)
	b.SetFinal(s2)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := f.Viterbi(); got.Output != "ab" || math.Abs(got.Prob-0.6) > 1e-12 {
		t.Errorf("Viterbi = %+v, want output ab prob 0.6", got)
	}
}

func TestViterbiPrefersShorterBranch(t *testing.T) {
	// Parallel branches of different lengths: direct 'm' (0.4) vs
	// two-arc "rn" (0.6 * 1.0). MAP must be "rn".
	b := NewBuilder()
	s0, s1, mid := b.AddState(), b.AddState(), b.AddState()
	b.AddArc(s0, s1, 'm', core.WeightFromProb(0.4))
	b.AddArc(s0, mid, 'r', core.WeightFromProb(0.6))
	b.AddArc(mid, s1, 'n', core.WeightFromProb(1))
	b.SetStart(s0)
	b.SetFinal(s1)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := f.Viterbi(); got.Output != "rn" || math.Abs(got.Prob-0.6) > 1e-12 {
		t.Errorf("Viterbi = %+v, want output rn prob 0.6", got)
	}
}

func TestBuildValidation(t *testing.T) {
	t.Run("no start", func(t *testing.T) {
		b := NewBuilder()
		s := b.AddState()
		b.SetFinal(s)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for missing start state")
		}
	})
	t.Run("no final", func(t *testing.T) {
		b := NewBuilder()
		s := b.AddState()
		b.SetStart(s)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for missing final state")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		b := NewBuilder()
		s0, s1 := b.AddState(), b.AddState()
		b.AddArc(s0, s1, 'a', 1)
		b.AddArc(s1, s0, 'b', 1)
		b.SetStart(s0)
		b.SetFinal(s1)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for cyclic transducer")
		}
	})
	t.Run("no accepting path", func(t *testing.T) {
		b := NewBuilder()
		s0, s1, s2 := b.AddState(), b.AddState(), b.AddState()
		b.AddArc(s0, s1, 'a', 1)
		_ = s2
		b.SetStart(s0)
		b.SetFinal(s2) // unreachable final
		if _, err := b.Build(); err == nil {
			t.Error("expected error for unreachable final state")
		}
	})
	t.Run("bad weight", func(t *testing.T) {
		b := NewBuilder()
		s0, s1 := b.AddState(), b.AddState()
		b.AddArc(s0, s1, 'a', -0.5)
		b.SetStart(s0)
		b.SetFinal(s1)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for negative weight")
		}
	})
	t.Run("invalid state", func(t *testing.T) {
		b := NewBuilder()
		s0 := b.AddState()
		b.AddArc(s0, StateID(99), 'a', 1)
		b.SetStart(s0)
		b.SetFinal(s0)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for arc to unknown state")
		}
	})
}

func TestBuildPrunesUselessStates(t *testing.T) {
	b := NewBuilder()
	s0, s1 := b.AddState(), b.AddState()
	dead := b.AddState() // reachable, but cannot reach a final
	b.AddArc(s0, s1, 'a', core.WeightFromProb(0.5))
	b.AddArc(s0, dead, 'x', core.WeightFromProb(0.5))
	b.SetStart(s0)
	b.SetFinal(s1)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if f.NumStates() != 2 {
		t.Errorf("NumStates = %d, want 2 (dead state pruned)", f.NumStates())
	}
	if f.NumArcs() != 1 {
		t.Errorf("NumArcs = %d, want 1", f.NumArcs())
	}
}

func TestBuildTopologicalNormalization(t *testing.T) {
	// Build states in a scrambled order; after Build every arc must go
	// from a lower to a strictly higher state ID and start must be 0.
	b := NewBuilder()
	s2 := b.AddState()
	s0 := b.AddState()
	s1 := b.AddState()
	b.AddArc(s0, s1, 'a', core.WeightFromProb(0.5))
	b.AddArc(s1, s2, 'b', core.WeightFromProb(0.5))
	b.SetStart(s0)
	b.SetFinal(s2)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if f.Start() != 0 {
		t.Errorf("Start = %d, want 0", f.Start())
	}
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.Arcs(StateID(s)) {
			if int(a.To) <= s {
				t.Errorf("arc %d→%d violates topological order", s, a.To)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	mk := func() *SFST {
		b := NewBuilder()
		s0, s1, s2 := b.AddState(), b.AddState(), b.AddState()
		b.AddArc(s0, s1, 'b', core.WeightFromProb(0.4))
		b.AddArc(s0, s1, 'a', core.WeightFromProb(0.6))
		b.AddArc(s1, s2, 'x', core.WeightFromProb(1))
		b.SetStart(s0)
		b.SetFinal(s2)
		f, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return f
	}
	if a, b := mk(), mk(); !reflect.DeepEqual(a, b) {
		t.Error("two identical build sequences produced different SFSTs")
	}
}
