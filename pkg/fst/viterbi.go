package fst

import (
	"math"

	"github.com/paper-repo/staccato-go/internal/core"
)

// PathResult is a single decoded path through an SFST: the emitted string
// (epsilon labels elided), its total negative-log weight, and the
// corresponding probability.
type PathResult struct {
	Output string
	Weight float64
	Prob   float64
}

// Viterbi returns the maximum-a-posteriori path — the single most likely
// reading of the document region, which is what a conventional OCR
// pipeline would store as "the" text. Because Build guarantees states are
// topologically ordered and every state is on an accepting path, this is
// one forward sweep over the arcs.
func (f *SFST) Viterbi() PathResult {
	n := f.NumStates()
	dist := make([]float64, n)
	prev := make([]StateID, n)
	label := make([]rune, n)
	for s := 1; s < n; s++ {
		dist[s] = math.Inf(1)
	}
	for i := range prev {
		prev[i] = NoState
	}
	for s := 0; s < n; s++ {
		if math.IsInf(dist[s], 1) {
			continue
		}
		for _, a := range f.arcs[s] {
			if w := dist[s] + a.Weight; w < dist[a.To] {
				dist[a.To] = w
				prev[a.To] = StateID(s)
				label[a.To] = a.Label
			}
		}
	}

	best := NoState
	bestW := math.Inf(1)
	for s := 0; s < n; s++ {
		if f.finals[s] && dist[s] < bestW {
			best = StateID(s)
			bestW = dist[s]
		}
	}

	var rev []rune
	for s := best; s != 0; s = prev[s] {
		if label[s] != Epsilon {
			rev = append(rev, label[s])
		}
	}
	return PathResult{
		Output: core.StringFromReversed(rev),
		Weight: bestW,
		Prob:   core.ProbFromWeight(bestW),
	}
}
