package fst

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates states and arcs and then produces a validated,
// normalized SFST. It is deterministic: the same sequence of calls always
// yields a byte-identical machine, which tests and the binary codec rely
// on.
//
// Errors are latched: the first invalid call is remembered and returned by
// Build, so construction code can chain calls without checking each one.
type Builder struct {
	arcs   [][]Arc
	start  StateID
	hasSt  bool
	finals map[StateID]bool
	err    error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{start: NoState, finals: make(map[StateID]bool)}
}

// AddState creates a new state and returns its (pre-normalization) ID.
func (b *Builder) AddState() StateID {
	b.arcs = append(b.arcs, nil)
	return StateID(len(b.arcs) - 1)
}

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

func (b *Builder) validState(s StateID) bool {
	return s >= 0 && int(s) < len(b.arcs)
}

// AddArc adds an arc from → to emitting label with the given negative-log
// weight. Use Epsilon as the label for a deletion. Weights must be finite
// and non-negative (probabilities in (0, 1]).
func (b *Builder) AddArc(from, to StateID, label rune, weight float64) {
	switch {
	case !b.validState(from):
		b.setErr(fmt.Errorf("fst: AddArc: invalid source state %d", from))
	case !b.validState(to):
		b.setErr(fmt.Errorf("fst: AddArc: invalid target state %d", to))
	case math.IsNaN(weight) || math.IsInf(weight, 0):
		b.setErr(fmt.Errorf("fst: AddArc(%d→%d): weight must be finite, got %v", from, to, weight))
	case weight < 0:
		b.setErr(fmt.Errorf("fst: AddArc(%d→%d): negative weight %v (probability > 1)", from, to, weight))
	default:
		b.arcs[from] = append(b.arcs[from], Arc{To: to, Label: label, Weight: weight})
	}
}

// SetStart marks s as the start state.
func (b *Builder) SetStart(s StateID) {
	if !b.validState(s) {
		b.setErr(fmt.Errorf("fst: SetStart: invalid state %d", s))
		return
	}
	b.start = s
	b.hasSt = true
}

// SetFinal marks s as an accepting state.
func (b *Builder) SetFinal(s StateID) {
	if !b.validState(s) {
		b.setErr(fmt.Errorf("fst: SetFinal: invalid state %d", s))
		return
	}
	b.finals[s] = true
}

// Build validates and normalizes the machine. It fails if no start state
// was set, no accepting path exists, or the graph contains a cycle.
// States not on any start→final path are pruned, and the survivors are
// renumbered in topological order with the start state at 0.
func (b *Builder) Build() (*SFST, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !b.hasSt {
		return nil, fmt.Errorf("fst: Build: no start state set")
	}
	if len(b.finals) == 0 {
		return nil, fmt.Errorf("fst: Build: no final state set")
	}
	n := len(b.arcs)

	// Forward reachability from the start state.
	reach := make([]bool, n)
	stack := []StateID{b.start}
	reach[b.start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range b.arcs[s] {
			if !reach[a.To] {
				reach[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}

	// Backward co-reachability to any final state.
	rev := make([][]StateID, n)
	for s := range b.arcs {
		for _, a := range b.arcs[s] {
			rev[a.To] = append(rev[a.To], StateID(s))
		}
	}
	// Seed the traversal from the finals in sorted order: b.finals is a
	// map, and a randomized seeding order would make the stack's
	// evolution (though not the resulting coreach set) differ run to
	// run — the kind of latent nondeterminism this Builder promises not
	// to have.
	finals := make([]StateID, 0, len(b.finals))
	for s := range b.finals {
		finals = append(finals, s)
	}
	sort.Slice(finals, func(i, j int) bool { return finals[i] < finals[j] })
	coreach := make([]bool, n)
	for _, s := range finals {
		if !coreach[s] {
			coreach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !coreach[p] {
				coreach[p] = true
				stack = append(stack, p)
			}
		}
	}

	useful := make([]bool, n)
	nUseful := 0
	for s := 0; s < n; s++ {
		if reach[s] && coreach[s] {
			useful[s] = true
			nUseful++
		}
	}
	if !useful[b.start] {
		return nil, fmt.Errorf("fst: Build: no accepting path from start state")
	}

	// Kahn topological sort over the useful subgraph. FIFO order keeps the
	// numbering deterministic for a given build sequence.
	indeg := make([]int, n)
	for s := 0; s < n; s++ {
		if !useful[s] {
			continue
		}
		for _, a := range b.arcs[s] {
			if useful[a.To] {
				indeg[a.To]++
			}
		}
	}
	order := make([]StateID, 0, nUseful)
	queue := make([]StateID, 0, nUseful)
	for s := 0; s < n; s++ {
		if useful[s] && indeg[s] == 0 {
			queue = append(queue, StateID(s))
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		order = append(order, s)
		for _, a := range b.arcs[s] {
			if !useful[a.To] {
				continue
			}
			indeg[a.To]--
			if indeg[a.To] == 0 {
				queue = append(queue, a.To)
			}
		}
	}
	if len(order) != nUseful {
		return nil, fmt.Errorf("fst: Build: transducer contains a cycle")
	}
	if order[0] != b.start {
		// Only the start state can have in-degree 0 among useful states
		// (everything useful is reachable from it), so this indicates an
		// internal invariant violation rather than bad input.
		return nil, fmt.Errorf("fst: Build: internal error: start state not first in topological order")
	}

	remap := make([]StateID, n)
	for i := range remap {
		remap[i] = NoState
	}
	for newID, oldID := range order {
		remap[oldID] = StateID(newID)
	}

	out := &SFST{
		arcs:   make([][]Arc, nUseful),
		finals: make([]bool, nUseful),
	}
	for newID, oldID := range order {
		var arcs []Arc
		for _, a := range b.arcs[oldID] {
			if !useful[a.To] {
				continue
			}
			arcs = append(arcs, Arc{To: remap[a.To], Label: a.Label, Weight: a.Weight})
		}
		sort.Slice(arcs, func(i, j int) bool {
			if arcs[i].To != arcs[j].To {
				return arcs[i].To < arcs[j].To
			}
			if arcs[i].Label != arcs[j].Label {
				return arcs[i].Label < arcs[j].Label
			}
			return arcs[i].Weight < arcs[j].Weight
		})
		out.arcs[newID] = arcs
		out.nArcs += len(arcs)
		if b.finals[oldID] {
			out.finals[newID] = true
		}
	}
	return out, nil
}
