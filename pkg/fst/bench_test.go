package fst_test

import (
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
)

// BenchmarkViterbi measures MAP decoding of a 1000-character OCR
// transducer — the hot path of plain (non-probabilistic) ingestion.
func BenchmarkViterbi(b *testing.B) {
	_, f := testgen.MustGenerate(testgen.Config{Length: 1000, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Viterbi()
	}
}

// BenchmarkBuild measures transducer construction (validation, pruning,
// topological renumbering) for a 1000-character document.
func BenchmarkBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, f := testgen.MustGenerate(testgen.Config{Length: 1000, Seed: 1})
		_ = f
	}
}
