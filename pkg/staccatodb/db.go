// Package staccatodb is the single-handle public API of the system: one
// DB wires together the document store (durable diskstore or in-memory),
// the persistent inverted q-gram index, and the parallel query engine,
// keeps the three consistent through every write, and tears them down in
// one Close. Callers that previously hand-assembled diskstore.Open +
// query.NewEngine + per-query compilation now write:
//
//	db, err := staccatodb.Open(dir)
//	defer db.Close()
//	db.Ingest(ctx, docs)
//	q, _ := query.Substring("staccato")
//	results, stats, err := db.Search(ctx, q, query.SearchOptions{TopN: 10})
//
// # Index consistency
//
// On disk, the index is maintained transactionally alongside store
// commits: a diskstore commit hook applies each batch to the in-memory
// index and appends a mirroring record to the index log (index.FileName
// in the store directory) before the write call returns, stamped with the
// store's CommitState. Open compares the log's final state against the
// store's: any mismatch — the index file missing, the store modified
// without the index attached, a torn tail truncated on either side, an
// interrupted rebuild — declares the index stale and rebuilds it from a
// full scan. The index is thus a pure cache: no failure mode of the index
// file can lose documents or change query results.
//
// # Query execution
//
// Search and ForEach extract a Plan from the compiled query and turn the
// index's posting lists into a candidate document set. When the plan can
// prune, Search runs candidate-only: the engine fetches exactly the
// candidates by (batched) point lookup and never touches the rest of the
// corpus, so a selective query costs O(candidates), not O(corpus).
// ForEach keeps its every-document streaming contract and instead runs a
// pruned scan, reporting non-candidates at probability zero without
// reading them. The planner is conservative (AND intersects, OR unions,
// NOT and sub-gram terms scan), so results are byte-identical across
// every mode and with the index enabled, disabled, or absent;
// SearchStats reports the mode taken and how much was pruned so the
// speedup is observable.
package staccatodb

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"github.com/paper-repo/staccato-go/pkg/index"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/store"
	"github.com/paper-repo/staccato-go/pkg/store/diskstore"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("staccatodb: db is closed")

// DB is one handle over a document store, its inverted index, and the
// query engine. It is safe for concurrent use.
type DB struct {
	cfg  config
	dir  string           // store directory; "" for OpenMem
	disk *diskstore.Store // nil for OpenMem
	mem  *store.MemStore  // nil for Open
	st   store.DocStore   // whichever of the two is live
	eng  *query.Engine

	// writeMu serializes OpenMem writes so the store and index mutate in
	// the same order (disk-mode writes are ordered by the commit hook,
	// which runs under the store's own write lock).
	writeMu sync.Mutex

	// mu guards the fields below. Lock-order discipline: the diskstore
	// commit hook acquires mu while the store's write lock is held, so no
	// DB method may call into the store while holding mu.
	mu      sync.Mutex
	idx     *index.Index  // nil when the index is disabled
	idxW    *index.Writer // nil when not persisting (OpenMem, or after a log write failure)
	commits uint64        // counts index-visible writes; lets RebuildIndex detect a raced scan
	closed  bool
}

// Open opens (creating if necessary) the database in dir: the durable
// document store plus, unless WithoutIndex, the inverted index — loaded
// from the index log when fresh, rebuilt from a store scan when missing
// or stale.
func Open(dir string, opts ...Option) (*DB, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	db := &DB{cfg: cfg, dir: dir}
	dopts := diskstore.Options{
		MaxSegmentBytes: cfg.maxSegmentBytes,
		NoSync:          cfg.noSync,
	}
	if !cfg.noIndex {
		// Only hook commits when an index will consume them: hook
		// preparation forces a decode and gram extraction per committed
		// document, which a WithoutIndex database should never pay.
		dopts.PrepareCommit = db.prepareCommit
		dopts.OnCommit = db.onCommit
	}
	disk, err := diskstore.Open(dir, dopts)
	if err != nil {
		return nil, err
	}
	db.disk = disk
	db.st = disk
	db.eng = query.NewEngine(disk, query.EngineOptions{Workers: cfg.workers})
	if !cfg.noIndex {
		if err := db.loadOrRebuildIndex(); err != nil {
			disk.Close()
			return nil, err
		}
	}
	return db, nil
}

// OpenMem returns a database over a fresh in-memory store — same API,
// nothing on disk, index (unless WithoutIndex) maintained purely in
// memory. The natural fit for tests and ephemeral corpora.
func OpenMem(opts ...Option) (*DB, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	db := &DB{cfg: cfg}
	db.mem = store.NewMemStore()
	db.st = db.mem
	db.eng = query.NewEngine(db.mem, query.EngineOptions{Workers: cfg.workers})
	if !cfg.noIndex {
		db.idx = index.New(cfg.gramSize)
	}
	return db, nil
}

func buildConfig(opts []Option) (config, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.validated()
}

// indexPath returns the index log's location inside the store directory.
func (db *DB) indexPath() string { return filepath.Join(db.dir, index.FileName) }

// loadOrRebuildIndex loads the index log if its recorded CommitState
// matches the store's, and otherwise rebuilds the index from a full scan
// and snapshots it. Runs during Open, before the DB is shared. Failures
// to WRITE the index log — a read-only corpus directory, a full disk —
// degrade to an unpersisted in-memory index rather than failing Open:
// search over a read-only directory must keep working, and an
// unpersisted index only costs a rebuild next time. Failures to read the
// store itself still fail.
func (db *DB) loadOrRebuildIndex() error {
	want := db.disk.CommitState()
	wantState := toState(want)
	persisted := true
	ix, got, err := index.Load(db.indexPath(), db.cfg.gramSize)
	if err != nil || got != wantState {
		//lint:allow ctxflow Open's signature deliberately takes no context (a DB either opens or it doesn't); the rebuild scan is startup work with no caller deadline to inherit
		ix, err = db.scannedIndex(context.Background())
		if err != nil {
			return err
		}
		if err := index.WriteSnapshot(db.indexPath(), ix, wantState); err != nil {
			persisted = false
		}
	}
	db.idx = ix
	if !persisted {
		return nil
	}
	if w, err := index.OpenAppend(db.indexPath(), db.cfg.gramSize, !db.cfg.noSync); err == nil {
		db.idxW = w
	}
	return nil
}

// scannedIndex builds a fresh index from a full store scan.
func (db *DB) scannedIndex(ctx context.Context) (*index.Index, error) {
	ix := index.New(db.cfg.gramSize)
	err := db.st.Scan(ctx, func(d *staccato.Doc) error {
		ix.Add(d)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("staccatodb: rebuilding index: %w", err)
	}
	return ix, nil
}

// onCommit is the diskstore commit hook: it mirrors every durable store
// commit into the in-memory index and the index log, in commit order,
// under the store's write lock. A log write failure stops persistence —
// the in-memory index stays correct for this process, and the log's now
// stale CommitState forces a rebuild on the next Open — but never fails
// the commit: the documents are already durable.
// preparedCommit is one commit's index mutations, derived by
// prepareCommit before the store's write lock is taken.
type preparedCommit struct {
	adds []index.Entry
	dels []string
}

// prepareCommit runs the expensive half of index maintenance — decode is
// already done by the store, gram extraction happens here — on the
// writing goroutine, outside every lock. It also reduces the commit to
// its net effect per ID (the last operation wins), so a put-then-delete
// of the same ID inside one batch yields disjoint add/delete sets; both
// Index.Apply and log replay process deletes before adds, which is only
// order-independent once the sets are disjoint.
func (db *DB) prepareCommit(ops []diskstore.CommitOp) any {
	type netOp struct {
		entry index.Entry
		del   bool
	}
	final := make(map[string]*netOp, len(ops))
	order := make([]string, 0, len(ops))
	for _, o := range ops {
		n, seen := final[o.ID]
		if !seen {
			n = &netOp{}
			final[o.ID] = n
			order = append(order, o.ID)
		}
		if o.Doc != nil {
			n.entry = index.EntryFor(o.Doc, db.cfg.gramSize)
			n.del = false
		} else {
			n.del = true
		}
	}
	p := &preparedCommit{}
	for _, id := range order {
		if n := final[id]; n.del {
			p.dels = append(p.dels, id)
		} else {
			p.adds = append(p.adds, n.entry)
		}
	}
	return p
}

func (db *DB) onCommit(ops []diskstore.CommitOp, prepared any, cs diskstore.CommitState) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.commits++
	if db.idx == nil {
		return nil
	}
	p, ok := prepared.(*preparedCommit)
	if !ok {
		// PrepareCommit and OnCommit are registered together, so this is
		// unreachable; recompute defensively rather than corrupt the index.
		p = db.prepareCommit(ops).(*preparedCommit)
	}
	db.idx.Apply(p.adds, p.dels)
	if db.idxW != nil {
		if err := db.idxW.Append(p.adds, p.dels, toState(cs)); err != nil {
			db.idxW.Close()
			db.idxW = nil
		}
	}
	return nil
}

// toState converts the store's staleness fingerprint into the index
// log's representation — the single place the field mapping lives.
func toState(cs diskstore.CommitState) index.State {
	return index.State{Ops: cs.Ops, Bytes: cs.Bytes, Seg: cs.Seg}
}

// memApply mirrors an OpenMem write into the in-memory index. Callers
// hold writeMu, so index order matches store order.
func (db *DB) memApply(adds []*staccato.Doc, dels []string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.idx == nil {
		return
	}
	entries := make([]index.Entry, len(adds))
	for i, d := range adds {
		entries[i] = index.EntryFor(d, db.idx.GramSize())
	}
	db.idx.Apply(entries, dels)
}

func (db *DB) isClosed() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.closed
}

// Put stores doc, replacing any existing document with the same ID, and
// keeps the index in step. On disk each Put is one fsync; use Ingest to
// amortize the fsync across many documents.
//
// Writes concurrent with Search/ForEach follow snapshot semantics: the
// candidate set is computed when a query call starts, so a document
// committed while that call is running may be reported by it with
// probability zero (ranked Search drops zero-probability results, so
// its output matches an execution ordered before the write); the next
// call sees the document. A write that completes BEFORE a query call
// starts is always fully visible: on the in-memory path additions
// update the index before the store and deletions the store before the
// index, and on the disk path the commit hook applies the index
// mutation inside the same store-write critical section, so no
// candidate set computed after a completed write can prune its
// document.
func (db *DB) Put(ctx context.Context, doc *staccato.Doc) error {
	if db.isClosed() {
		return ErrClosed
	}
	if db.disk != nil {
		return db.disk.Put(ctx, doc)
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if doc == nil || doc.ID == "" {
		return db.mem.Put(ctx, doc) // the store owns the validation error
	}
	db.memApply([]*staccato.Doc{doc}, nil)
	return db.mem.Put(ctx, doc)
}

// Ingest stores docs as one durable batch — one commit, one fsync, one
// index log record — replacing same-ID documents. It is the bulk-load
// path; split very large loads into multiple Ingest calls to bound commit
// latency and memory.
func (db *DB) Ingest(ctx context.Context, docs []*staccato.Doc) error {
	if db.isClosed() {
		return ErrClosed
	}
	if db.disk != nil {
		b := db.disk.Batch()
		for _, d := range docs {
			if err := b.Put(d); err != nil {
				return err
			}
		}
		return b.Commit(ctx)
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	for _, d := range docs {
		if d == nil || d.ID == "" {
			return db.mem.Put(ctx, d) // the store owns the validation error
		}
	}
	db.memApply(docs, nil)
	for _, d := range docs {
		if err := db.mem.Put(ctx, d); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the document with the given ID from the store and the
// index; deleting a missing ID is a no-op.
func (db *DB) Delete(ctx context.Context, id string) error {
	if db.isClosed() {
		return ErrClosed
	}
	if db.disk != nil {
		return db.disk.Delete(ctx, id)
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.mem.Delete(ctx, id); err != nil {
		return err
	}
	db.memApply(nil, []string{id})
	return nil
}

// Get returns the document with the given ID, or store.ErrNotFound.
func (db *DB) Get(ctx context.Context, id string) (*staccato.Doc, error) {
	if db.isClosed() {
		return nil, ErrClosed
	}
	return db.st.Get(ctx, id)
}

// Search runs one compiled query against the corpus through the planner
// and the parallel engine, returning the ranked matches (descending
// probability, ties by ascending DocID) plus the execution stats —
// the mode taken and how many documents the index pruned versus how
// many the DP evaluated. When the planner produces a candidate set,
// Search executes candidate-restricted: only the candidates are fetched
// and evaluated, so a selective query's cost scales with its candidate
// count, not the corpus size. With opts.TopN > 0 and no rescorer, the
// restricted run takes the bound-driven top-k path
// (query.Engine.SearchTopK, query.ExecTopK): candidates are processed
// best-bound-first and the run stops once the running k-th probability
// beats every remaining bound. A rescorer invalidates the stored bounds
// (it moves probability mass the index never saw), so rescored searches
// stay on query.ExecCandidateOnly. Without a candidate set Search falls
// back to the full scan. Results are byte-identical across every mode
// and whether the index is enabled, disabled, or absent.
// opts.Candidates and opts.Stats are managed by the DB and ignored if
// set by the caller.
func (db *DB) Search(ctx context.Context, q *query.Query, opts query.SearchOptions) ([]query.Result, query.SearchStats, error) {
	var stats query.SearchStats
	if db.isClosed() {
		return nil, stats, ErrClosed
	}
	cand := db.planCandidates(q, &stats)
	opts.Candidates = nil
	opts.Stats = &stats
	if cand == nil {
		res, err := db.eng.Search(ctx, q, opts)
		return res, stats, err
	}
	var res []query.Result
	var err error
	if opts.TopN > 0 && opts.Rescore == nil {
		res, err = db.eng.SearchTopK(ctx, q, cand, opts)
	} else {
		res, err = db.eng.SearchCandidates(ctx, q, cand, opts)
	}
	if err != nil {
		return nil, stats, err
	}
	// The engine never observed the corpus — that is the mode's point —
	// so the corpus-level counters derive from the store's live count and
	// the candidate set itself. A candidate deleted between planning and
	// fetching is no longer live, so the live candidates are the set size
	// minus the deletions the engine observed; every other live document
	// was pruned. This makes DocsTotal == DocsScanned + DocsPruned +
	// BoundsSkipped hold by construction (BoundsSkipped is zero outside
	// top-k), deletions included — deliberately unclamped, so an
	// accounting inconsistency shows up as a negative count instead of
	// being silently absorbed. Writes racing the search can still skew
	// docCount against the planning-time snapshot.
	stats.DocsTotal = db.docCount()
	live := cand.Len() - stats.CandidatesDeleted
	stats.DocsPruned = stats.DocsTotal - live
	return res, stats, nil
}

// Snippets runs Search and then extracts each matching document's top
// readings containing the match (query.Query.Snippets): per document, the
// most probable retained readings that satisfy the query, each with its
// probability and the byte/rune positions of every query term — the
// retrieval-chunk input a RAG pipeline consumes. The slice is ordered
// exactly like Search's ranking, and because extraction is a
// deterministic function of each matching document, the output is
// byte-identical across execution modes (scan, pruned-scan,
// candidate-only) and worker counts, just like Search itself. A document
// deleted between the search and the snippet fetch is skipped, matching
// what a search started after the delete would report. When opts.Rescore
// is set, the same transform the search ranked under is applied to each
// fetched document before extraction, so reported reading probabilities
// agree with the ranking.
func (db *DB) Snippets(ctx context.Context, q *query.Query, opts query.SearchOptions, sopts query.SnippetOptions) ([]query.DocSnippets, query.SearchStats, error) {
	results, stats, err := db.Search(ctx, q, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make([]query.DocSnippets, 0, len(results))
	for _, r := range results {
		doc, err := db.st.Get(ctx, r.DocID)
		if errors.Is(err, store.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, stats, err
		}
		if opts.Rescore != nil {
			doc = opts.Rescore(doc)
		}
		out = append(out, q.Snippets(doc, sopts))
	}
	return out, stats, nil
}

// Workers returns the query engine's worker pool size — the evaluation
// parallelism ceiling, which services in front of the DB (staccatod)
// report alongside their own in-flight gauges to make engine saturation
// observable.
func (db *DB) Workers() int { return db.eng.Workers() }

// docCount returns the store's live-document count without a scan.
func (db *DB) docCount() int {
	if db.disk != nil {
		return db.disk.Len()
	}
	return db.mem.Len()
}

// ForEach streams one Result per document — probability zero included —
// to fn in ascending DocID order, pruning evaluation through the index
// exactly like Search. See query.Engine.ForEach for the callback
// contract.
func (db *DB) ForEach(ctx context.Context, q *query.Query, fn func(query.Result) error) error {
	if db.isClosed() {
		return ErrClosed
	}
	return db.eng.ForEachPruned(ctx, q, db.planCandidates(q, nil), nil, fn)
}

// planCandidates extracts q's plan, evaluates it against the index, and
// (when stats is non-nil) records the planner fields. A nil return means
// no pruning: scan everything.
func (db *DB) planCandidates(q *query.Query, stats *query.SearchStats) *query.CandidateSet {
	db.mu.Lock()
	ix := db.idx
	db.mu.Unlock()
	if ix == nil || q == nil {
		if stats != nil {
			stats.Plan = "scan (no index)"
		}
		return nil
	}
	plan := q.Plan(ix.GramSize())
	cand := plan.Candidates(ix)
	if stats != nil {
		stats.Plan = plan.String()
		stats.PlanGrams = plan.NumGrams()
		stats.IndexUsed = cand != nil
	}
	return cand
}

// Explain renders how q would execute right now: the pruning plan,
// the candidate count against the current corpus when the index can
// prune, and the execution mode Search would take. It runs the planner
// but not the engine.
func (db *DB) Explain(q *query.Query) string {
	db.mu.Lock()
	ix := db.idx
	db.mu.Unlock()
	if q == nil {
		return "plan: none (nil query)"
	}
	if ix == nil {
		return fmt.Sprintf("plan: full scan (no index)\nmode: %s\nquery: %s", query.ExecScan, q.String())
	}
	plan := q.Plan(ix.GramSize())
	out := fmt.Sprintf("plan: %s\nindex: %d-gram over %d docs", plan.String(), ix.GramSize(), ix.Len())
	if cand := plan.Candidates(ix); cand != nil {
		out += fmt.Sprintf("\ncandidates: %d of %d docs\nmode: %s (Search fetches only the candidates)",
			cand.Len(), ix.Len(), query.ExecCandidateOnly)
		if cand.Bounded() {
			out += fmt.Sprintf("\ntop-k: with a result limit, mode %s processes candidates best-bound-first and reports early_stopped/bounds_skipped",
				query.ExecTopK)
		}
	} else {
		out += fmt.Sprintf("\ncandidates: all (plan cannot prune)\nmode: %s", query.ExecScan)
	}
	return out
}

// Stats describes the database's current shape. Segment and disk fields
// are zero for OpenMem databases. The JSON tags define the one canonical
// stats shape, shared verbatim by the CLI's verbose output and the
// staccatod /v1/stats endpoint — live doc count and index persistence
// always read the same either way.
type Stats struct {
	// Docs is the number of live documents.
	Docs int `json:"docs"`
	// Segments and DiskBytes mirror diskstore.Stats.
	Segments  int   `json:"segments"`
	DiskBytes int64 `json:"disk_bytes"`
	// IndexEnabled reports whether an inverted index is attached.
	IndexEnabled bool `json:"index_enabled"`
	// IndexPersisted reports whether the index is being persisted to the
	// store directory's index log. False for OpenMem databases, and for
	// disk databases whose log could not be written (read-only directory,
	// full disk) — the in-memory index still serves queries, but the next
	// Open pays a rebuild.
	IndexPersisted bool `json:"index_persisted"`
	// IndexDocs, IndexGrams, and IndexOverflowDocs mirror index.Stats.
	IndexDocs         int `json:"index_docs"`
	IndexGrams        int `json:"index_grams"`
	IndexOverflowDocs int `json:"index_overflow_docs"`
}

// Stats reports document, segment, and index counts.
func (db *DB) Stats() Stats {
	var st Stats
	db.mu.Lock()
	ix := db.idx
	st.IndexPersisted = db.idxW != nil
	db.mu.Unlock()
	if ix != nil {
		ist := ix.Stats()
		st.IndexEnabled = true
		st.IndexDocs = ist.Docs
		st.IndexGrams = ist.Grams
		st.IndexOverflowDocs = ist.OverflowDocs
	}
	if db.disk != nil {
		dst := db.disk.Stats()
		st.Docs = dst.Docs
		st.Segments = dst.Segments
		st.DiskBytes = dst.DiskBytes
		return st
	}
	st.Docs = db.mem.Len()
	return st
}

// Compact rewrites the store's live records into fresh segments (see
// diskstore.Compact) and snapshots the index log to match, dropping the
// dead postings both accumulate. A no-op for OpenMem databases.
func (db *DB) Compact(ctx context.Context) error {
	if db.isClosed() {
		return ErrClosed
	}
	if db.disk == nil {
		return nil
	}
	if err := db.disk.Compact(ctx); err != nil {
		return err
	}
	cs := db.disk.CommitState()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.idx == nil {
		return nil
	}
	// Commits that land between the CommitState read above and this lock
	// would make the snapshot's state stamp stale; the next Open then just
	// rebuilds. Correctness never depends on the stamp being fresh.
	if db.idxW != nil {
		db.idxW.Close()
		db.idxW = nil
	}
	if err := index.WriteSnapshot(db.indexPath(), db.idx, toState(cs)); err != nil {
		return fmt.Errorf("staccatodb: snapshotting index after compact: %w", err)
	}
	// Compact the in-memory index too: replaying the snapshot's own
	// entries drops the dead ordinals and stale postings that write churn
	// accumulates, so index memory tracks live documents, not
	// total-writes-ever.
	compacted := index.New(db.cfg.gramSize)
	compacted.Apply(db.idx.Entries(), nil)
	db.idx = compacted
	w, err := index.OpenAppend(db.indexPath(), db.cfg.gramSize, !db.cfg.noSync)
	if err != nil {
		return fmt.Errorf("staccatodb: reopening index log after compact: %w", err)
	}
	db.idxW = w
	return nil
}

// RebuildIndex discards the current index and rebuilds it from a full
// store scan, snapshotting the result for disk-backed databases — the
// force-refresh for an index suspected out of step (Open already
// rebuilds automatically whenever staleness is detectable). Writes that
// race the rebuild cannot be lost, in-process or across reopen: a scan
// that any commit raced is discarded and retried (the running index —
// which the commit hooks kept current throughout — stays installed), and
// once a clean scan is swapped in, later commits flow into it before the
// snapshot is stamped. Under relentless write pressure RebuildIndex
// gives up with an error rather than install a possibly-incomplete
// index. A database opened WithoutIndex has no commit hook to keep a
// rebuilt index current, so RebuildIndex refuses — reopen without the
// option instead (Open then builds the index itself).
func (db *DB) RebuildIndex(ctx context.Context) error {
	if db.isClosed() {
		return ErrClosed
	}
	if db.cfg.noIndex {
		return errors.New("staccatodb: index disabled by WithoutIndex; reopen without it to build and maintain one")
	}

	if db.disk == nil {
		// In-memory writes go through writeMu, so holding it excludes
		// them for the duration of the scan — no race to detect.
		db.writeMu.Lock()
		defer db.writeMu.Unlock()
		ix, err := db.scannedIndex(ctx)
		if err != nil {
			return err
		}
		db.mu.Lock()
		db.idx = ix
		db.mu.Unlock()
		return nil
	}

	// Disk writes cannot be excluded, so detect them instead: the commit
	// hook bumps db.commits strictly after a document becomes visible to
	// Scan (both happen inside the store's write critical section), so an
	// unchanged counter across the scan proves the scan missed nothing.
	swapped := false
	for attempt := 0; attempt < 3 && !swapped; attempt++ {
		db.mu.Lock()
		c0 := db.commits
		db.mu.Unlock()
		ix, err := db.scannedIndex(ctx)
		if err != nil {
			return err
		}
		db.mu.Lock()
		if db.commits == c0 {
			// No write raced the scan: ix is complete. Swap it in; from
			// here every commit's hook applies to ix. Persistence pauses
			// (idxW nil) until the snapshot below establishes the new log.
			if db.idxW != nil {
				db.idxW.Close()
				db.idxW = nil
			}
			db.idx = ix
			swapped = true
		}
		db.mu.Unlock()
	}
	if !swapped {
		return errors.New("staccatodb: writes kept racing the rebuild scan; index left as it was (still correct — the commit hooks maintain it)")
	}

	// Commits between the swap and the CommitState read are in the index
	// (via the hook) and in the state — the stamp is exact. A commit
	// landing between the read and the snapshot write is in the snapshot
	// but not the stamp, which only under-states it: the next Open sees a
	// mismatch and harmlessly rebuilds.
	cs := db.disk.CommitState()
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := index.WriteSnapshot(db.indexPath(), db.idx, toState(cs)); err != nil {
		// Keep the correct in-memory index; persistence stays off and the
		// next Open rebuilds.
		return fmt.Errorf("staccatodb: writing index snapshot: %w", err)
	}
	w, err := index.OpenAppend(db.indexPath(), db.cfg.gramSize, !db.cfg.noSync)
	if err != nil {
		return fmt.Errorf("staccatodb: reopening index log: %w", err)
	}
	db.idxW = w
	return nil
}

// Close detaches the index, closes the index log, and closes the store.
// Operations after Close return ErrClosed (or the store's own closed
// error). Close never loses committed data.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	w := db.idxW
	db.idx, db.idxW = nil, nil
	db.mu.Unlock()

	var err error
	if w != nil {
		err = w.Close()
	}
	if db.disk != nil {
		if cerr := db.disk.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
