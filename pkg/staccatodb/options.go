package staccatodb

import (
	"fmt"

	"github.com/paper-repo/staccato-go/pkg/index"
)

// config collects everything the Option functions can set. Validation is
// deferred to Open/OpenMem so a bad option surfaces as an error, not a
// panic inside an option constructor.
type config struct {
	workers         int
	gramSize        int
	noIndex         bool
	noSync          bool
	maxSegmentBytes int64
	err             error
}

func defaultConfig() config {
	return config{gramSize: index.DefaultGramSize}
}

func (c config) validated() (config, error) {
	if c.err != nil {
		return c, c.err
	}
	return c, nil
}

// Option configures Open and OpenMem.
type Option func(*config)

// WithWorkers sets the engine's worker pool size; zero or negative
// selects GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithGramSize sets the inverted index's gram size q. Larger grams prune
// harder but only serve longer terms; the default is
// index.DefaultGramSize. An existing on-disk index built at a different q
// is rebuilt on Open.
func WithGramSize(q int) Option {
	return func(c *config) {
		if q < 1 {
			c.err = fmt.Errorf("staccatodb: gram size must be >= 1, got %d", q)
			return
		}
		c.gramSize = q
	}
}

// WithoutIndex disables the inverted index entirely: no index is loaded,
// built, or maintained, and every query scans the full corpus. Search
// results are byte-identical either way — the index is purely a pruning
// structure.
func WithoutIndex() Option {
	return func(c *config) { c.noIndex = true }
}

// WithNoSync skips the fsync that normally ends every commit, for both
// the store and the index log. Throughput rises sharply; an OS crash may
// lose the most recent commits (the framing keeps both files openable,
// and a lost index tail just forces a rebuild).
func WithNoSync() Option {
	return func(c *config) { c.noSync = true }
}

// WithMaxSegmentBytes sets the store's segment roll size; see
// diskstore.Options.MaxSegmentBytes. Ignored by OpenMem.
func WithMaxSegmentBytes(n int64) Option {
	return func(c *config) { c.maxSegmentBytes = n }
}
