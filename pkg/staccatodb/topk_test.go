package staccatodb_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/paper-repo/staccato-go/pkg/index"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// TestSearchTopKByteIdenticalProperty is the equivalence property for the
// bound-driven path: for random corpora × random boolean/fuzzy queries ×
// TopN ∈ {1, 10, 100} × workers ∈ {1, 2, 8}, Search with a result limit
// must return exactly the first TopN entries of the exhaustive unlimited
// ranking — byte identical, whatever the engine pruned or skipped.
// Together with TestSearchModesByteIdenticalProperty (candidate-only ==
// scan) this pins all three execution modes to one answer. Stats must be
// deterministic across worker counts and obey the accounting invariants.
func TestSearchTopKByteIdenticalProperty(t *testing.T) {
	ctx := context.Background()
	cases := corpus(t, 50, 83)
	truths := make([]string, len(cases))
	for i, c := range cases {
		truths[i] = c.Truth
	}
	queries := randomQueries(truths, 101, 20)

	topkRuns, earlyStops := 0, 0
	type key struct {
		qi, topN int
		minProb  float64
	}
	baseline := map[key]query.SearchStats{}
	for _, workers := range []int{1, 2, 8} {
		db, err := staccatodb.OpenMem(staccatodb.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if err := db.Ingest(ctx, docsOf(cases)); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			full, _, err := db.Search(ctx, q, query.SearchOptions{})
			if err != nil {
				t.Fatalf("query %d workers %d unlimited: %v", qi, workers, err)
			}
			for _, sub := range []struct {
				topN    int
				minProb float64
			}{{1, 0}, {10, 0}, {100, 0}, {10, 0.25}} {
				opts := query.SearchOptions{TopN: sub.topN, MinProb: sub.minProb}
				got, stats, err := db.Search(ctx, q, opts)
				if err != nil {
					t.Fatalf("query %d workers %d top %d: %v", qi, workers, sub.topN, err)
				}
				want := full
				if sub.minProb > 0 {
					want = nil
					for _, r := range full {
						if r.Prob >= sub.minProb {
							want = append(want, r)
						}
					}
				}
				if len(want) > sub.topN {
					want = want[:sub.topN]
				}
				if len(got) == 0 && len(want) == 0 {
					// DeepEqual treats nil and empty as different; both mean
					// "no results".
				} else if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d (%s) workers %d top %d min %.2f: results diverge\n got  %+v\n want %+v",
						qi, q, workers, sub.topN, sub.minProb, got, want)
				}
				if stats.Mode == query.ExecTopK {
					topkRuns++
				}
				if stats.EarlyStopped {
					earlyStops++
				}
				if stats.DocsTotal != stats.DocsScanned+stats.DocsPruned+stats.BoundsSkipped {
					t.Fatalf("query %d top %d: DocsTotal %d != scanned %d + pruned %d + skipped %d",
						qi, sub.topN, stats.DocsTotal, stats.DocsScanned, stats.DocsPruned, stats.BoundsSkipped)
				}
				if stats.Mode != query.ExecScan && stats.CandidatesFetched != stats.DocsScanned+stats.CandidatesDeleted {
					t.Fatalf("query %d top %d: CandidatesFetched %d != scanned %d + deleted %d",
						qi, sub.topN, stats.CandidatesFetched, stats.DocsScanned, stats.CandidatesDeleted)
				}
				k := key{qi, sub.topN, sub.minProb}
				if workers == 1 {
					baseline[k] = stats
				} else if !reflect.DeepEqual(stats, baseline[k]) {
					t.Fatalf("query %d top %d min %.2f: stats differ across worker counts\n w=1 %+v\n w=%d %+v",
						qi, sub.topN, sub.minProb, baseline[k], workers, stats)
				}
			}
		}
	}
	if topkRuns == 0 {
		t.Fatal("vacuous property: no run took the top-k path")
	}
	t.Logf("top-k runs: %d, early stops: %d", topkRuns, earlyStops)
}

// markerCorpus builds n hand-crafted docs whose single uncertain chunk
// carries a shared marker term at strictly decreasing probability, so the
// index bounds rank the docs perfectly and an early stop is guaranteed on
// any corpus larger than the engine's first evaluation round.
func markerCorpus(n int) []*staccato.Doc {
	docs := make([]*staccato.Doc, n)
	for i := range docs {
		p := 0.9 - 0.8*float64(i)/float64(n)
		alts := []staccato.Alt{{Text: " zzmarker ", Prob: p}, {Text: "~", Prob: 1 - p}}
		if alts[0].Prob < alts[1].Prob {
			alts[0], alts[1] = alts[1], alts[0]
		}
		docs[i] = &staccato.Doc{
			ID:     fmt.Sprintf("m-%03d", i),
			Params: staccato.Params{Chunks: 1, K: 2},
			Chunks: []staccato.PathSet{{Alts: alts, Retained: 1}},
		}
	}
	return docs
}

// TestSearchTopKEarlyStopsDeterministically pins the early-termination
// behaviour itself, which the random-corpus property cannot guarantee to
// exercise: on a corpus whose bounds rank the answer perfectly, a small
// TopN must stop after the first round, skip the tail, and still return
// exactly the truncated exhaustive ranking — with identical stats at
// every worker count.
func TestSearchTopKEarlyStopsDeterministically(t *testing.T) {
	ctx := context.Background()
	const n = 300
	q := mustQ(query.Substring("zzmarker"))

	var full []query.Result
	var first query.SearchStats
	for _, workers := range []int{1, 2, 8} {
		db, err := staccatodb.OpenMem(staccatodb.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if err := db.Ingest(ctx, markerCorpus(n)); err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			full, _, err = db.Search(ctx, q, query.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(full) != n {
				t.Fatalf("unlimited search matched %d docs, want %d", len(full), n)
			}
		}
		got, stats, err := db.Search(ctx, q, query.SearchOptions{TopN: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, full[:10]) {
			t.Fatalf("workers %d: top-10 diverges from truncated exhaustive ranking\n got  %+v\n want %+v",
				workers, got, full[:10])
		}
		if stats.Mode != query.ExecTopK || !stats.EarlyStopped || stats.BoundsSkipped == 0 {
			t.Fatalf("workers %d: expected an early-stopped top-k run, got %+v", workers, stats)
		}
		if stats.DocsScanned >= n/2 {
			t.Fatalf("workers %d: early stop still evaluated %d of %d docs", workers, stats.DocsScanned, n)
		}
		if stats.DocsTotal != stats.DocsScanned+stats.DocsPruned+stats.BoundsSkipped {
			t.Fatalf("workers %d: DocsTotal %d != scanned %d + pruned %d + skipped %d",
				workers, stats.DocsTotal, stats.DocsScanned, stats.DocsPruned, stats.BoundsSkipped)
		}
		if workers == 1 {
			first = stats
		} else if !reflect.DeepEqual(stats, first) {
			t.Fatalf("stats differ across worker counts:\n w=1 %+v\n w=%d %+v", first, workers, stats)
		}
	}

	// The docs ranked by bound are also ranked by true probability here,
	// so the winners must be the lowest-numbered marker docs in order.
	for i, r := range full[:10] {
		if want := fmt.Sprintf("m-%03d", i); r.DocID != want {
			t.Fatalf("rank %d: DocID = %s, want %s", i, r.DocID, want)
		}
	}
}

// TestLegacyIndexFileRebuildsTransparently pins the v1 → v2 migration
// story: a store directory holding a well-formed v1 index log (valid
// frames, old magic) must open without error, rebuild the index from a
// scan, persist it in the v2 format, and answer top-k searches byte
// identically to the pre-downgrade database.
func TestLegacyIndexFileRebuildsTransparently(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cases := corpus(t, 30, 7)

	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	q := mustQ(query.Substring(cases[11].Doc.MAP()[5:12]))
	wantRes, wantStats, err := db.Search(ctx, q, query.SearchOptions{TopN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Overwrite INDEX with a well-formed v1 log: correctly framed header
	// carrying the old magic and the same gram size.
	payload := append([]byte("staccato-index v1"), binary.AppendUvarint(nil, 3)...)
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	idxPath := filepath.Join(dir, index.FileName)
	if err := os.WriteFile(idxPath, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := index.Load(idxPath, 3); !errors.Is(err, index.ErrMismatch) {
		t.Fatalf("index.Load on a v1 file: err = %v, want ErrMismatch", err)
	}

	db2, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatalf("Open over a v1 index log: %v", err)
	}
	defer db2.Close()
	st := db2.Stats()
	if !st.IndexEnabled || !st.IndexPersisted || st.IndexDocs != len(cases) {
		t.Fatalf("rebuilt stats = %+v, want persisted index over %d docs", st, len(cases))
	}
	gotRes, gotStats, err := db2.Search(ctx, q, query.SearchOptions{TopN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("post-rebuild results diverge:\n got  %+v\n want %+v", gotRes, wantRes)
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("post-rebuild stats diverge:\n got  %+v\n want %+v", gotStats, wantStats)
	}

	// The rebuild must have left a loadable v2 log behind.
	if _, _, err := index.Load(idxPath, 3); err != nil {
		t.Fatalf("index.Load after the rebuild: %v", err)
	}
}
