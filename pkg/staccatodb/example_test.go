package staccatodb_test

import (
	"context"
	"fmt"
	"os"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// Example_openIngestSearch is the package's front-door lifecycle: open a
// database directory, ingest a corpus in one durable batch, and run an
// indexed probabilistic search — all through the single DB handle.
func Example_openIngestSearch() {
	dir, err := os.MkdirTemp("", "staccatodb-example-*")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	db, err := staccatodb.Open(dir)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	defer db.Close()

	// Build a small synthetic OCR corpus at the (chunks=4, k=3) dial.
	var docs []*staccato.Doc
	err = testgen.EachDoc(30, testgen.Config{Length: 30, Seed: 8}, 4, 3,
		func(dc testgen.DocCase) error {
			docs = append(docs, dc.Doc)
			return nil
		})
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	if err := db.Ingest(ctx, docs); err != nil {
		fmt.Println("ingest:", err)
		return
	}

	// Search for a term planted from one document's most probable reading.
	term := docs[11].MAP()[6:12]
	q, err := query.Substring(term)
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	results, stats, err := db.Search(ctx, q, query.SearchOptions{TopN: 3})
	if err != nil {
		fmt.Println("search:", err)
		return
	}
	fmt.Printf("top hit: %s\n", results[0].DocID)
	fmt.Printf("pruned %d of %d docs without reading them\n", stats.DocsPruned, stats.DocsTotal)
	// Output:
	// top hit: doc-0012
	// pruned 29 of 30 docs without reading them
}
