package staccatodb_test

import (
	"context"
	"os"
	"sync"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// The indexed-vs-scan benchmark pair quantifies the headline win: a
// selective substring query over a 5000-doc disk corpus answered
// candidate-only — only the planner's candidates are fetched and
// evaluated — versus a full decode-and-evaluate scan. The corpus is 10×
// the original 500 because candidate-only execution's point is that the
// gap keeps growing with corpus size; the fetched_docs metric records
// how few documents the selective query actually touched.
// scripts/bench_engine.sh turns the pair into BENCH_index.json.
const (
	benchCorpusDocs = 5000
	benchDocLen     = 40
	benchChunks     = 5
	benchK          = 3
)

var (
	benchOnce sync.Once
	benchDir  string
	benchTerm string
	benchErr  error
)

// TestMain removes the shared benchmark corpus (which outlives any one
// benchmark because of the sync.Once sharing) when the test binary
// exits, so repeated runs don't accumulate temp directories.
func TestMain(m *testing.M) {
	code := m.Run()
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	if topkDir != "" {
		os.RemoveAll(topkDir)
	}
	os.Exit(code)
}

// benchCorpus ingests the shared 500-doc corpus once per test binary and
// picks a selective query term: a 7-rune slice of one document's MAP
// string, long enough that its gram intersection names only a handful of
// candidates.
func benchCorpus(b *testing.B) (string, string) {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "staccatodb-bench-*")
		if benchErr != nil {
			return
		}
		ctx := context.Background()
		var db *staccatodb.DB
		db, benchErr = staccatodb.Open(benchDir, staccatodb.WithNoSync())
		if benchErr != nil {
			return
		}
		defer db.Close()
		var batch []*staccato.Doc
		benchErr = testgen.EachDoc(benchCorpusDocs,
			testgen.Config{Length: benchDocLen, Seed: 101}, benchChunks, benchK,
			func(dc testgen.DocCase) error {
				if dc.Doc.ID == "doc-0250" {
					benchTerm = dc.Doc.MAP()[10:17]
				}
				batch = append(batch, dc.Doc)
				if len(batch) >= 128 {
					if err := db.Ingest(ctx, batch); err != nil {
						return err
					}
					batch = batch[:0]
				}
				return nil
			})
		if benchErr == nil {
			benchErr = db.Ingest(ctx, batch)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDir, benchTerm
}

func benchSearch(b *testing.B, mkQuery func(term string) (*query.Query, error), opts ...staccatodb.Option) {
	b.Helper()
	dir, term := benchCorpus(b)
	ctx := context.Background()
	db, err := staccatodb.Open(dir, append([]staccatodb.Option{staccatodb.WithNoSync()}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	q, err := mkQuery(term)
	if err != nil {
		b.Fatal(err)
	}
	var lastStats query.SearchStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, stats, err := db.Search(ctx, q, query.SearchOptions{TopN: 10})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("selective query matched nothing; benchmark term is broken")
		}
		lastStats = stats
	}
	b.StopTimer()
	b.ReportMetric(float64(lastStats.DocsPruned), "pruned_docs")
	b.ReportMetric(float64(lastStats.DocsTotal), "total_docs")
	b.ReportMetric(float64(lastStats.CandidatesFetched), "fetched_docs")
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N)*float64(benchCorpusDocs)/b.Elapsed().Seconds(), "docs/s")
	}
}

// BenchmarkSearchIndexed answers the selective query through the planner
// and the inverted index.
func BenchmarkSearchIndexed(b *testing.B) {
	benchSearch(b, query.Substring)
}

// BenchmarkSearchScan answers the same query with the index disabled —
// the full decode-and-evaluate scan the planner exists to avoid.
func BenchmarkSearchScan(b *testing.B) {
	benchSearch(b, query.Substring, staccatodb.WithoutIndex())
}

// fuzzyBenchQuery wraps the shared 7-rune benchmark term in a
// distance-1 fuzzy leaf — long enough that both pigeonhole pieces clear
// the gram size, so the planner prunes instead of degrading to a scan.
func fuzzyBenchQuery(term string) (*query.Query, error) {
	return query.Fuzzy(term, 1)
}

// BenchmarkFuzzySearchIndexed answers a distance-1 fuzzy query over the
// same corpus through the fuzzy-gram pigeonhole plan: an OR over the
// term's pieces, each an AND of that piece's grams.
func BenchmarkFuzzySearchIndexed(b *testing.B) {
	benchSearch(b, fuzzyBenchQuery)
}

// BenchmarkFuzzySearchScan answers the same fuzzy query with the index
// disabled — every document runs the product-automaton DP against the
// Levenshtein DFA.
func BenchmarkFuzzySearchScan(b *testing.B) {
	benchSearch(b, fuzzyBenchQuery, staccatodb.WithoutIndex())
}

// The top-k benchmark corpus plants a marker chunk in every document
// whose alternatives tier the corpus into nested candidate sets of 10,
// 100, 1000, and 10000 documents, at strictly decreasing probability by
// document number. The index bounds therefore rank candidates perfectly,
// which is the regime bound-driven early termination is built for: a
// `-top 10` query should evaluate roughly the same handful of documents
// whether the candidate set holds ten documents or ten thousand.
// scripts/bench_topk.sh turns the sub-benchmarks into BENCH_topk.json and
// gates on the latency staying near-flat across the three decades.
const topkCorpusDocs = 10000

var (
	topkOnce sync.Once
	topkDir  string
	topkErr  error
)

// topkMarker is document i's marker text: every tier the document
// belongs to, as space-delimited tokens so each tier contributes its own
// grams.
func topkMarker(i int) string {
	m := " zqall"
	if i < 1000 {
		m += " zqm1000"
	}
	if i < 100 {
		m += " zqc100"
	}
	if i < 10 {
		m += " zqx10"
	}
	return m
}

// topkCorpus ingests the shared marker corpus once per test binary.
func topkCorpus(b *testing.B) string {
	b.Helper()
	topkOnce.Do(func() {
		topkDir, topkErr = os.MkdirTemp("", "staccatodb-topk-*")
		if topkErr != nil {
			return
		}
		ctx := context.Background()
		var db *staccatodb.DB
		db, topkErr = staccatodb.Open(topkDir, staccatodb.WithNoSync())
		if topkErr != nil {
			return
		}
		defer db.Close()
		var batch []*staccato.Doc
		i := 0
		topkErr = testgen.EachDoc(topkCorpusDocs,
			testgen.Config{Length: benchDocLen, Seed: 202}, benchChunks, benchK,
			func(dc testgen.DocCase) error {
				// Strictly decreasing marker probability by document number
				// keeps the bound ranking total and deterministic.
				p := 0.95 - 0.9*float64(i)/float64(topkCorpusDocs)
				alts := []staccato.Alt{{Text: topkMarker(i), Prob: p}, {Text: "~", Prob: 1 - p}}
				if alts[0].Prob < alts[1].Prob {
					alts[0], alts[1] = alts[1], alts[0]
				}
				dc.Doc.Chunks = append(dc.Doc.Chunks, staccato.PathSet{Alts: alts, Retained: 1})
				dc.Doc.Params.Chunks++
				i++
				batch = append(batch, dc.Doc)
				if len(batch) >= 128 {
					if err := db.Ingest(ctx, batch); err != nil {
						return err
					}
					batch = batch[:0]
				}
				return nil
			})
		if topkErr == nil {
			topkErr = db.Ingest(ctx, batch)
		}
	})
	if topkErr != nil {
		b.Fatal(topkErr)
	}
	return topkDir
}

// BenchmarkSearchTopK runs the same `-top 10` query against candidate
// sets three decades apart. The candidates metric confirms the tier the
// query selected; evaluated_docs and early_stopped expose how much of it
// the bound-driven path actually touched.
func BenchmarkSearchTopK(b *testing.B) {
	dir := topkCorpus(b)
	ctx := context.Background()
	for _, tc := range []struct {
		name, term string
		want       int
	}{
		{"cand=10", "zqx10", 10},
		{"cand=100", "zqc100", 100},
		{"cand=1000", "zqm1000", 1000},
		{"cand=10000", "zqall", 10000},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db, err := staccatodb.Open(dir, staccatodb.WithNoSync())
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			q, err := query.Substring(tc.term)
			if err != nil {
				b.Fatal(err)
			}
			var lastStats query.SearchStats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, stats, err := db.Search(ctx, q, query.SearchOptions{TopN: 10})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != 10 || stats.Mode != query.ExecTopK {
					b.Fatalf("got %d results in mode %q, want 10 in %q", len(res), stats.Mode, query.ExecTopK)
				}
				lastStats = stats
			}
			b.StopTimer()
			cands := lastStats.CandidatesFetched + lastStats.BoundsSkipped
			if cands < tc.want {
				b.Fatalf("candidate set holds %d docs, want at least %d", cands, tc.want)
			}
			b.ReportMetric(float64(cands), "candidates")
			b.ReportMetric(float64(lastStats.DocsScanned), "evaluated_docs")
			b.ReportMetric(float64(lastStats.BoundsSkipped), "skipped_docs")
			early := 0.0
			if lastStats.EarlyStopped {
				early = 1
			}
			b.ReportMetric(early, "early_stopped")
		})
	}
}

// BenchmarkSearchTopKExhaustive is the control: the same widest query
// (every document a candidate) with no result limit, so every candidate
// is fetched and evaluated. The gap between this and
// BenchmarkSearchTopK/cand=10000 is what bound-driven early termination
// buys; scripts/bench_topk.sh gates on it.
func BenchmarkSearchTopKExhaustive(b *testing.B) {
	dir := topkCorpus(b)
	ctx := context.Background()
	db, err := staccatodb.Open(dir, staccatodb.WithNoSync())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	q, err := query.Substring("zqall")
	if err != nil {
		b.Fatal(err)
	}
	var lastStats query.SearchStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, stats, err := db.Search(ctx, q, query.SearchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != topkCorpusDocs {
			b.Fatalf("exhaustive search matched %d docs, want %d", len(res), topkCorpusDocs)
		}
		lastStats = stats
	}
	b.StopTimer()
	b.ReportMetric(float64(lastStats.DocsScanned), "evaluated_docs")
}
