package staccatodb_test

import (
	"context"
	"os"
	"sync"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// The indexed-vs-scan benchmark pair quantifies the headline win: a
// selective substring query over a 5000-doc disk corpus answered
// candidate-only — only the planner's candidates are fetched and
// evaluated — versus a full decode-and-evaluate scan. The corpus is 10×
// the original 500 because candidate-only execution's point is that the
// gap keeps growing with corpus size; the fetched_docs metric records
// how few documents the selective query actually touched.
// scripts/bench_engine.sh turns the pair into BENCH_index.json.
const (
	benchCorpusDocs = 5000
	benchDocLen     = 40
	benchChunks     = 5
	benchK          = 3
)

var (
	benchOnce sync.Once
	benchDir  string
	benchTerm string
	benchErr  error
)

// TestMain removes the shared benchmark corpus (which outlives any one
// benchmark because of the sync.Once sharing) when the test binary
// exits, so repeated runs don't accumulate temp directories.
func TestMain(m *testing.M) {
	code := m.Run()
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	os.Exit(code)
}

// benchCorpus ingests the shared 500-doc corpus once per test binary and
// picks a selective query term: a 7-rune slice of one document's MAP
// string, long enough that its gram intersection names only a handful of
// candidates.
func benchCorpus(b *testing.B) (string, string) {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "staccatodb-bench-*")
		if benchErr != nil {
			return
		}
		ctx := context.Background()
		var db *staccatodb.DB
		db, benchErr = staccatodb.Open(benchDir, staccatodb.WithNoSync())
		if benchErr != nil {
			return
		}
		defer db.Close()
		var batch []*staccato.Doc
		benchErr = testgen.EachDoc(benchCorpusDocs,
			testgen.Config{Length: benchDocLen, Seed: 101}, benchChunks, benchK,
			func(dc testgen.DocCase) error {
				if dc.Doc.ID == "doc-0250" {
					benchTerm = dc.Doc.MAP()[10:17]
				}
				batch = append(batch, dc.Doc)
				if len(batch) >= 128 {
					if err := db.Ingest(ctx, batch); err != nil {
						return err
					}
					batch = batch[:0]
				}
				return nil
			})
		if benchErr == nil {
			benchErr = db.Ingest(ctx, batch)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDir, benchTerm
}

func benchSearch(b *testing.B, mkQuery func(term string) (*query.Query, error), opts ...staccatodb.Option) {
	b.Helper()
	dir, term := benchCorpus(b)
	ctx := context.Background()
	db, err := staccatodb.Open(dir, append([]staccatodb.Option{staccatodb.WithNoSync()}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	q, err := mkQuery(term)
	if err != nil {
		b.Fatal(err)
	}
	var lastStats query.SearchStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, stats, err := db.Search(ctx, q, query.SearchOptions{TopN: 10})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("selective query matched nothing; benchmark term is broken")
		}
		lastStats = stats
	}
	b.StopTimer()
	b.ReportMetric(float64(lastStats.DocsPruned), "pruned_docs")
	b.ReportMetric(float64(lastStats.DocsTotal), "total_docs")
	b.ReportMetric(float64(lastStats.CandidatesFetched), "fetched_docs")
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N)*float64(benchCorpusDocs)/b.Elapsed().Seconds(), "docs/s")
	}
}

// BenchmarkSearchIndexed answers the selective query through the planner
// and the inverted index.
func BenchmarkSearchIndexed(b *testing.B) {
	benchSearch(b, query.Substring)
}

// BenchmarkSearchScan answers the same query with the index disabled —
// the full decode-and-evaluate scan the planner exists to avoid.
func BenchmarkSearchScan(b *testing.B) {
	benchSearch(b, query.Substring, staccatodb.WithoutIndex())
}

// fuzzyBenchQuery wraps the shared 7-rune benchmark term in a
// distance-1 fuzzy leaf — long enough that both pigeonhole pieces clear
// the gram size, so the planner prunes instead of degrading to a scan.
func fuzzyBenchQuery(term string) (*query.Query, error) {
	return query.Fuzzy(term, 1)
}

// BenchmarkFuzzySearchIndexed answers a distance-1 fuzzy query over the
// same corpus through the fuzzy-gram pigeonhole plan: an OR over the
// term's pieces, each an AND of that piece's grams.
func BenchmarkFuzzySearchIndexed(b *testing.B) {
	benchSearch(b, fuzzyBenchQuery)
}

// BenchmarkFuzzySearchScan answers the same fuzzy query with the index
// disabled — every document runs the product-automaton DP against the
// Levenshtein DFA.
func BenchmarkFuzzySearchScan(b *testing.B) {
	benchSearch(b, fuzzyBenchQuery, staccatodb.WithoutIndex())
}
