package staccatodb_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/pkg/fuzzy"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
)

// rankLikeSearch applies Search's ranking (descending probability, ties
// by ascending DocID) to results collected some other way, so outputs
// can be compared byte-for-byte.
func rankLikeSearch(rs []query.Result) []query.Result {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Prob != rs[j].Prob {
			return rs[i].Prob > rs[j].Prob
		}
		return rs[i].DocID < rs[j].DocID
	})
	return rs
}

// TestSearchModesByteIdenticalProperty is this PR's acceptance property:
// over random boolean queries, Search output is byte-identical across
// the three execution modes — full scan (no index), pruned ForEach
// (every-doc stream, zeros dropped and re-ranked), and candidate-only
// (indexed Search) — at 1, 2, and 8 workers, on a fresh store, after
// Delete+Compact, and after a torn-tail reopen forces a stale-index
// rebuild.
func TestSearchModesByteIdenticalProperty(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "db")
	cases := corpus(t, 50, 61)
	truths := make([]string, len(cases))
	for i, c := range cases {
		truths[i] = c.Truth
	}
	queries := randomQueries(truths, 77, 25)
	fuzzyLeaves := 0
	for _, q := range queries {
		if strings.Contains(q.String(), "fuzzy(") {
			fuzzyLeaves++
		}
	}
	if fuzzyLeaves == 0 {
		t.Fatal("query battery has no fuzzy leaves; the property no longer covers them")
	}

	snips := query.SnippetOptions{MaxReadings: 2, MaxEnumerate: 512}
	runPhase := func(phase string) {
		t.Helper()
		candidateRuns := 0
		// baseline: worker-count 1's candidate-only output; every other
		// worker count and mode must reproduce it byte-for-byte.
		var baseline [][]query.Result
		var baselineSnips [][]query.DocSnippets
		for _, workers := range []int{1, 2, 8} {
			db, err := staccatodb.Open(dir, staccatodb.WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", phase, workers, err)
			}
			for qi, q := range queries {
				res, stats, err := db.Search(ctx, q, query.SearchOptions{})
				if err != nil {
					t.Fatalf("%s workers=%d query %d: %v", phase, workers, qi, err)
				}
				if stats.Mode == query.ExecCandidateOnly {
					candidateRuns++
					if stats.DocsScanned+stats.DocsPruned+stats.BoundsSkipped != stats.DocsTotal {
						t.Fatalf("%s workers=%d query %d: incoherent candidate-only stats %+v",
							phase, workers, qi, stats)
					}
					if stats.CandidatesFetched != stats.DocsScanned+stats.CandidatesDeleted {
						t.Fatalf("%s workers=%d query %d: fetched %d != scanned %d + deleted %d",
							phase, workers, qi, stats.CandidatesFetched, stats.DocsScanned, stats.CandidatesDeleted)
					}
					if stats.CandidatesDeleted != 0 || stats.BoundsSkipped != 0 || stats.EarlyStopped {
						t.Fatalf("%s workers=%d query %d: top-k counters leaked into candidate-only stats %+v",
							phase, workers, qi, stats)
					}
				} else if stats.Mode != query.ExecScan {
					t.Fatalf("%s workers=%d query %d: unexpected mode %q", phase, workers, qi, stats.Mode)
				}

				// Mode 2: pruned ForEach — the every-doc stream, reduced the
				// way Search reduces it.
				var kept []query.Result
				streamed := 0
				err = db.ForEach(ctx, q, func(r query.Result) error {
					streamed++
					if r.Prob > 0 {
						kept = append(kept, r)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("%s workers=%d query %d ForEach: %v", phase, workers, qi, err)
				}
				if streamed != stats.DocsTotal {
					t.Fatalf("%s workers=%d query %d: ForEach streamed %d results, want every doc (%d)",
						phase, workers, qi, streamed, stats.DocsTotal)
				}
				kept = rankLikeSearch(kept)
				if !reflect.DeepEqual(res, kept) {
					t.Fatalf("%s workers=%d query %s: candidate-only Search differs from pruned ForEach\n search:  %+v\n foreach: %+v",
						phase, workers, q.String(), res, kept)
				}

				// Snippets ride on Search, so they inherit its mode and
				// worker-count determinism — checked byte-for-byte like the
				// ranked results themselves.
				sn, _, err := db.Snippets(ctx, q, query.SearchOptions{}, snips)
				if err != nil {
					t.Fatalf("%s workers=%d query %d Snippets: %v", phase, workers, qi, err)
				}
				if len(sn) != len(res) {
					t.Fatalf("%s workers=%d query %d: %d snippets for %d results", phase, workers, qi, len(sn), len(res))
				}
				for i := range sn {
					if sn[i].DocID != res[i].DocID {
						t.Fatalf("%s workers=%d query %d: snippet %d is doc %q, result is %q",
							phase, workers, qi, i, sn[i].DocID, res[i].DocID)
					}
				}

				if workers == 1 {
					baseline = append(baseline, res)
					baselineSnips = append(baselineSnips, sn)
				} else {
					if !reflect.DeepEqual(res, baseline[qi]) {
						t.Fatalf("%s query %s: workers=%d output differs from workers=1\n got:  %+v\n want: %+v",
							phase, q.String(), workers, res, baseline[qi])
					}
					if !reflect.DeepEqual(sn, baselineSnips[qi]) {
						t.Fatalf("%s query %s: workers=%d snippets differ from workers=1\n got:  %+v\n want: %+v",
							phase, q.String(), workers, sn, baselineSnips[qi])
					}
				}
			}
			db.Close()

			// Mode 3: full scan — index disabled entirely.
			noIdx, err := staccatodb.Open(dir, staccatodb.WithoutIndex(), staccatodb.WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", phase, workers, err)
			}
			scanned := searchAll(t, noIdx, queries)
			for qi := range queries {
				if !reflect.DeepEqual(scanned[qi], baseline[qi]) {
					t.Fatalf("%s workers=%d query %s: full scan differs from candidate-only\n scan: %+v\n cand: %+v",
						phase, workers, queries[qi].String(), scanned[qi], baseline[qi])
				}
				sn, _, err := noIdx.Snippets(ctx, queries[qi], query.SearchOptions{}, snips)
				if err != nil {
					t.Fatalf("%s workers=%d query %d scan Snippets: %v", phase, workers, qi, err)
				}
				if !reflect.DeepEqual(sn, baselineSnips[qi]) {
					t.Fatalf("%s workers=%d query %s: full-scan snippets differ from candidate-only\n scan: %+v\n cand: %+v",
						phase, workers, queries[qi].String(), sn, baselineSnips[qi])
				}
			}
			noIdx.Close()
		}
		if candidateRuns == 0 {
			t.Fatalf("%s: no query ran candidate-only; the property test is vacuous", phase)
		}
	}

	// Phase 1: fresh corpus, ingested in several batches.
	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(cases); i += 13 {
		end := i + 13
		if end > len(cases) {
			end = len(cases)
		}
		if err := db.Ingest(ctx, docsOf(cases[i:end])); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	runPhase("fresh")

	// Phase 2: delete a slice, re-put a couple, compact.
	db, err = staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases[15:23] {
		if err := db.Delete(ctx, c.Doc.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Ingest(ctx, docsOf(cases[18:20])); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	db.Close()
	runPhase("after delete+compact")

	// Phase 3: tear the last segment's tail so the reopen truncates it
	// and the stale index is rebuilt from a scan.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files (err=%v)", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 4 {
		t.Fatalf("last segment too small to tear (%d bytes)", fi.Size())
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	runPhase("after torn-tail rebuild")
}

// TestFuzzyLexiconRescoreByteIdenticalAcrossModes runs fuzzy queries
// with lexicon rescoring enabled and requires the ranked output — and
// the snippets riding on it — to be byte-identical across candidate-only
// search, a full scan with the index disabled, and 1/2/8 workers. The
// rescorer re-weights every document's readings toward dictionary
// words, so any mode- or worker-dependence in where it is applied would
// surface as a probability diff here.
func TestFuzzyLexiconRescoreByteIdenticalAcrossModes(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "db")
	cases := corpus(t, 40, 433)
	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Dictionary: every token of every ground truth, so the rescorer has
	// real in-lexicon words to boost in the retained readings.
	var words []string
	for _, c := range cases {
		words = append(words, strings.Fields(c.Truth)...)
	}
	lex := fuzzy.NewLexicon(words)
	if lex.Len() == 0 {
		t.Fatal("empty lexicon from corpus truths")
	}
	opts := query.SearchOptions{Rescore: lex.Rescorer(fuzzy.DefaultBoost)}
	snips := query.SnippetOptions{MaxReadings: 2, MaxEnumerate: 512}

	var queries []*query.Query
	for _, c := range cases[:6] {
		toks := strings.Fields(c.Truth)
		if len(toks) == 0 || len(toks[0]) < 4 {
			continue
		}
		queries = append(queries, mustQ(query.Fuzzy(toks[0], 1)))
	}
	if len(queries) == 0 {
		t.Fatal("no fuzzy probe queries built from corpus truths")
	}

	var baseline [][]query.Result
	var baselineSnips [][]query.DocSnippets
	matched := 0
	for _, workers := range []int{1, 2, 8} {
		for _, withIndex := range []bool{true, false} {
			dbOpts := []staccatodb.Option{staccatodb.WithWorkers(workers)}
			if !withIndex {
				dbOpts = append(dbOpts, staccatodb.WithoutIndex())
			}
			db, err := staccatodb.Open(dir, dbOpts...)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				res, _, err := db.Search(ctx, q, opts)
				if err != nil {
					t.Fatalf("workers=%d index=%v query %s: %v", workers, withIndex, q, err)
				}
				sn, _, err := db.Snippets(ctx, q, opts, snips)
				if err != nil {
					t.Fatalf("workers=%d index=%v query %s snippets: %v", workers, withIndex, q, err)
				}
				matched += len(res)
				if workers == 1 && withIndex {
					baseline = append(baseline, res)
					baselineSnips = append(baselineSnips, sn)
					continue
				}
				if !reflect.DeepEqual(res, baseline[qi]) {
					t.Fatalf("workers=%d index=%v query %s: rescored results differ from baseline\n got:  %+v\n want: %+v",
						workers, withIndex, q, res, baseline[qi])
				}
				if !reflect.DeepEqual(sn, baselineSnips[qi]) {
					t.Fatalf("workers=%d index=%v query %s: rescored snippets differ from baseline\n got:  %+v\n want: %+v",
						workers, withIndex, q, sn, baselineSnips[qi])
				}
			}
			db.Close()
		}
	}
	if matched == 0 {
		t.Fatal("no fuzzy query matched any document; the rescore property is vacuous")
	}
}
