package staccatodb_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/index"
	"github.com/paper-repo/staccato-go/pkg/query"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
	"github.com/paper-repo/staccato-go/pkg/store"
)

func mustQ(q *query.Query, err error) *query.Query {
	if err != nil {
		panic(err)
	}
	return q
}

func corpus(t *testing.T, n int, seed int64) []testgen.DocCase {
	t.Helper()
	cases, err := testgen.Docs(n, testgen.Config{Length: 30, Seed: seed}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return cases
}

func docsOf(cases []testgen.DocCase) []*staccato.Doc {
	out := make([]*staccato.Doc, len(cases))
	for i, c := range cases {
		out[i] = c.Doc
	}
	return out
}

func TestOpenMemLifecycle(t *testing.T) {
	ctx := context.Background()
	db, err := staccatodb.OpenMem()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cases := corpus(t, 20, 3)
	if err := db.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Docs != 20 || !st.IndexEnabled || st.IndexDocs != 20 || st.IndexGrams == 0 {
		t.Fatalf("Stats = %+v", st)
	}

	// A term from a doc's MAP string must surface that doc.
	term := cases[4].Doc.MAP()[8:14]
	res, stats, err := db.Search(ctx, mustQ(query.Substring(term)), query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.DocID == cases[4].Doc.ID && r.Prob > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted doc missing from results %+v", res)
	}
	if !stats.IndexUsed || stats.DocsPruned == 0 {
		t.Fatalf("expected index pruning on a selective term; stats %+v", stats)
	}

	// Get, Delete, and re-Search.
	if _, err := db.Get(ctx, cases[4].Doc.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(ctx, cases[4].Doc.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(ctx, cases[4].Doc.ID); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
	}
	res, _, err = db.Search(ctx, mustQ(query.Substring(term)), query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.DocID == cases[4].Doc.ID {
			t.Fatal("deleted doc still in results")
		}
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(ctx, cases[0].Doc); !errors.Is(err, staccatodb.ErrClosed) {
		t.Errorf("Put after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := db.Search(ctx, mustQ(query.Substring("xx")), query.SearchOptions{}); !errors.Is(err, staccatodb.ErrClosed) {
		t.Errorf("Search after Close: err = %v, want ErrClosed", err)
	}
}

func TestOpenPersistsAndReloadsIndex(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "db")
	cases := corpus(t, 25, 7)

	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	term := cases[9].Doc.MAP()[5:11]
	want, wantStats, err := db.Search(ctx, mustQ(query.Substring(term)), query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, index.FileName)); err != nil {
		t.Fatalf("index log missing after Close: %v", err)
	}

	db2, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, gotStats, err := db2.Search(ctx, mustQ(query.Substring(term)), query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened results differ:\n got %+v\n want %+v", got, want)
	}
	if gotStats.DocsPruned != wantStats.DocsPruned || !gotStats.IndexUsed {
		t.Fatalf("reopened stats %+v, want pruning like %+v", gotStats, wantStats)
	}
	if st := db2.Stats(); st.IndexDocs != len(cases) {
		t.Fatalf("reopened IndexDocs = %d, want %d", st.IndexDocs, len(cases))
	}
}

// TestStaleIndexRebuilt mutates the store through a second DB opened
// WithoutIndex — writes the index never sees — and checks the next
// indexed Open detects the stale CommitState and rebuilds, finding the
// new document.
func TestStaleIndexRebuilt(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "db")
	cases := corpus(t, 12, 9)

	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(ctx, docsOf(cases[:10])); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Write two more docs with the index detached.
	raw, err := staccatodb.Open(dir, staccatodb.WithoutIndex())
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.Ingest(ctx, docsOf(cases[10:])); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	db2, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st := db2.Stats(); st.IndexDocs != 12 {
		t.Fatalf("IndexDocs = %d after stale rebuild, want 12", st.IndexDocs)
	}
	term := cases[11].Doc.MAP()[5:11]
	res, stats, err := db2.Search(ctx, mustQ(query.Substring(term)), query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.DocID == cases[11].Doc.ID && r.Prob > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("doc written without index missing after rebuild; results %+v stats %+v", res, stats)
	}
}

// searchAll runs a fixed battery of queries and collects all outputs, the
// comparison unit for the parity tests below.
func searchAll(t *testing.T, db *staccatodb.DB, queries []*query.Query) [][]query.Result {
	t.Helper()
	ctx := context.Background()
	out := make([][]query.Result, len(queries))
	for i, q := range queries {
		res, _, err := db.Search(ctx, q, query.SearchOptions{})
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q.String(), err)
		}
		out[i] = res
	}
	return out
}

// randomQueries builds a deterministic battery of boolean queries over
// the corpus truths: substring, keyword, and fuzzy leaves, And/Or/Not,
// selective and unselective terms, and sub-gram-size terms.
func randomQueries(truths []string, seed int64, n int) []*query.Query {
	rng := rand.New(rand.NewSource(seed))
	pick := func() string {
		truth := truths[rng.Intn(len(truths))]
		ln := 2 + rng.Intn(6)
		if ln > len(truth) {
			ln = len(truth)
		}
		i := rng.Intn(len(truth) - ln + 1)
		return truth[i : i+ln]
	}
	leaf := func() *query.Query {
		term := pick()
		switch rng.Intn(4) {
		case 0:
			if !strings.ContainsRune(term, ' ') {
				return mustQ(query.Keyword(term))
			}
		case 1:
			// Distance capped so short terms stay at least somewhat
			// selective; the planner's scan fallback still gets exercised
			// by terms whose pieces undercut the gram size.
			dist := 1 + rng.Intn(2)
			if len(term) <= 3 {
				dist = 1
			}
			return mustQ(query.Fuzzy(term, dist))
		}
		return mustQ(query.Substring(term))
	}
	var build func(depth int) *query.Query
	build = func(depth int) *query.Query {
		if depth <= 0 || rng.Intn(3) == 0 {
			return leaf()
		}
		switch rng.Intn(4) {
		case 0:
			return query.And(build(depth-1), build(depth-1))
		case 1:
			return query.Or(build(depth-1), build(depth-1))
		case 2:
			return query.Not(build(depth - 1))
		default:
			return query.And(build(depth-1), query.Not(build(depth-1)))
		}
	}
	out := make([]*query.Query, n)
	for i := range out {
		out[i] = build(2)
	}
	return out
}

// TestSearchParityIndexOnOffProperty is the PR's acceptance property:
// over random boolean queries, Search output is byte-identical with the
// index on, off, and absent — on the fresh corpus, after Delete+Compact,
// and after a torn-tail reopen forces a stale-index rebuild.
func TestSearchParityIndexOnOffProperty(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "db")
	cases := corpus(t, 60, 13)
	truths := make([]string, len(cases))
	for i, c := range cases {
		truths[i] = c.Truth
	}
	queries := randomQueries(truths, 99, 40)

	// openAndRun opens the directory with and then without the index,
	// sequentially (the store is single-process), and requires identical
	// output from both.
	openAndRun := func(phase string) [][]query.Result {
		t.Helper()
		db, err := staccatodb.Open(dir)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		withIdx := searchAll(t, db, queries)
		pruned := 0
		for _, q := range queries {
			_, stats, err := db.Search(ctx, q, query.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			pruned += stats.DocsPruned
		}
		db.Close()
		if pruned == 0 {
			t.Fatalf("%s: index never pruned; parity test is vacuous", phase)
		}
		noIdx, err := staccatodb.Open(dir, staccatodb.WithoutIndex())
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		withoutIdx := searchAll(t, noIdx, queries)
		noIdx.Close()
		if !reflect.DeepEqual(withIdx, withoutIdx) {
			for i := range queries {
				if !reflect.DeepEqual(withIdx[i], withoutIdx[i]) {
					t.Fatalf("%s: query %s: indexed %+v != scanned %+v",
						phase, queries[i].String(), withIdx[i], withoutIdx[i])
				}
			}
		}
		return withIdx
	}

	// Phase 1: fresh corpus, ingested in several batches.
	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(cases); i += 17 {
		end := i + 17
		if end > len(cases) {
			end = len(cases)
		}
		if err := db.Ingest(ctx, docsOf(cases[i:end])); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	openAndRun("fresh")

	// Phase 2: delete a slice of docs, re-put a few, compact.
	db, err = staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases[20:30] {
		if err := db.Delete(ctx, c.Doc.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Ingest(ctx, docsOf(cases[25:27])); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	db.Close()
	openAndRun("after delete+compact")

	// Phase 3: tear the store's tail — cut into the last appended record —
	// so the reopen truncates it, the CommitState regresses, and the index
	// must drop to a stale rebuild.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files (err=%v)", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 4 {
		t.Fatalf("last segment too small to tear (%d bytes)", fi.Size())
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	openAndRun("after torn-tail reopen")
}

func TestExplain(t *testing.T) {
	ctx := context.Background()
	db, err := staccatodb.OpenMem()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cases := corpus(t, 10, 17)
	if err := db.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	// The unprunable negation folds out of the AND, leaving only the gram
	// branch in the effective plan.
	q := query.And(mustQ(query.Substring("abcdef")), query.Not(mustQ(query.Substring("xyzw"))))
	out := db.Explain(q)
	for _, want := range []string{"grams(", "candidates:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	// An OR with an unprunable disjunct renders as a forced scan.
	orQ := query.Or(mustQ(query.Substring("abcdef")), mustQ(query.Substring("ab")))
	if out := db.Explain(orQ); !strings.Contains(out, "scan(") || !strings.Contains(out, "all (plan cannot prune)") {
		t.Errorf("Explain of unprunable OR = %q", out)
	}
	noIdx, err := staccatodb.OpenMem(staccatodb.WithoutIndex())
	if err != nil {
		t.Fatal(err)
	}
	defer noIdx.Close()
	if out := noIdx.Explain(q); !strings.Contains(out, "no index") {
		t.Errorf("Explain without index = %q", out)
	}
}

func TestRebuildIndexAfterNoIndexIngest(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "db")
	cases := corpus(t, 15, 23)

	raw, err := staccatodb.Open(dir, staccatodb.WithoutIndex())
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	// A WithoutIndex DB has no commit hook to keep a rebuilt index
	// current, so RebuildIndex must refuse rather than attach one that
	// would silently rot.
	if err := raw.RebuildIndex(ctx); err == nil {
		t.Fatal("RebuildIndex on a WithoutIndex DB should refuse")
	}
	raw.Close()

	// Reopening with the index enabled IS the recovery path: the missing
	// log is detected as stale and rebuilt from a scan.
	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st := db.Stats()
	if !st.IndexEnabled || st.IndexDocs != len(cases) {
		t.Fatalf("Stats after indexed reopen = %+v", st)
	}
	// The forced refresh works on an index-enabled DB and re-snapshots.
	if err := db.RebuildIndex(ctx); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.IndexDocs != len(cases) {
		t.Fatalf("IndexDocs after RebuildIndex = %d, want %d", st.IndexDocs, len(cases))
	}
}

func TestDamagedIndexFileRebuilt(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "db")
	cases := corpus(t, 10, 29)
	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	term := cases[3].Doc.MAP()[4:10]
	want, _, err := db.Search(ctx, mustQ(query.Substring(term)), query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Overwrite the index log with garbage; Open must rebuild, not fail.
	if err := os.WriteFile(filepath.Join(dir, index.FileName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, stats, err := db2.Search(ctx, mustQ(query.Substring(term)), query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("results after index rebuild differ:\n got %+v\n want %+v", got, want)
	}
	if !stats.IndexUsed {
		t.Fatalf("index unused after rebuild; stats %+v", stats)
	}
}

func TestForEachMatchesEngineContract(t *testing.T) {
	ctx := context.Background()
	db, err := staccatodb.OpenMem(staccatodb.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cases := corpus(t, 15, 37)
	if err := db.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	q := mustQ(query.Substring(cases[2].Doc.MAP()[3:9]))
	var ids []string
	err = db.ForEach(ctx, q, func(r query.Result) error {
		ids = append(ids, r.DocID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(cases) {
		t.Fatalf("ForEach streamed %d results, want one per doc (%d)", len(ids), len(cases))
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatal("ForEach results not in ascending DocID order")
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := staccatodb.OpenMem(staccatodb.WithGramSize(0)); err == nil {
		t.Error("WithGramSize(0) accepted")
	}
	if _, err := staccatodb.Open(filepath.Join(t.TempDir(), "x"), staccatodb.WithGramSize(-1)); err == nil {
		t.Error("WithGramSize(-1) accepted")
	}
}

func TestGramSizeChangeForcesRebuild(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "db")
	cases := corpus(t, 8, 43)
	db, err := staccatodb.Open(dir, staccatodb.WithGramSize(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db4, err := staccatodb.Open(dir, staccatodb.WithGramSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db4.Close()
	if st := db4.Stats(); st.IndexDocs != len(cases) {
		t.Fatalf("IndexDocs after gram-size change = %d, want %d", st.IndexDocs, len(cases))
	}
	// A 4-rune term is exactly one 4-gram; it must still prune.
	term := cases[1].Doc.MAP()[2:8]
	_, stats, err := db4.Search(ctx, mustQ(query.Substring(term)), query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IndexUsed {
		t.Fatalf("index unused after gram-size rebuild; stats %+v", stats)
	}
}

// TestDetachedCompactCannotCollideWithStaleIndex is the fingerprint
// regression test: mutate and compact the store with the index detached
// so the op count and byte size could coincide with the stale index's
// stamp by accident — the segment-number component of the CommitState
// must still force a rebuild, and a query for content only the
// replacement document holds must find it.
func TestDetachedCompactCannotCollideWithStaleIndex(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "db")
	cases := corpus(t, 10, 53)

	db, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(ctx, docsOf(cases)); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Detached: replace one document with different content, then compact
	// away the superseded record so the live op count returns to 10.
	replacement := corpus(t, 12, 99)[11].Doc
	replacement.ID = cases[5].Doc.ID
	raw, err := staccatodb.Open(dir, staccatodb.WithoutIndex())
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.Put(ctx, replacement); err != nil {
		t.Fatal(err)
	}
	if err := raw.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	db2, err := staccatodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	term := replacement.MAP()[8:14]
	res, stats, err := db2.Search(ctx, mustQ(query.Substring(term)), query.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.DocID == replacement.ID && r.Prob > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("replacement content missing after detached compact (stale index survived?); results %+v stats %+v", res, stats)
	}
}
