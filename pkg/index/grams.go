// Package index maintains a persistent inverted q-gram index over
// Staccato documents, the structure that lets the query engine answer
// selective queries without scanning every document — the "use the
// database's text indexing" half of the Staccato thesis (Kumar & Ré,
// VLDB 2011).
//
// A Staccato document is not one string but a product distribution over
// per-chunk path sets, so the indexed unit is the set of q-grams that
// occur in ANY retained reading. That set is computed by a left-to-right
// dynamic program over the chunks which carries every reachable (q-1)-rune
// suffix across each chunk boundary, so grams formed from an
// adjacent-chunk suffix×prefix concatenation — including grams spanning
// three or more chunks through empty or very short alternatives — are
// never missed. The resulting contract is the one the planner builds on:
// if a document's gram set lacks any q-gram of a term, no retained reading
// of that document contains the term, and its match probability is exactly
// zero.
//
// The index lives in memory as gram → posting list and persists to a
// single crc-framed log file (see file.go) inside the store directory,
// maintained transactionally with diskstore commits and rebuilt from a
// store scan whenever it is missing or stale.
package index

import (
	"sort"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// DefaultGramSize is the q used when callers do not choose one. Trigrams
// are the classic text-index compromise: selective enough to prune, small
// enough that the gram universe stays bounded.
const DefaultGramSize = 3

// maxSuffixes bounds the boundary-DP frontier. A document whose reachable
// suffix set outgrows it is declared an overflow: it is indexed as
// matching every query rather than risking a dropped gram. With q=3 the
// frontier is capped by the number of distinct 2-rune strings the
// alternatives can produce, so ordinary OCR documents stay far below this.
const maxSuffixes = 1024

// Entry is one document's indexed gram set, the unit that crosses the
// persistence boundary.
type Entry struct {
	ID string
	// Grams is the sorted set of q-grams occurring in at least one
	// retained reading. Empty (with Overflow false) means no reading is as
	// long as q runes.
	Grams []string
	// Overflow marks a document whose gram extraction exceeded its budget;
	// the index treats it as a candidate for every query.
	Overflow bool
}

// EntryFor extracts doc's gram set at gram size q. Overflow is reported in
// the Entry rather than as an error, because the only safe response — treat
// the document as always matching — is the index's to make, not the
// caller's.
func EntryFor(doc *staccato.Doc, q int) Entry {
	grams, ok := DocGrams(doc, q)
	return Entry{ID: doc.ID, Grams: grams, Overflow: !ok}
}

// DocGrams returns the sorted set of q-grams (in runes) that occur in any
// retained reading of doc, including grams spanning chunk boundaries. The
// second result is false when the boundary DP exceeded its frontier
// budget; the returned grams are then incomplete and the document must be
// treated as matching everything.
//
// The DP is exact, not merely conservative: every returned gram occurs in
// at least one retained reading, because each emitted window is a real
// reachable suffix concatenated with a real alternative.
func DocGrams(doc *staccato.Doc, q int) ([]string, bool) {
	if q < 1 {
		return nil, false
	}
	grams := make(map[string]struct{})
	// suffixes holds every distinct last-(≤ q-1)-rune string of a reading
	// prefix ending at the previous chunk boundary.
	suffixes := map[string]struct{}{"": {}}
	for _, ch := range doc.Chunks {
		alts := ch.Alts
		if len(alts) == 0 {
			// A chunk with no retained alternatives encodes no readings at
			// all; treating it as a single empty alternative keeps the DP
			// running and only ever adds grams, never drops them.
			alts = []staccato.Alt{{}}
		}
		next := make(map[string]struct{}, len(suffixes))
		for tail := range suffixes {
			for _, alt := range alts {
				window := []rune(tail + alt.Text)
				for i := 0; i+q <= len(window); i++ {
					grams[string(window[i:i+q])] = struct{}{}
				}
				keep := len(window)
				if keep > q-1 {
					keep = q - 1
				}
				next[string(window[len(window)-keep:])] = struct{}{}
			}
		}
		if len(next) > maxSuffixes {
			return nil, false
		}
		suffixes = next
	}
	out := make([]string, 0, len(grams))
	for g := range grams {
		out = append(out, g)
	}
	sort.Strings(out)
	return out, true
}
