// Package index maintains a persistent inverted q-gram index over
// Staccato documents, the structure that lets the query engine answer
// selective queries without scanning every document — the "use the
// database's text indexing" half of the Staccato thesis (Kumar & Ré,
// VLDB 2011).
//
// A Staccato document is not one string but a product distribution over
// per-chunk path sets, so the indexed unit is the set of q-grams that
// occur in ANY retained reading. That set is computed by a left-to-right
// dynamic program over the chunks which carries every reachable (q-1)-rune
// suffix across each chunk boundary, so grams formed from an
// adjacent-chunk suffix×prefix concatenation — including grams spanning
// three or more chunks through empty or very short alternatives — are
// never missed. The resulting contract is the one the planner builds on:
// if a document's gram set lacks any q-gram of a term, no retained reading
// of that document contains the term, and its match probability is exactly
// zero.
//
// Alongside each gram the DP accumulates an admissible probability upper
// bound: the probability that any retained reading contains that gram is
// at most the stored bound (see DocGramBounds). Bounds ride the posting
// lists and let the engine process top-k candidates best-bound-first and
// stop early once the running k-th result beats every remaining bound.
//
// The index lives in memory as gram → posting list and persists to a
// single crc-framed log file (see file.go) inside the store directory,
// maintained transactionally with diskstore commits and rebuilt from a
// store scan whenever it is missing or stale.
package index

import (
	"sort"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// DefaultGramSize is the q used when callers do not choose one. Trigrams
// are the classic text-index compromise: selective enough to prune, small
// enough that the gram universe stays bounded.
const DefaultGramSize = 3

// maxSuffixes bounds the boundary-DP frontier. A document whose reachable
// suffix set outgrows it is declared an overflow: it is indexed as
// matching every query rather than risking a dropped gram. With q=3 the
// frontier is capped by the number of distinct 2-rune strings the
// alternatives can produce, so ordinary OCR documents stay far below this.
const maxSuffixes = 1024

// Entry is one document's indexed gram set, the unit that crosses the
// persistence boundary.
type Entry struct {
	ID string
	// Grams is the sorted set of q-grams occurring in at least one
	// retained reading. Empty (with Overflow false) means no reading is as
	// long as q runes.
	Grams []string
	// Bounds is aligned with Grams: Bounds[i] is an admissible upper bound
	// on the probability that any retained reading contains Grams[i], in
	// [0, 1]. A nil or short Bounds (legacy entries) is read as all-ones,
	// which is always admissible.
	Bounds []float64
	// Overflow marks a document whose gram extraction exceeded its budget;
	// the index treats it as a candidate for every query.
	Overflow bool
}

// Bound returns the upper bound for gram position i, defaulting to 1 when
// the entry carries no bound there (the always-admissible fallback).
func (e *Entry) Bound(i int) float64 {
	if i < len(e.Bounds) {
		return e.Bounds[i]
	}
	return 1
}

// EntryFor extracts doc's gram set at gram size q. Overflow is reported in
// the Entry rather than as an error, because the only safe response — treat
// the document as always matching — is the index's to make, not the
// caller's.
func EntryFor(doc *staccato.Doc, q int) Entry {
	grams, bounds, ok := DocGramBounds(doc, q)
	return Entry{ID: doc.ID, Grams: grams, Bounds: bounds, Overflow: !ok}
}

// DocGrams returns the sorted set of q-grams (in runes) that occur in any
// retained reading of doc, including grams spanning chunk boundaries. The
// second result is false when the boundary DP exceeded its frontier
// budget; the returned grams are then incomplete and the document must be
// treated as matching everything.
//
// The DP is exact, not merely conservative: every returned gram occurs in
// at least one retained reading, because each emitted window is a real
// reachable suffix concatenated with a real alternative.
func DocGrams(doc *staccato.Doc, q int) ([]string, bool) {
	grams, _, ok := DocGramBounds(doc, q)
	return grams, ok
}

// DocGramBounds is DocGrams plus, per gram, an admissible upper bound on
// the probability that a reading drawn from doc's distribution contains
// that gram.
//
// The bound is a union bound over disjoint boundary events. The DP
// carries, for every reachable (≤ q-1)-rune suffix of a reading prefix,
// the total probability mass of the prefixes ending in it. For a fixed
// chunk, the events "the prefix ends in suffix tail AND this chunk reads
// alternative alt" are pairwise disjoint and have probability
// mass(tail)·P(alt). Every occurrence of a gram in a reading ends inside
// exactly one chunk and is contained in that chunk's window tail+alt.Text,
// so summing mass(tail)·P(alt) over every event whose window contains the
// gram (counting each event once per gram, however many times the gram
// repeats inside one window) over-counts the probability that the gram
// occurs at all. Bounds are clamped to [0, 1].
//
// The returned bound slice is aligned with the gram slice.
func DocGramBounds(doc *staccato.Doc, q int) ([]string, []float64, bool) {
	if q < 1 {
		return nil, nil, false
	}
	mass := make(map[string]float64)
	// suffixes maps every distinct last-(≤ q-1)-rune string of a reading
	// prefix ending at the previous chunk boundary to the total probability
	// of the prefixes ending in it.
	suffixes := map[string]float64{"": 1}
	window := make(map[string]struct{}, 8) // per-event gram dedup, reused
	for _, ch := range doc.Chunks {
		alts := ch.Alts
		if len(alts) == 0 {
			// A chunk with no retained alternatives encodes no readings at
			// all; treating it as a single empty zero-probability alternative
			// keeps the DP running and only ever adds grams (at bound 0),
			// never drops them.
			alts = []staccato.Alt{{}}
		}
		// Extract and sort the frontier so the float accumulations below
		// run in a deterministic order (map iteration is randomized).
		tails := make([]string, 0, len(suffixes))
		for t := range suffixes {
			tails = append(tails, t)
		}
		sort.Strings(tails)
		next := make(map[string]float64, len(suffixes))
		for _, tail := range tails {
			tailMass := suffixes[tail]
			for _, alt := range alts {
				w := tailMass * alt.Prob
				runes := []rune(tail + alt.Text)
				clear(window)
				for i := 0; i+q <= len(runes); i++ {
					g := string(runes[i : i+q])
					if _, dup := window[g]; dup {
						continue
					}
					window[g] = struct{}{}
					mass[g] += w
				}
				keep := len(runes)
				if keep > q-1 {
					keep = q - 1
				}
				next[string(runes[len(runes)-keep:])] += w
			}
		}
		if len(next) > maxSuffixes {
			return nil, nil, false
		}
		suffixes = next
	}
	grams := make([]string, 0, len(mass))
	for g := range mass {
		grams = append(grams, g)
	}
	sort.Strings(grams)
	bounds := make([]float64, len(grams))
	for i, g := range grams {
		b := mass[g]
		if b > 1 {
			b = 1
		}
		bounds[i] = b
	}
	return grams, bounds, true
}
