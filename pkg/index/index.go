package index

import (
	"sort"
	"sync"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Index is an in-memory inverted q-gram index over documents. It is safe
// for concurrent use: lookups run in parallel, mutations are serialized.
//
// Internally every live document holds an ordinal; posting lists are
// ascending ordinal slices that only ever have new (larger) ordinals
// appended, so they stay sorted without re-sorting. Deletes and
// supersedes just kill the old ordinal — posting lists keep the stale
// entry and lookups filter it out — which makes mutation O(grams) and
// defers all garbage collection to the next snapshot rewrite.
type Index struct {
	q int

	mu   sync.RWMutex
	ord  map[string]uint32 // live doc ID -> ordinal
	ids  []string          // ordinal -> doc ID; "" marks a dead ordinal
	post map[string][]uint32
	// always holds ordinals of overflow documents, which are candidates
	// for every query.
	always map[uint32]struct{}
}

// New returns an empty index over q-rune grams. q < 1 selects
// DefaultGramSize.
func New(q int) *Index {
	if q < 1 {
		q = DefaultGramSize
	}
	return &Index{
		q:      q,
		ord:    make(map[string]uint32),
		post:   make(map[string][]uint32),
		always: make(map[uint32]struct{}),
	}
}

// GramSize returns the q the index was built with. Plans must be extracted
// at the same gram size or lookups would be meaningless.
func (ix *Index) GramSize() int { return ix.q }

// Add indexes doc, superseding any previously indexed document with the
// same ID. The document is read synchronously and not retained.
func (ix *Index) Add(doc *staccato.Doc) {
	ix.Apply([]Entry{EntryFor(doc, ix.q)}, nil)
}

// Delete removes the document with the given ID; unknown IDs are a no-op.
func (ix *Index) Delete(id string) {
	ix.Apply(nil, []string{id})
}

// Apply atomically applies one commit's worth of mutations: deletions
// first, then additions. Callers whose commit touched the same ID more
// than once must pass the commit's NET effect — the ID in exactly one of
// adds or dels, per its last operation — because the dels-then-adds
// order cannot represent an intra-commit interleaving (staccatodb's
// commit hook performs this normalization).
func (ix *Index) Apply(adds []Entry, dels []string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, id := range dels {
		ix.kill(id)
	}
	for _, e := range adds {
		ix.kill(e.ID)
		o := uint32(len(ix.ids))
		ix.ids = append(ix.ids, e.ID)
		ix.ord[e.ID] = o
		if e.Overflow {
			ix.always[o] = struct{}{}
			continue
		}
		for _, g := range e.Grams {
			ix.post[g] = append(ix.post[g], o)
		}
	}
}

// kill marks id's current ordinal dead. Callers hold ix.mu.
func (ix *Index) kill(id string) {
	if o, ok := ix.ord[id]; ok {
		delete(ix.ord, id)
		delete(ix.always, o)
		ix.ids[o] = ""
	}
}

// Candidates returns the ascending IDs of live documents whose gram sets
// contain every one of grams, plus every overflow document. ok is false
// when grams is empty — no gram means no evidence, and the caller must
// not prune.
//
// This is the index half of the planner's no-false-negative contract: a
// live document absent from the returned set provably has no retained
// reading containing all of grams.
func (ix *Index) Candidates(grams []string) ([]string, bool) {
	if len(grams) == 0 {
		return nil, false
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Intersect posting lists rarest-first so the working set only
	// shrinks.
	lists := make([][]uint32, len(grams))
	for i, g := range grams {
		lists[i] = ix.post[g]
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })

	acc := lists[0]
	for _, next := range lists[1:] {
		if len(acc) == 0 {
			break
		}
		acc = intersect(acc, next)
	}

	out := make([]string, 0, len(acc)+len(ix.always))
	for _, o := range acc {
		if id := ix.ids[o]; id != "" {
			out = append(out, id)
		}
	}
	for o := range ix.always {
		if id := ix.ids[o]; id != "" {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return dedupSorted(out), true
}

// intersect merges two ascending ordinal slices.
func intersect(a, b []uint32) []uint32 {
	out := a[:0:0] // fresh backing array; a may be a shared posting list
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Len returns the number of live indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.ord)
}

// Stats describes the index's current shape.
type Stats struct {
	// Docs is the number of live indexed documents.
	Docs int
	// Grams is the number of distinct grams with at least one posting
	// (dead postings included until the next snapshot rewrite).
	Grams int
	// Postings is the total posting-list length across all grams.
	Postings int
	// OverflowDocs counts live documents indexed as always-matching.
	OverflowDocs int
}

// Stats reports document, gram, and posting counts.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{Docs: len(ix.ord), Grams: len(ix.post)}
	for _, p := range ix.post {
		st.Postings += len(p)
	}
	for o := range ix.always {
		if ix.ids[o] != "" {
			st.OverflowDocs++
		}
	}
	return st
}

// Entries snapshots the live documents as sorted Entries — the inverse of
// Apply, used to rewrite the on-disk log without the dead postings that
// accumulate between compactions.
func (ix *Index) Entries() []Entry {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	byID := make(map[string]*Entry, len(ix.ord))
	ids := make([]string, 0, len(ix.ord))
	for id, o := range ix.ord {
		e := &Entry{ID: id}
		if _, ok := ix.always[o]; ok {
			e.Overflow = true
		}
		byID[id] = e
		ids = append(ids, id)
	}
	// Walk the posting map in sorted gram order so each entry's gram
	// slice is assembled deterministically (map iteration order is
	// randomized; appending under it would shuffle Grams run to run).
	grams := make([]string, 0, len(ix.post))
	for g := range ix.post {
		grams = append(grams, g)
	}
	sort.Strings(grams)
	for _, g := range grams {
		for _, o := range ix.post[g] {
			id := ix.ids[o]
			if id == "" || ix.ord[id] != o {
				continue
			}
			byID[id].Grams = append(byID[id].Grams, g)
		}
	}
	sort.Strings(ids)
	out := make([]Entry, len(ids))
	for i, id := range ids {
		e := byID[id]
		sort.Strings(e.Grams)
		out[i] = *e
	}
	return out
}
