package index

import (
	"slices"
	"sort"
	"strings"
	"sync"

	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// Index is an in-memory inverted q-gram index over documents. It is safe
// for concurrent use: lookups run in parallel, mutations are serialized.
//
// Internally every live document holds an ordinal; posting lists are
// ascending ordinal slices that only ever have new (larger) ordinals
// appended, so they stay sorted without re-sorting. Deletes and
// supersedes just kill the old ordinal — posting lists keep the stale
// entry and lookups filter it out — which makes mutation O(grams) and
// defers all garbage collection to the next snapshot rewrite.
type Index struct {
	q int

	mu   sync.RWMutex
	ord  map[string]uint32 // live doc ID -> ordinal
	ids  []string          // ordinal -> doc ID; "" marks a dead ordinal
	post map[string][]uint32
	// bnd is aligned with post: bnd[g][i] is the probability upper bound
	// for the document at post[g][i] (see Entry.Bounds).
	bnd map[string][]float64
	// always holds ordinals of overflow documents, which are candidates
	// for every query.
	always map[uint32]struct{}
}

// New returns an empty index over q-rune grams. q < 1 selects
// DefaultGramSize.
func New(q int) *Index {
	if q < 1 {
		q = DefaultGramSize
	}
	return &Index{
		q:      q,
		ord:    make(map[string]uint32),
		post:   make(map[string][]uint32),
		bnd:    make(map[string][]float64),
		always: make(map[uint32]struct{}),
	}
}

// GramSize returns the q the index was built with. Plans must be extracted
// at the same gram size or lookups would be meaningless.
func (ix *Index) GramSize() int { return ix.q }

// Add indexes doc, superseding any previously indexed document with the
// same ID. The document is read synchronously and not retained.
func (ix *Index) Add(doc *staccato.Doc) {
	ix.Apply([]Entry{EntryFor(doc, ix.q)}, nil)
}

// Delete removes the document with the given ID; unknown IDs are a no-op.
func (ix *Index) Delete(id string) {
	ix.Apply(nil, []string{id})
}

// Apply atomically applies one commit's worth of mutations: deletions
// first, then additions. Callers whose commit touched the same ID more
// than once must pass the commit's NET effect — the ID in exactly one of
// adds or dels, per its last operation — because the dels-then-adds
// order cannot represent an intra-commit interleaving (staccatodb's
// commit hook performs this normalization).
func (ix *Index) Apply(adds []Entry, dels []string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, id := range dels {
		ix.kill(id)
	}
	for _, e := range adds {
		ix.kill(e.ID)
		o := uint32(len(ix.ids))
		ix.ids = append(ix.ids, e.ID)
		ix.ord[e.ID] = o
		if e.Overflow {
			ix.always[o] = struct{}{}
			continue
		}
		for i, g := range e.Grams {
			ix.post[g] = append(ix.post[g], o)
			ix.bnd[g] = append(ix.bnd[g], e.Bound(i))
		}
	}
}

// kill marks id's current ordinal dead. Callers hold ix.mu.
func (ix *Index) kill(id string) {
	if o, ok := ix.ord[id]; ok {
		delete(ix.ord, id)
		delete(ix.always, o)
		ix.ids[o] = ""
	}
}

// Candidates returns the ascending IDs of live documents whose gram sets
// contain every one of grams, plus every overflow document. ok is false
// when grams is empty — no gram means no evidence, and the caller must
// not prune.
//
// This is the index half of the planner's no-false-negative contract: a
// live document absent from the returned set provably has no retained
// reading containing all of grams.
func (ix *Index) Candidates(grams []string) ([]string, bool) {
	ids, _, ok := ix.CandidatesWithBounds(grams)
	return ids, ok
}

// CandidatesWithBounds is Candidates plus, aligned with the returned IDs,
// an admissible upper bound on each candidate's probability of containing
// all of grams: the min over grams of the per-(doc, gram) bound. Overflow
// documents carry the vacuous bound 1, as does any posting recorded
// before bounds existed.
func (ix *Index) CandidatesWithBounds(grams []string) ([]string, []float64, bool) {
	if len(grams) == 0 {
		return nil, nil, false
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Intersect posting lists rarest-first so the working set only
	// shrinks, carrying the min bound through each merge.
	lists := make([]postings, len(grams))
	for i, g := range grams {
		lists[i] = postings{ords: ix.post[g], bnds: ix.bnd[g]}
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i].ords) < len(lists[j].ords) })

	acc := lists[0]
	for _, next := range lists[1:] {
		if len(acc.ords) == 0 {
			break
		}
		acc = intersect(acc, next)
	}

	type cand struct {
		id string
		b  float64
	}
	out := make([]cand, 0, len(acc.ords)+len(ix.always))
	for k, o := range acc.ords {
		if id := ix.ids[o]; id != "" {
			b := 1.0
			if k < len(acc.bnds) {
				b = acc.bnds[k]
			}
			out = append(out, cand{id, b})
		}
	}
	for o := range ix.always {
		if id := ix.ids[o]; id != "" {
			out = append(out, cand{id, 1})
		}
	}
	slices.SortFunc(out, func(a, b cand) int { return strings.Compare(a.id, b.id) })
	ids := make([]string, 0, len(out))
	bnds := make([]float64, 0, len(out))
	for i, c := range out {
		if i > 0 && c.id == out[i-1].id {
			// Duplicate IDs cannot arise from one live ordinal, but keep the
			// historical dedup and take the tighter bound if they ever do.
			if c.b < bnds[len(bnds)-1] {
				bnds[len(bnds)-1] = c.b
			}
			continue
		}
		ids = append(ids, c.id)
		bnds = append(bnds, c.b)
	}
	return ids, bnds, true
}

// postings pairs one gram's ordinal list with its aligned bounds.
type postings struct {
	ords []uint32
	bnds []float64
}

// intersect merges two ascending ordinal lists, keeping the min bound at
// each shared ordinal. Missing bounds read as 1.
func intersect(a, b postings) postings {
	out := postings{
		ords: a.ords[:0:0], // fresh backing; a may be a shared posting list
		bnds: nil,
	}
	bound := func(p postings, i int) float64 {
		if i < len(p.bnds) {
			return p.bnds[i]
		}
		return 1
	}
	i, j := 0, 0
	for i < len(a.ords) && j < len(b.ords) {
		switch {
		case a.ords[i] < b.ords[j]:
			i++
		case a.ords[i] > b.ords[j]:
			j++
		default:
			ba, bb := bound(a, i), bound(b, j)
			if bb < ba {
				ba = bb
			}
			out.ords = append(out.ords, a.ords[i])
			out.bnds = append(out.bnds, ba)
			i++
			j++
		}
	}
	return out
}

// Len returns the number of live indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.ord)
}

// Stats describes the index's current shape.
type Stats struct {
	// Docs is the number of live indexed documents.
	Docs int
	// Grams is the number of distinct grams with at least one posting
	// (dead postings included until the next snapshot rewrite).
	Grams int
	// Postings is the total posting-list length across all grams.
	Postings int
	// OverflowDocs counts live documents indexed as always-matching.
	OverflowDocs int
}

// Stats reports document, gram, and posting counts.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{Docs: len(ix.ord), Grams: len(ix.post)}
	for _, p := range ix.post {
		st.Postings += len(p)
	}
	for o := range ix.always {
		if ix.ids[o] != "" {
			st.OverflowDocs++
		}
	}
	return st
}

// Entries snapshots the live documents as sorted Entries — the inverse of
// Apply, used to rewrite the on-disk log without the dead postings that
// accumulate between compactions.
func (ix *Index) Entries() []Entry {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	byID := make(map[string]*Entry, len(ix.ord))
	ids := make([]string, 0, len(ix.ord))
	for id, o := range ix.ord {
		e := &Entry{ID: id}
		if _, ok := ix.always[o]; ok {
			e.Overflow = true
		}
		byID[id] = e
		ids = append(ids, id)
	}
	// Walk the posting map in sorted gram order so each entry's gram
	// slice is assembled deterministically (map iteration order is
	// randomized; appending under it would shuffle Grams run to run).
	grams := make([]string, 0, len(ix.post))
	for g := range ix.post {
		grams = append(grams, g)
	}
	sort.Strings(grams)
	for _, g := range grams {
		bnds := ix.bnd[g]
		for k, o := range ix.post[g] {
			id := ix.ids[o]
			if id == "" || ix.ord[id] != o {
				continue
			}
			b := 1.0
			if k < len(bnds) {
				b = bnds[k]
			}
			e := byID[id]
			// The sorted-gram walk appends each entry's grams in sorted
			// order already; sorting afterwards would desync Bounds.
			e.Grams = append(e.Grams, g)
			e.Bounds = append(e.Bounds, b)
		}
	}
	sort.Strings(ids)
	out := make([]Entry, len(ids))
	for i, id := range ids {
		out[i] = *byID[id]
	}
	return out
}
