package index_test

import (
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/index"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// trueGramProbs enumerates every reading of doc and returns, per q-gram,
// the exact probability that at least one occurrence of the gram appears
// in the realized string — the quantity DocGramBounds promises to bound
// from above.
func trueGramProbs(doc *staccato.Doc, q int) map[string]float64 {
	occ := make(map[string]float64)
	seen := make(map[string]struct{})
	doc.Readings(func(text string, prob float64) bool {
		clear(seen)
		runes := []rune(text)
		for i := 0; i+q <= len(runes); i++ {
			g := string(runes[i : i+q])
			if _, dup := seen[g]; !dup {
				seen[g] = struct{}{}
				occ[g] += prob
			}
		}
		return true
	})
	return occ
}

// TestDocGramBoundsAdmissibleProperty is the safety property the whole
// top-k path rests on: for generated OCR-style docs, every indexed gram's
// bound must dominate the exact occurrence probability computed by brute
// force over all readings. An inadmissible bound would let early
// termination silently drop true top-k results.
func TestDocGramBoundsAdmissibleProperty(t *testing.T) {
	const q = 3
	cases, err := testgen.Docs(40, testgen.Config{Length: 25, Seed: 99}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, c := range cases {
		grams, bounds, ok := index.DocGramBounds(c.Doc, q)
		if !ok {
			continue // overflow docs carry no bounds; they index as always-candidates
		}
		if len(grams) != len(bounds) {
			t.Fatalf("doc %s: %d grams but %d bounds", c.Doc.ID, len(grams), len(bounds))
		}
		byGram := make(map[string]float64, len(grams))
		for i, g := range grams {
			if b := bounds[i]; b < 0 || b > 1 {
				t.Fatalf("doc %s gram %q: bound %v outside [0, 1]", c.Doc.ID, g, b)
			}
			byGram[g] = bounds[i]
		}
		for g, p := range trueGramProbs(c.Doc, q) {
			b, indexed := byGram[g]
			if !indexed {
				t.Fatalf("doc %s: gram %q occurs with probability %v but was not indexed", c.Doc.ID, g, p)
			}
			if p > b*(1+1e-9) {
				t.Fatalf("doc %s: gram %q bound %v < true occurrence probability %v (inadmissible)",
					c.Doc.ID, g, b, p)
			}
			checked++
		}

		// DocGrams must agree with the bounded variant on the gram set.
		plain, ok2 := index.DocGrams(c.Doc, q)
		if !ok2 || len(plain) != len(grams) {
			t.Fatalf("doc %s: DocGrams and DocGramBounds disagree (%d vs %d grams)",
				c.Doc.ID, len(plain), len(grams))
		}
		for i := range plain {
			if plain[i] != grams[i] {
				t.Fatalf("doc %s: gram %d is %q vs %q", c.Doc.ID, i, plain[i], grams[i])
			}
		}
	}
	if checked == 0 {
		t.Fatal("vacuous property: no (doc, gram) pair was checked")
	}
	t.Logf("checked %d (doc, gram) pairs", checked)
}

// TestDocGramBoundsOverlappingOccurrences pins the case that breaks the
// naive per-chunk max-probability bound: a gram that can be completed by
// several different alternative combinations. Here "abc" appears in every
// reading (probability 1) even though no single alternative carries more
// than probability 0.5 — the union bound must still reach 1.
func TestDocGramBoundsOverlappingOccurrences(t *testing.T) {
	doc := &staccato.Doc{
		ID:     "overlap",
		Params: staccato.Params{Chunks: 2, K: 2},
		Chunks: []staccato.PathSet{
			{Alts: []staccato.Alt{{Text: "ab", Prob: 0.5}, {Text: "abc", Prob: 0.5}}, Retained: 1},
			{Alts: []staccato.Alt{{Text: "c", Prob: 0.5}, {Text: "cd", Prob: 0.5}}, Retained: 1},
		},
	}
	grams, bounds, ok := index.DocGramBounds(doc, 3)
	if !ok {
		t.Fatal("unexpected overflow")
	}
	found := false
	for i, g := range grams {
		if g == "abc" {
			found = true
			if bounds[i] < 1-1e-12 {
				t.Fatalf("bound for \"abc\" = %v, want 1: every reading contains it", bounds[i])
			}
		}
	}
	if !found {
		t.Fatal("gram \"abc\" missing from the index entry")
	}
	if p := trueGramProbs(doc, 3)["abc"]; p < 1-1e-12 {
		t.Fatalf("test premise broken: true P(abc) = %v, want 1", p)
	}
}

// TestEntryBoundDefaults pins Entry.Bound's missing-data contract: absent
// bounds (legacy entries, overflow docs) read as the always-admissible 1.
func TestEntryBoundDefaults(t *testing.T) {
	e := index.Entry{ID: "d", Grams: []string{"abc", "bcd"}, Bounds: []float64{0.25}}
	if got := e.Bound(0); got != 0.25 {
		t.Fatalf("Bound(0) = %v, want 0.25", got)
	}
	if got := e.Bound(1); got != 1 {
		t.Fatalf("Bound(1) with missing bound = %v, want 1", got)
	}
	if got := e.Bound(99); got != 1 {
		t.Fatalf("Bound(99) out of range = %v, want 1", got)
	}
}
