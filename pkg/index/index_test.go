package index_test

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/paper-repo/staccato-go/pkg/index"
)

func candidates(t *testing.T, ix *index.Index, grams ...string) []string {
	t.Helper()
	ids, ok := ix.Candidates(grams)
	if !ok {
		t.Fatalf("Candidates(%v) cannot answer", grams)
	}
	return ids
}

func TestIndexAddDeleteCandidates(t *testing.T) {
	ix := index.New(3)
	ix.Add(doc([]string{"hello"}))
	d2 := doc([]string{"help", "felt"})
	d2.ID = "u"
	ix.Add(d2)

	if got := candidates(t, ix, "ell"); !reflect.DeepEqual(got, []string{"t"}) {
		t.Errorf("Candidates(ell) = %v, want [t]", got)
	}
	if got := candidates(t, ix, "hel"); !reflect.DeepEqual(got, []string{"t", "u"}) {
		t.Errorf("Candidates(hel) = %v, want [t u]", got)
	}
	if got := candidates(t, ix, "hel", "elp"); !reflect.DeepEqual(got, []string{"u"}) {
		t.Errorf("Candidates(hel,elp) = %v, want [u]", got)
	}
	if got := candidates(t, ix, "zzz"); len(got) != 0 {
		t.Errorf("Candidates(zzz) = %v, want empty", got)
	}
	if _, ok := ix.Candidates(nil); ok {
		t.Error("Candidates(no grams) must refuse to answer")
	}

	ix.Delete("t")
	if got := candidates(t, ix, "hel"); !reflect.DeepEqual(got, []string{"u"}) {
		t.Errorf("after delete, Candidates(hel) = %v, want [u]", got)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
}

func TestIndexSupersede(t *testing.T) {
	ix := index.New(3)
	ix.Add(doc([]string{"aaaa"}))
	ix.Add(doc([]string{"bbbb"})) // same ID "t": replaces
	if got := candidates(t, ix, "aaa"); len(got) != 0 {
		t.Errorf("superseded grams still matching: %v", got)
	}
	if got := candidates(t, ix, "bbb"); !reflect.DeepEqual(got, []string{"t"}) {
		t.Errorf("Candidates(bbb) = %v, want [t]", got)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
}

func TestIndexOverflowDocAlwaysCandidate(t *testing.T) {
	ix := index.New(3)
	ix.Apply([]index.Entry{{ID: "big", Overflow: true}}, nil)
	ix.Add(doc([]string{"hello"}))
	if got := candidates(t, ix, "zzz"); !reflect.DeepEqual(got, []string{"big"}) {
		t.Errorf("Candidates(zzz) = %v, want the overflow doc", got)
	}
	if got := candidates(t, ix, "ell"); !reflect.DeepEqual(got, []string{"big", "t"}) {
		t.Errorf("Candidates(ell) = %v, want [big t]", got)
	}
	ix.Delete("big")
	if got := candidates(t, ix, "zzz"); len(got) != 0 {
		t.Errorf("deleted overflow doc still a candidate: %v", got)
	}
}

func TestIndexEntriesRoundTrip(t *testing.T) {
	ix := index.New(3)
	ix.Add(doc([]string{"hello", "hallo"}))
	d2 := doc([]string{"world"})
	d2.ID = "u"
	ix.Add(d2)
	ix.Apply([]index.Entry{{ID: "big", Overflow: true}}, nil)

	ix2 := index.New(3)
	ix2.Apply(ix.Entries(), nil)
	for _, grams := range [][]string{{"ell"}, {"hal"}, {"orl"}, {"zzz"}} {
		a := candidates(t, ix, grams...)
		b := candidates(t, ix2, grams...)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("Candidates(%v): %v vs round-tripped %v", grams, a, b)
		}
	}
}

func TestSnapshotLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), index.FileName)
	ix := index.New(3)
	ix.Add(doc([]string{"hello"}))
	st := index.State{Ops: 7, Bytes: 1234}
	if err := index.WriteSnapshot(path, ix, st); err != nil {
		t.Fatal(err)
	}
	got, gotSt, err := index.Load(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gotSt != st {
		t.Errorf("state = %+v, want %+v", gotSt, st)
	}
	if !reflect.DeepEqual(got.Entries(), ix.Entries()) {
		t.Errorf("entries = %+v, want %+v", got.Entries(), ix.Entries())
	}
}

func TestAppendReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), index.FileName)
	ix := index.New(3)
	if err := index.WriteSnapshot(path, ix, index.State{}); err != nil {
		t.Fatal(err)
	}
	w, err := index.OpenAppend(path, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	e1 := index.EntryFor(doc([]string{"hello"}), 3)
	if err := w.Append([]index.Entry{e1}, nil, index.State{Ops: 1, Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(nil, []string{"t"}, index.State{Ops: 2, Bytes: 20}); err != nil {
		t.Fatal(err)
	}
	d2 := doc([]string{"world"})
	d2.ID = "u"
	if err := w.Append([]index.Entry{index.EntryFor(d2, 3)}, nil, index.State{Ops: 3, Bytes: 30}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, st, err := index.Load(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if (st != index.State{Ops: 3, Bytes: 30}) {
		t.Errorf("state = %+v, want ops 3 bytes 30", st)
	}
	if got.Len() != 1 {
		t.Errorf("Len = %d, want 1 (t deleted)", got.Len())
	}
	if ids := candidates(t, got, "orl"); !reflect.DeepEqual(ids, []string{"u"}) {
		t.Errorf("Candidates(orl) = %v, want [u]", ids)
	}
}

func TestLoadTornTailTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), index.FileName)
	ix := index.New(3)
	ix.Add(doc([]string{"hello"}))
	if err := index.WriteSnapshot(path, ix, index.State{Ops: 1, Bytes: 1}); err != nil {
		t.Fatal(err)
	}
	w, err := index.OpenAppend(path, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	d2 := doc([]string{"world"})
	d2.ID = "u"
	if err := w.Append([]index.Entry{index.EntryFor(d2, 3)}, nil, index.State{Ops: 2, Bytes: 2}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the last record: drop its final 3 bytes.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	full := fi.Size()
	if err := os.Truncate(path, full-3); err != nil {
		t.Fatal(err)
	}

	got, st, err := index.Load(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if (st != index.State{Ops: 1, Bytes: 1}) {
		t.Errorf("state after torn tail = %+v, want the snapshot's", st)
	}
	if got.Len() != 1 {
		t.Errorf("Len = %d, want 1 (torn add dropped)", got.Len())
	}
	// The torn bytes must be gone so future appends land on a frame
	// boundary.
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= full-3 {
		t.Errorf("file size %d not truncated below %d", fi.Size(), full-3)
	}
}

func TestLoadMissingAndMismatched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, index.FileName)
	if _, _, err := index.Load(path, 3); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Load(missing) err = %v, want fs.ErrNotExist", err)
	}
	ix := index.New(4)
	if err := index.WriteSnapshot(path, ix, index.State{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := index.Load(path, 3); !errors.Is(err, index.ErrMismatch) {
		t.Errorf("Load(q=3 over q=4 file) err = %v, want ErrMismatch", err)
	}
	if err := os.WriteFile(path, []byte("not an index file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := index.Load(path, 3); !errors.Is(err, index.ErrMismatch) {
		t.Errorf("Load(garbage) err = %v, want ErrMismatch", err)
	}
}

func TestStats(t *testing.T) {
	ix := index.New(3)
	ix.Add(doc([]string{"hello"}))
	ix.Apply([]index.Entry{{ID: "big", Overflow: true}}, nil)
	st := ix.Stats()
	if st.Docs != 2 || st.OverflowDocs != 1 || st.Grams == 0 || st.Postings == 0 {
		t.Errorf("Stats = %+v", st)
	}
}
