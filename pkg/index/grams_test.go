package index_test

import (
	"fmt"
	"sort"
	"testing"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/index"
	"github.com/paper-repo/staccato-go/pkg/staccato"
)

// doc builds a Doc literal from per-chunk alternative lists, with uniform
// probabilities (gram extraction ignores probabilities).
func doc(chunks ...[]string) *staccato.Doc {
	d := &staccato.Doc{ID: "t"}
	for _, texts := range chunks {
		ps := staccato.PathSet{Retained: 1}
		p := 1.0 / float64(len(texts))
		for _, t := range texts {
			ps.Alts = append(ps.Alts, staccato.Alt{Text: t, Prob: p})
		}
		d.Chunks = append(d.Chunks, ps)
	}
	return d
}

func gramsOf(s string, q int) []string {
	runes := []rune(s)
	set := map[string]struct{}{}
	for i := 0; i+q <= len(runes); i++ {
		set[string(runes[i:i+q])] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

func TestDocGramsSingleChunk(t *testing.T) {
	d := doc([]string{"hello", "hallo"})
	got, ok := index.DocGrams(d, 3)
	if !ok {
		t.Fatal("unexpected overflow")
	}
	want := map[string]struct{}{}
	for _, s := range []string{"hello", "hallo"} {
		for _, g := range gramsOf(s, 3) {
			want[g] = struct{}{}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("grams = %v, want the grams of hello+hallo", got)
	}
	for _, g := range got {
		if _, ok := want[g]; !ok {
			t.Errorf("unexpected gram %q", g)
		}
	}
}

func TestDocGramsBoundarySpans(t *testing.T) {
	// Readings: "abcd" and "xycd". Boundary grams "bcd" and "ycd" (and
	// "abc"/"xyc") must be present; cross-alternative fabrications like
	// "byc" must not.
	d := doc([]string{"ab", "xy"}, []string{"cd"})
	got, ok := index.DocGrams(d, 3)
	if !ok {
		t.Fatal("unexpected overflow")
	}
	set := toSet(got)
	for _, g := range []string{"abc", "bcd", "xyc", "ycd"} {
		if _, ok := set[g]; !ok {
			t.Errorf("missing boundary gram %q in %v", g, got)
		}
	}
	for _, g := range []string{"byc", "axc", "abd"} {
		if _, ok := set[g]; ok {
			t.Errorf("fabricated gram %q present", g)
		}
	}
}

func TestDocGramsThreeChunkSpanThroughEmptyAlt(t *testing.T) {
	// Readings: "abc" (middle chunk reads as empty — an OCR deletion) and
	// "axbc". The gram "abc" spans three chunks.
	d := doc([]string{"a"}, []string{"", "x"}, []string{"bc"})
	got, ok := index.DocGrams(d, 3)
	if !ok {
		t.Fatal("unexpected overflow")
	}
	set := toSet(got)
	for _, g := range []string{"abc", "axb", "xbc"} {
		if _, ok := set[g]; !ok {
			t.Errorf("missing gram %q in %v", g, got)
		}
	}
}

func TestDocGramsShortDoc(t *testing.T) {
	d := doc([]string{"ab"})
	got, ok := index.DocGrams(d, 3)
	if !ok || len(got) != 0 {
		t.Errorf("DocGrams(short doc) = %v, %v; want empty, true", got, ok)
	}
}

func TestDocGramsOverflow(t *testing.T) {
	// Two chunks of many distinct single-rune alternatives multiply the
	// suffix frontier past the budget.
	var a, b []string
	for i := 0; i < 40; i++ {
		a = append(a, string(rune('a'+i)))
		b = append(b, string(rune('①'+i)))
	}
	d := doc(a, b, []string{"zz"})
	if _, ok := index.DocGrams(d, 3); ok {
		t.Error("expected overflow for a doc with a huge suffix frontier")
	}
	e := index.EntryFor(d, 3)
	if !e.Overflow {
		t.Error("EntryFor should mark the doc as overflow")
	}
}

// TestDocGramsExactOnGeneratedDocs is the extraction's core property on
// realistic documents: the gram set equals exactly the union of the
// q-grams of every retained reading — no reading gram missed (the
// planner's no-false-negative contract), nothing fabricated (pruning
// power).
func TestDocGramsExactOnGeneratedDocs(t *testing.T) {
	const q = 3
	cases, err := testgen.Docs(25, testgen.Config{Length: 18, Seed: 11}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range cases {
		got, ok := index.DocGrams(c.Doc, q)
		if !ok {
			t.Fatalf("case %d: unexpected overflow", ci)
		}
		want := map[string]struct{}{}
		c.Doc.Readings(func(text string, _ float64) bool {
			for _, g := range gramsOf(text, q) {
				want[g] = struct{}{}
			}
			return true
		})
		gotSet := toSet(got)
		for g := range want {
			if _, ok := gotSet[g]; !ok {
				t.Errorf("case %d: reading gram %q missing from DocGrams", ci, g)
			}
		}
		for g := range gotSet {
			if _, ok := want[g]; !ok {
				t.Errorf("case %d: DocGrams fabricated %q (in no reading)", ci, g)
			}
		}
	}
}

func TestDocGramsDeterministicAndSorted(t *testing.T) {
	cases, err := testgen.Docs(3, testgen.Config{Length: 30, Seed: 5}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		a, _ := index.DocGrams(c.Doc, 3)
		b, _ := index.DocGrams(c.Doc, 3)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatal("DocGrams not deterministic")
		}
		if !sort.StringsAreSorted(a) {
			t.Fatal("DocGrams not sorted")
		}
	}
}

func toSet(ss []string) map[string]struct{} {
	out := make(map[string]struct{}, len(ss))
	for _, s := range ss {
		out[s] = struct{}{}
	}
	return out
}
