package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// # On-disk format
//
// The index persists as one append-only log file (FileName) in the store
// directory. Every record is crc-framed exactly like a diskstore segment
// record:
//
//	uint32 payloadLen | uint32 crc32(payload) | payload
//
// The first record is a header naming the format and the gram size; every
// later record is one commit:
//
//	header  = magic | uvarint q
//	commit  = kind=1 | uvarint ops | uvarint bytes | uvarint seg
//	          | uvarint nDels | nDels × (uvarint len | id)
//	          | uvarint nAdds | nAdds × (uvarint len | id | overflow byte
//	                                     | uvarint nGrams
//	                                     | nGrams × (uvarint len | gram
//	                                                 | float64le bound))
//
// (ops, bytes) is the diskstore CommitState after the commit the record
// mirrors. The v2 format bump added the fixed 8-byte little-endian
// IEEE-754 probability upper bound after each gram; v1 files (magic
// "staccato-index v1") fail header validation with ErrMismatch, which
// callers already answer with a transparent rebuild from a store scan —
// exactly how a stale index is handled. Decoding sanitizes bounds into
// [0, 1] (NaN, negative, or >1 become the always-admissible 1), so a
// decoded commit is canonical: re-encoding it reproduces it bit for bit.
//
// The index is derived data, so recovery is deliberately blunt: Load
// stops at the first damaged frame, truncates it away, and reports the
// state of the last intact commit — if that state no longer matches the
// store's, the caller rebuilds from a scan. Nothing in this file can lose
// documents; at worst it loses the right to skip a rebuild.

// FileName is the index log's name inside a store directory.
const FileName = "INDEX"

const (
	fileMagic      = "staccato-index v2"
	recCommit      = byte(1)
	frameHeader    = 8
	maxPayloadSize = 1 << 30
)

// State is the diskstore CommitState a commit record was written against,
// decoupled from the diskstore package so index files can front any
// store backend. Seg (the store's active segment number) is what keeps
// the fingerprint collision-free across compactions, which reset Ops and
// Bytes but always allocate fresh, higher segment numbers.
type State struct {
	Ops   uint64
	Bytes int64
	Seg   uint64
}

// ErrMismatch is returned by Load when the file exists but cannot serve
// the requested gram size — a header from a different q or format.
var ErrMismatch = errors.New("index: file does not match the requested gram size")

// Writer appends commit records to an index log.
type Writer struct {
	f    *os.File
	sync bool
}

// OpenAppend opens an existing index log for appending. Only the header
// frame is validated against gram size q — callers must have run Load or
// WriteSnapshot on the file first (both leave it ending on a clean frame
// boundary), which is what makes skipping a second full parse here safe.
// withSync fsyncs after every Append, mirroring the store's own
// durability setting.
func OpenAppend(path string, q int, withSync bool) (*Writer, error) {
	if err := checkHeader(path, q); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	return &Writer{f: f, sync: withSync}, nil
}

// checkHeader validates just the log's header frame against gram size q.
func checkHeader(path string, q int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, frameHeader+len(fileMagic)+binary.MaxVarintLen64)
	n, err := io.ReadFull(f, hdr)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %s has no valid header", ErrMismatch, path)
	}
	hdr = hdr[:n]
	if len(hdr) < frameHeader {
		return fmt.Errorf("%w: %s has no valid header", ErrMismatch, path)
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	end := frameHeader + int(plen)
	if end > len(hdr) {
		return fmt.Errorf("%w: %s has no valid header", ErrMismatch, path)
	}
	payload := hdr[frameHeader:end]
	if crc32.ChecksumIEEE(payload) != sum {
		return fmt.Errorf("%w: %s has no valid header", ErrMismatch, path)
	}
	gotQ, err := parseHeader(payload)
	if err != nil || gotQ != q {
		return fmt.Errorf("%w: %s", ErrMismatch, path)
	}
	return nil
}

// Append writes one commit record mirroring a store commit that applied
// adds and dels and left the store at st.
func (w *Writer) Append(adds []Entry, dels []string, st State) error {
	payload := encodeCommit(adds, dels, st)
	if _, err := w.f.Write(appendFrame(nil, payload)); err != nil {
		return fmt.Errorf("index: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("index: %w", err)
		}
	}
	return nil
}

// Close releases the log file handle.
func (w *Writer) Close() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("index: %w", err)
	}
	return nil
}

// WriteSnapshot atomically replaces the index log at path with a fresh
// one holding entries as a single commit at state st: write to a temp
// file, fsync, rename into place. A crash at any point leaves either the
// old log or the new one, never a mix.
func WriteSnapshot(path string, ix *Index, st State) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	buf := appendFrame(nil, encodeHeader(ix.GramSize()))
	buf = appendFrame(buf, encodeCommit(ix.Entries(), nil, st))
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("index: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("index: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("index: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// Load replays the index log at path into a fresh Index and returns it
// with the State of the last intact commit. A damaged or torn tail is
// truncated away (the index is derived data; dropping records can only
// force a rebuild, never lose documents). Missing files surface as
// fs.ErrNotExist; a header for a different gram size as ErrMismatch.
func Load(path string, q int) (*Index, State, error) {
	ix := New(q)
	st, err := loadInto(path, q, ix)
	return ix, st, err
}

// loadInto replays path into ix, returning the last intact commit's
// state.
func loadInto(path string, q int, ix *Index) (State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return State{}, err
	}
	var st State
	off := int64(0)
	sawHeader := false
	for int64(len(data))-off >= frameHeader {
		plen := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		end := off + frameHeader + int64(plen)
		if plen > maxPayloadSize || end > int64(len(data)) {
			break
		}
		payload := data[off+frameHeader : end]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		if !sawHeader {
			gotQ, err := parseHeader(payload)
			if err != nil || gotQ != q {
				return State{}, fmt.Errorf("%w: %s", ErrMismatch, path)
			}
			sawHeader = true
			off = end
			continue
		}
		adds, dels, recSt, err := parseCommit(payload)
		if err != nil {
			break
		}
		ix.Apply(adds, dels)
		st = recSt
		off = end
	}
	if !sawHeader {
		return State{}, fmt.Errorf("%w: %s has no valid header", ErrMismatch, path)
	}
	if off < int64(len(data)) {
		// Torn or damaged tail: cut it off so appends resume at a frame
		// boundary. If truncation fails the file still loads the same way
		// next time; ignore the error.
		_ = os.Truncate(path, off)
	}
	return st, nil
}

func encodeHeader(q int) []byte {
	buf := append([]byte{}, fileMagic...)
	return binary.AppendUvarint(buf, uint64(q))
}

func parseHeader(p []byte) (int, error) {
	if len(p) < len(fileMagic) || string(p[:len(fileMagic)]) != fileMagic {
		return 0, fmt.Errorf("index: bad header magic")
	}
	q, n := binary.Uvarint(p[len(fileMagic):])
	if n <= 0 || q == 0 {
		return 0, fmt.Errorf("index: bad header gram size")
	}
	return int(q), nil
}

func encodeCommit(adds []Entry, dels []string, st State) []byte {
	buf := []byte{recCommit}
	buf = binary.AppendUvarint(buf, st.Ops)
	buf = binary.AppendUvarint(buf, uint64(st.Bytes))
	buf = binary.AppendUvarint(buf, st.Seg)
	buf = binary.AppendUvarint(buf, uint64(len(dels)))
	for _, id := range dels {
		buf = appendString(buf, id)
	}
	buf = binary.AppendUvarint(buf, uint64(len(adds)))
	for _, e := range adds {
		buf = appendString(buf, e.ID)
		if e.Overflow {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(e.Grams)))
		for i, g := range e.Grams {
			buf = appendString(buf, g)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Bound(i)))
		}
	}
	return buf
}

func parseCommit(p []byte) (adds []Entry, dels []string, st State, err error) {
	bad := func() ([]Entry, []string, State, error) {
		return nil, nil, State{}, fmt.Errorf("index: malformed commit record")
	}
	if len(p) < 1 || p[0] != recCommit {
		return bad()
	}
	p = p[1:]
	ops, p, ok := takeUvarint(p)
	if !ok {
		return bad()
	}
	bytes, p, ok := takeUvarint(p)
	if !ok {
		return bad()
	}
	seg, p, ok := takeUvarint(p)
	if !ok {
		return bad()
	}
	st = State{Ops: ops, Bytes: int64(bytes), Seg: seg}
	nDels, p, ok := takeUvarint(p)
	if !ok || nDels > uint64(len(p)) {
		return bad()
	}
	for i := uint64(0); i < nDels; i++ {
		var id string
		id, p, ok = takeString(p)
		if !ok {
			return bad()
		}
		dels = append(dels, id)
	}
	nAdds, p, ok := takeUvarint(p)
	if !ok || nAdds > uint64(len(p)) {
		return bad()
	}
	for i := uint64(0); i < nAdds; i++ {
		var e Entry
		e.ID, p, ok = takeString(p)
		if !ok || len(p) < 1 {
			return bad()
		}
		e.Overflow = p[0] == 1
		p = p[1:]
		var nGrams uint64
		nGrams, p, ok = takeUvarint(p)
		if !ok || nGrams > uint64(len(p)) {
			return bad()
		}
		for j := uint64(0); j < nGrams; j++ {
			var g string
			g, p, ok = takeString(p)
			if !ok || len(p) < 8 {
				return bad()
			}
			b := math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
			// Sanitize into the admissible range so decoded commits are
			// canonical (NaN or out-of-range bounds become the safe 1).
			if !(b >= 0) || b > 1 {
				b = 1
			}
			e.Grams = append(e.Grams, g)
			e.Bounds = append(e.Bounds, b)
		}
		adds = append(adds, e)
	}
	if len(p) != 0 {
		return bad()
	}
	return adds, dels, st, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func takeUvarint(p []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, false
	}
	return v, p[n:], true
}

func takeString(p []byte) (string, []byte, bool) {
	n, p, ok := takeUvarint(p)
	if !ok || n > uint64(len(p)) {
		return "", nil, false
	}
	return string(p[:n]), p[n:], true
}

func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// syncDir fsyncs a directory so the snapshot rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("index: fsync %s: %w", dir, err)
	}
	return nil
}
