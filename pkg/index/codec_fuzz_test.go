package index

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// FuzzCommitRecord pins decode→encode→decode stability for the
// bound-carrying commit codec. parseCommit sanitizes bounds into [0, 1]
// (NaN, negative, and >1 collapse to the always-admissible 1), so any
// successfully decoded commit must be canonical: re-encoding it
// reproduces the accepted payload's meaning bit for bit, and re-decoding
// that yields deeply equal structures. A violation means a persisted
// index could drift across load/snapshot cycles.
func FuzzCommitRecord(f *testing.F) {
	f.Add(encodeCommit(
		[]Entry{
			{ID: "doc-1", Grams: []string{"abc", "bcd"}, Bounds: []float64{0.25, 1}},
			{ID: "doc-2", Overflow: true},
		},
		[]string{"gone"},
		State{Ops: 7, Bytes: 99, Seg: 2},
	))
	f.Add(encodeCommit(nil, nil, State{}))
	// A payload carrying an out-of-range bound: decode must sanitize it
	// to 1, and the sanitized form must round-trip. The 8 bytes after the
	// gram text are its little-endian bound; overwrite them with NaN.
	dirty := encodeCommit([]Entry{{ID: "d", Grams: []string{"xyz"}, Bounds: []float64{0.5}}}, nil, State{Ops: 1})
	at := bytes.Index(dirty, []byte("xyz")) + len("xyz")
	binary.LittleEndian.PutUint64(dirty[at:at+8], math.Float64bits(math.NaN()))
	f.Add(dirty)
	f.Add([]byte{recCommit})
	f.Add([]byte("staccato-index v1"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		adds, dels, st, err := parseCommit(payload)
		if err != nil {
			return // malformed input rejected cleanly: nothing to round-trip
		}
		for _, e := range adds {
			for i := range e.Bounds {
				b := e.Bounds[i]
				if math.IsNaN(b) || b < 0 || b > 1 {
					t.Fatalf("decode let an unsanitized bound through: %v", b)
				}
			}
		}
		re := encodeCommit(adds, dels, st)
		adds2, dels2, st2, err := parseCommit(re)
		if err != nil {
			t.Fatalf("re-encoded commit fails to parse: %v", err)
		}
		if !reflect.DeepEqual(adds, adds2) || !reflect.DeepEqual(dels, dels2) || st != st2 {
			t.Fatalf("decode→encode→decode drift:\n first  %+v %+v %+v\n second %+v %+v %+v",
				adds, dels, st, adds2, dels2, st2)
		}
		re2 := encodeCommit(adds2, dels2, st2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("canonical encoding unstable:\n first  %x\n second %x", re, re2)
		}
	})
}
