#!/usr/bin/env bash
# bench_topk.sh — run the ranked top-k benchmarks and emit
# BENCH_topk.json: the same `-top 10` query answered over candidate sets
# of 10, 100, 1000, and 10000 documents, plus the exhaustive
# fetch-and-evaluate control at 10000.
#
# The gates pin the tentpole claims of bound-driven early termination:
#   * the engine early-stops whenever the candidate set outruns the
#     first evaluation round (cand >= 100 here);
#   * evaluated documents stay flat from 100 to 10000 candidates — the
#     eval work is bounded by the round schedule, not the corpus;
#   * top-k latency at 10000 candidates beats the exhaustive control by
#     at least 3x;
#   * latency grows by at most 250x while the candidate set grows 1000x —
#     the residual growth is candidate-set construction, which is two
#     orders of magnitude cheaper per document than fetch-and-evaluate.
#
# Usage: scripts/bench_topk.sh [topk.json]
#   BENCHTIME=20x scripts/bench_topk.sh   # override iteration count
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_topk.json}"
benchtime="${BENCHTIME:-10x}"

raw=$(go test ./pkg/staccatodb -run '^$' -bench '^BenchmarkSearchTopK(Exhaustive)?$' \
	-benchtime "$benchtime" -count 1)
echo "$raw"

echo "$raw" | awk -v out="$out_file" '
	# BenchmarkSearchTopK/cand=100-8  10  249168 ns/op ... 100.0 candidates  1.000 early_stopped  64.00 evaluated_docs ...
	function metric(name,   i) {
		for (i = 3; i < NF; i++) {
			if ($(i + 1) == name) return $i
		}
		return ""
	}
	/^BenchmarkSearchTopK\/cand=10[^0-9]/    { ns[10] = $3;    ev[10] = metric("evaluated_docs");    es[10] = metric("early_stopped") }
	/^BenchmarkSearchTopK\/cand=100[^0-9]/   { ns[100] = $3;   ev[100] = metric("evaluated_docs");   es[100] = metric("early_stopped") }
	/^BenchmarkSearchTopK\/cand=1000[^0-9]/  { ns[1000] = $3;  ev[1000] = metric("evaluated_docs");  es[1000] = metric("early_stopped") }
	/^BenchmarkSearchTopK\/cand=10000[^0-9]/ { ns[10000] = $3; ev[10000] = metric("evaluated_docs"); es[10000] = metric("early_stopped") }
	/^BenchmarkSearchTopKExhaustive/    { full_ns = $3;   full_ev = metric("evaluated_docs") }
	END {
		for (c in ns) {
			if (ns[c] == "" || ev[c] == "" || es[c] == "") {
				print "bench_topk.sh: missing metrics for cand=" c > "/dev/stderr"
				exit 1
			}
		}
		if (full_ns == "" || full_ev == "") {
			print "bench_topk.sh: missing exhaustive control benchmark" > "/dev/stderr"
			exit 1
		}
		if (es[100] + 0 != 1 || es[1000] + 0 != 1 || es[10000] + 0 != 1) {
			print "bench_topk.sh: top-k did not early-stop on a perfectly ranked corpus" > "/dev/stderr"
			exit 1
		}
		if (ev[10000] + 0 > 2 * (ev[100] + 0)) {
			printf "bench_topk.sh: evaluated docs grew %s -> %s from 100 to 10000 candidates; eval work must stay flat\n", \
				ev[100], ev[10000] > "/dev/stderr"
			exit 1
		}
		if (full_ns + 0 < 3 * (ns[10000] + 0)) {
			printf "bench_topk.sh: top-k at 10000 candidates (%s ns) is not 3x faster than exhaustive (%s ns)\n", \
				ns[10000], full_ns > "/dev/stderr"
			exit 1
		}
		if (ns[10000] + 0 > 250 * (ns[10] + 0)) {
			printf "bench_topk.sh: latency grew %.0fx from 10 to 10000 candidates (limit 250x)\n", \
				ns[10000] / ns[10] > "/dev/stderr"
			exit 1
		}
		printf "{\n" > out
		printf "  \"benchmark\": \"SearchTopK\",\n" > out
		printf "  \"top_n\": 10,\n" > out
		printf "  \"corpus_docs\": 10000,\n" > out
		printf "  \"tiers\": [\n" > out
		n = split("10 100 1000 10000", order, " ")
		for (i = 1; i <= n; i++) {
			c = order[i]
			printf "    {\"candidates\": %d, \"ns_per_op\": %s, \"evaluated_docs\": %d, \"early_stopped\": %s}%s\n", \
				c, ns[c], ev[c], (es[c] + 0 == 1 ? "true" : "false"), (i < n ? "," : "") > out
		}
		printf "  ],\n" > out
		printf "  \"exhaustive_ns\": %s,\n", full_ns > out
		printf "  \"exhaustive_evaluated_docs\": %d,\n", full_ev > out
		printf "  \"topk_speedup_at_10000\": %.2f,\n", full_ns / ns[10000] > out
		printf "  \"latency_growth_10_to_10000\": %.2f\n", ns[10000] / ns[10] > out
		printf "}\n" > out
	}
'
echo "wrote $out_file:"
cat "$out_file"
