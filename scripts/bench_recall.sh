#!/usr/bin/env bash
# bench_recall.sh — run the end-to-end retrieval-quality benchmark and
# emit BENCH_recall.json: recall of the MAP baseline, the Staccato
# approximation at several (chunks, k) dials, and the exact FullSFST
# oracle, over an error-model OCR corpus with a fixed keyword workload.
# The binary's -gate flag enforces the paper's headline ordering
# MAP < Staccato(default dial) <= Full and fails the run otherwise.
#
# Usage: scripts/bench_recall.sh [recall.json]
#   DOCS=2000 QUERIES=24 scripts/bench_recall.sh   # override scale
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_recall.json}"
docs="${DOCS:-1000}"
queries="${QUERIES:-16}"
seed="${SEED:-1}"

go run ./cmd/staccatorecall \
	-docs "$docs" -queries "$queries" -seed "$seed" \
	-dials "4,2;6,3;8,4" -default "6,3" \
	-out "$out_file" -gate

echo "wrote $out_file:"
cat "$out_file"
