//go:build ignore

// gen_fuzz_seeds regenerates the checked-in seed corpora under
// */testdata/fuzz from real artifacts: an encoded document for the
// store codec, a live segment file for diskstore replay, and a live
// INDEX log for index replay — each with torn and bit-flipped variants
// so the fuzzers start at both the happy path and the recovery paths.
//
// Run from the repository root:
//
//	go run scripts/gen_fuzz_seeds.go
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/paper-repo/staccato-go/internal/testgen"
	"github.com/paper-repo/staccato-go/pkg/staccato"
	"github.com/paper-repo/staccato-go/pkg/staccatodb"
	"github.com/paper-repo/staccato-go/pkg/store"
	"github.com/paper-repo/staccato-go/pkg/store/diskstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gen_fuzz_seeds:", err)
		os.Exit(1)
	}
}

func run() error {
	docs := make([]*staccato.Doc, 3)
	for i := range docs {
		_, f := testgen.MustGenerate(testgen.Config{Length: 25, Seed: int64(i + 1)})
		d, err := staccato.Build(f, fmt.Sprintf("doc-%d", i), 4, 3)
		if err != nil {
			return err
		}
		docs[i] = d
	}

	// Store codec: one encoded document.
	encoded, err := store.Encode(docs[0])
	if err != nil {
		return err
	}
	if err := writeSeeds("pkg/store/testdata/fuzz/FuzzDecodeDoc", encoded); err != nil {
		return err
	}

	// Diskstore framing: a real segment holding two puts and a tombstone.
	ctx := context.Background()
	segDir, err := os.MkdirTemp("", "fuzz-seed-seg-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(segDir)
	st, err := diskstore.Open(segDir, diskstore.Options{})
	if err != nil {
		return err
	}
	for _, d := range docs[:2] {
		if err := st.Put(ctx, d); err != nil {
			return err
		}
	}
	if err := st.Delete(ctx, docs[0].ID); err != nil {
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	segBytes, err := os.ReadFile(filepath.Join(segDir, "seg-00000001.log"))
	if err != nil {
		return err
	}
	if err := writeSeeds("pkg/store/diskstore/testdata/fuzz/FuzzSegmentReplay", segBytes); err != nil {
		return err
	}

	// Index replay: a real INDEX log written by staccatodb commits.
	dbDir, err := os.MkdirTemp("", "fuzz-seed-db-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dbDir)
	db, err := staccatodb.Open(dbDir)
	if err != nil {
		return err
	}
	if err := db.Ingest(ctx, docs); err != nil {
		return err
	}
	if err := db.Close(); err != nil {
		return err
	}
	idxBytes, err := os.ReadFile(filepath.Join(dbDir, "INDEX"))
	if err != nil {
		return err
	}
	if err := writeSeeds("pkg/index/testdata/fuzz/FuzzIndexLoad", idxBytes); err != nil {
		return err
	}

	// Error-model config wire format: the defaults rendered, a fully
	// explicit spec, and a malformed one.
	def, err := testgen.ParseErrModelConfig("")
	if err != nil {
		return err
	}
	return writeStringSeeds("internal/testgen/testdata/fuzz/FuzzErrModelParse", map[string]string{
		"seed-defaults": def.String(),
		"seed-full":     "words=20,seed=9,vocab=50,zipf=1.4,subrate=0.1,burstrate=0.05,burstlen=8,burstsubrate=0.6,maxalts=4",
		"seed-bad":      "words=abc,nope=1",
	})
}

// writeStringSeeds writes string-argument corpus files into dir.
func writeStringSeeds(dir string, seeds map[string]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, s := range seeds {
		content := "go test fuzz v1\nstring(" + strconv.Quote(s) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s (%d string seeds)\n", dir, len(seeds))
	return nil
}

// writeSeeds writes the valid artifact plus a torn-tail variant and a
// bit-flipped variant into dir, in the go-fuzz corpus file format.
func writeSeeds(dir string, valid []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	torn := valid[:len(valid)-3]
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x40
	for name, data := range map[string][]byte{
		"seed-valid":   valid,
		"seed-torn":    torn,
		"seed-bitflip": flipped,
	} {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s (%d bytes valid artifact)\n", dir, len(valid))
	return nil
}
