#!/usr/bin/env bash
# bench_engine.sh — run the engine and diskstore benchmarks and emit
# machine-readable points on the perf trajectory:
#   BENCH_engine.json     engine ns/op at 1, 4, and 8 workers
#   BENCH_diskstore.json  batched vs unbatched ingest docs/s, cold-open
#                         reindex, scan throughput vs MemStore
#
# Usage: scripts/bench_engine.sh [engine.json] [diskstore.json]
#   BENCHTIME=20x scripts/bench_engine.sh   # override iteration count
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_engine.json}"
disk_out_file="${2:-BENCH_diskstore.json}"
benchtime="${BENCHTIME:-10x}"

raw=$(go test ./pkg/query -run '^$' -bench 'BenchmarkEngineSearch' \
	-benchtime "$benchtime" -count 1)
echo "$raw"

echo "$raw" | awk -v out="$out_file" '
	/^BenchmarkEngineSearch\// {
		# BenchmarkEngineSearch/workers=4-8   13   86342 ns/op ...
		split($1, path, "/")
		sub(/^workers=/, "", path[2])
		sub(/-[0-9]+$/, "", path[2])
		ns[path[2]] = $3
	}
	END {
		if (!("1" in ns) || !("4" in ns) || !("8" in ns)) {
			print "bench_engine.sh: missing worker variant in benchmark output" > "/dev/stderr"
			exit 1
		}
		printf "{\n  \"benchmark\": \"EngineSearch\",\n  \"unit\": \"ns/op\",\n  \"workers_1\": %s,\n  \"workers_4\": %s,\n  \"workers_8\": %s\n}\n", ns["1"], ns["4"], ns["8"] > out
	}
'
echo "wrote $out_file:"
cat "$out_file"

disk_raw=$(go test ./pkg/store/diskstore -run '^$' \
	-bench 'BenchmarkIngest|BenchmarkOpenReindex|BenchmarkScan' \
	-benchtime "$benchtime" -count 1)
echo "$disk_raw"

echo "$disk_raw" | awk -v out="$disk_out_file" '
	/^BenchmarkIngestUnbatched/  { unb_ns = $3;  unb_dps = $5 }
	/^BenchmarkIngestBatched/    { bat_ns = $3;  bat_dps = $5 }
	/^BenchmarkOpenReindex/      { open_ns = $3; open_dps = $5 }
	/^BenchmarkScanDisk/         { sd_ns = $3;   sd_dps = $5 }
	/^BenchmarkScanMem/          { sm_ns = $3;   sm_dps = $5 }
	END {
		if (unb_ns == "" || bat_ns == "" || open_ns == "" || sd_ns == "" || sm_ns == "") {
			print "bench_engine.sh: missing diskstore benchmark in output" > "/dev/stderr"
			exit 1
		}
		printf "{\n" > out
		printf "  \"benchmark\": \"DiskStore\",\n" > out
		printf "  \"ingest_unbatched_docs_per_sec\": %s,\n", unb_dps > out
		printf "  \"ingest_batched_docs_per_sec\": %s,\n", bat_dps > out
		printf "  \"ingest_batched_speedup\": %.2f,\n", unb_ns / bat_ns > out
		printf "  \"open_reindex_ns\": %s,\n", open_ns > out
		printf "  \"scan_disk_docs_per_sec\": %s,\n", sd_dps > out
		printf "  \"scan_mem_docs_per_sec\": %s\n", sm_dps > out
		printf "}\n" > out
	}
'
echo "wrote $disk_out_file:"
cat "$disk_out_file"
