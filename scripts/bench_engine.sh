#!/usr/bin/env bash
# bench_engine.sh — run the engine, diskstore, and index benchmarks and
# emit machine-readable points on the perf trajectory:
#   BENCH_engine.json     engine ns/op at 1, 4, and 8 workers
#   BENCH_diskstore.json  batched vs unbatched ingest docs/s, cold-open
#                         reindex, scan throughput vs MemStore
#   BENCH_index.json      candidate-only vs full-scan selective query
#                         over a 5000-doc corpus: ns/op, speedup, docs
#                         fetched vs corpus size
#
# Usage: scripts/bench_engine.sh [engine.json] [diskstore.json] [index.json]
#   BENCHTIME=20x scripts/bench_engine.sh   # override iteration count
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_engine.json}"
disk_out_file="${2:-BENCH_diskstore.json}"
index_out_file="${3:-BENCH_index.json}"
benchtime="${BENCHTIME:-10x}"

raw=$(go test ./pkg/query -run '^$' -bench 'BenchmarkEngineSearch' \
	-benchtime "$benchtime" -count 1)
echo "$raw"

echo "$raw" | awk -v out="$out_file" '
	/^BenchmarkEngineSearch\// {
		# BenchmarkEngineSearch/workers=4-8   13   86342 ns/op ...
		split($1, path, "/")
		sub(/^workers=/, "", path[2])
		sub(/-[0-9]+$/, "", path[2])
		ns[path[2]] = $3
	}
	END {
		if (!("1" in ns) || !("4" in ns) || !("8" in ns)) {
			print "bench_engine.sh: missing worker variant in benchmark output" > "/dev/stderr"
			exit 1
		}
		printf "{\n  \"benchmark\": \"EngineSearch\",\n  \"unit\": \"ns/op\",\n  \"workers_1\": %s,\n  \"workers_4\": %s,\n  \"workers_8\": %s\n}\n", ns["1"], ns["4"], ns["8"] > out
	}
'
echo "wrote $out_file:"
cat "$out_file"

disk_raw=$(go test ./pkg/store/diskstore -run '^$' \
	-bench 'BenchmarkIngest|BenchmarkOpenReindex|BenchmarkScan' \
	-benchtime "$benchtime" -count 1)
echo "$disk_raw"

echo "$disk_raw" | awk -v out="$disk_out_file" '
	/^BenchmarkIngestUnbatched/  { unb_ns = $3;  unb_dps = $5 }
	/^BenchmarkIngestBatched/    { bat_ns = $3;  bat_dps = $5 }
	/^BenchmarkOpenReindex/      { open_ns = $3; open_dps = $5 }
	/^BenchmarkScanDisk/         { sd_ns = $3;   sd_dps = $5 }
	/^BenchmarkScanMem/          { sm_ns = $3;   sm_dps = $5 }
	END {
		if (unb_ns == "" || bat_ns == "" || open_ns == "" || sd_ns == "" || sm_ns == "") {
			print "bench_engine.sh: missing diskstore benchmark in output" > "/dev/stderr"
			exit 1
		}
		printf "{\n" > out
		printf "  \"benchmark\": \"DiskStore\",\n" > out
		printf "  \"ingest_unbatched_docs_per_sec\": %s,\n", unb_dps > out
		printf "  \"ingest_batched_docs_per_sec\": %s,\n", bat_dps > out
		printf "  \"ingest_batched_speedup\": %.2f,\n", unb_ns / bat_ns > out
		printf "  \"open_reindex_ns\": %s,\n", open_ns > out
		printf "  \"scan_disk_docs_per_sec\": %s,\n", sd_dps > out
		printf "  \"scan_mem_docs_per_sec\": %s\n", sm_dps > out
		printf "}\n" > out
	}
'
echo "wrote $disk_out_file:"
cat "$disk_out_file"

index_raw=$(go test ./pkg/staccatodb -run '^$' -bench '^BenchmarkSearch(Indexed|Scan)$' \
	-benchtime "$benchtime" -count 1)
echo "$index_raw"

echo "$index_raw" | awk -v out="$index_out_file" '
	# BenchmarkSearchIndexed-8  10  16396 ns/op  ... 1.0 fetched_docs  4999 pruned_docs  5000 total_docs ...
	function metric(name,   i) {
		for (i = 3; i < NF; i++) {
			if ($(i + 1) == name) return $i
		}
		return ""
	}
	/^BenchmarkSearchIndexed/ {
		idx_ns = $3
		idx_pruned = metric("pruned_docs")
		idx_total = metric("total_docs")
		idx_fetched = metric("fetched_docs")
	}
	/^BenchmarkSearchScan/ { scan_ns = $3 }
	END {
		if (idx_ns == "" || scan_ns == "" || idx_pruned == "" || idx_total == "" || idx_fetched == "") {
			print "bench_engine.sh: missing index benchmark in output" > "/dev/stderr"
			exit 1
		}
		printf "{\n" > out
		printf "  \"benchmark\": \"IndexedSearch\",\n" > out
		printf "  \"mode\": \"candidate-only\",\n" > out
		printf "  \"corpus_docs\": %d,\n", idx_total > out
		printf "  \"candidate_only_ns\": %s,\n", idx_ns > out
		printf "  \"scan_ns\": %s,\n", scan_ns > out
		printf "  \"docs_fetched\": %d,\n", idx_fetched > out
		printf "  \"docs_pruned\": %d,\n", idx_pruned > out
		printf "  \"candidate_speedup\": %.2f\n", scan_ns / idx_ns > out
		printf "}\n" > out
	}
'
echo "wrote $index_out_file:"
cat "$index_out_file"
