#!/usr/bin/env bash
# bench_engine.sh — run the engine throughput benchmark and emit
# BENCH_engine.json with ns/op at 1, 4, and 8 workers, so each CI run
# leaves a machine-readable point on the perf trajectory.
#
# Usage: scripts/bench_engine.sh [output.json]
#   BENCHTIME=20x scripts/bench_engine.sh   # override iteration count
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_engine.json}"
benchtime="${BENCHTIME:-10x}"

raw=$(go test ./pkg/query -run '^$' -bench 'BenchmarkEngineSearch' \
	-benchtime "$benchtime" -count 1)
echo "$raw"

echo "$raw" | awk -v out="$out_file" '
	/^BenchmarkEngineSearch\// {
		# BenchmarkEngineSearch/workers=4-8   13   86342 ns/op ...
		split($1, path, "/")
		sub(/^workers=/, "", path[2])
		sub(/-[0-9]+$/, "", path[2])
		ns[path[2]] = $3
	}
	END {
		if (!("1" in ns) || !("4" in ns) || !("8" in ns)) {
			print "bench_engine.sh: missing worker variant in benchmark output" > "/dev/stderr"
			exit 1
		}
		printf "{\n  \"benchmark\": \"EngineSearch\",\n  \"unit\": \"ns/op\",\n  \"workers_1\": %s,\n  \"workers_4\": %s,\n  \"workers_8\": %s\n}\n", ns["1"], ns["4"], ns["8"] > out
	}
'
echo "wrote $out_file:"
cat "$out_file"
