#!/usr/bin/env bash
# lint.sh — the repo's static gate: formatting, go vet, and the
# staccatolint invariant suite (cmd/staccatovet). CI's lint job runs
# this script; run it locally before pushing to get the same verdict.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" "$unformatted"
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== staccatovet (repo invariant suite)"
go run ./cmd/staccatovet ./...

echo "lint: all clean"
