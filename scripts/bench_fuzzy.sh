#!/usr/bin/env bash
# bench_fuzzy.sh — run the fuzzy-query benchmarks and emit
# BENCH_fuzzy.json: a distance-1 fuzzy query over the shared 5000-doc
# corpus answered through the fuzzy-gram pigeonhole plan (candidate-only)
# versus a full per-document Levenshtein-DFA scan.
#
# Usage: scripts/bench_fuzzy.sh [fuzzy.json]
#   BENCHTIME=20x scripts/bench_fuzzy.sh   # override iteration count
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_fuzzy.json}"
benchtime="${BENCHTIME:-10x}"

raw=$(go test ./pkg/staccatodb -run '^$' -bench '^BenchmarkFuzzySearch(Indexed|Scan)$' \
	-benchtime "$benchtime" -count 1)
echo "$raw"

echo "$raw" | awk -v out="$out_file" '
	# BenchmarkFuzzySearchIndexed-8  10  93491 ns/op ... 13.00 fetched_docs  4987 pruned_docs  5000 total_docs ...
	function metric(name,   i) {
		for (i = 3; i < NF; i++) {
			if ($(i + 1) == name) return $i
		}
		return ""
	}
	/^BenchmarkFuzzySearchIndexed/ {
		idx_ns = $3
		idx_pruned = metric("pruned_docs")
		idx_total = metric("total_docs")
		idx_fetched = metric("fetched_docs")
	}
	/^BenchmarkFuzzySearchScan/ { scan_ns = $3 }
	END {
		if (idx_ns == "" || scan_ns == "" || idx_pruned == "" || idx_total == "" || idx_fetched == "") {
			print "bench_fuzzy.sh: missing fuzzy benchmark in output" > "/dev/stderr"
			exit 1
		}
		if (scan_ns + 0 <= idx_ns + 0) {
			print "bench_fuzzy.sh: fuzzy indexed search is not faster than the scan" > "/dev/stderr"
			exit 1
		}
		printf "{\n" > out
		printf "  \"benchmark\": \"FuzzySearch\",\n" > out
		printf "  \"distance\": 1,\n" > out
		printf "  \"corpus_docs\": %d,\n", idx_total > out
		printf "  \"candidate_only_ns\": %s,\n", idx_ns > out
		printf "  \"scan_ns\": %s,\n", scan_ns > out
		printf "  \"docs_fetched\": %d,\n", idx_fetched > out
		printf "  \"docs_pruned\": %d,\n", idx_pruned > out
		printf "  \"candidate_speedup\": %.2f\n", scan_ns / idx_ns > out
		printf "}\n" > out
	}
'
echo "wrote $out_file:"
cat "$out_file"
