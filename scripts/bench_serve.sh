#!/usr/bin/env bash
# bench_serve.sh — run the staccatoload harness against a self-contained
# in-process staccatod and emit BENCH_serve.json: QPS, p50/p90/p99
# latency, error rate, 429 accounting, and query-cache hit rate for a
# mixed read/write workload.
#
# Usage: scripts/bench_serve.sh [serve.json]
#   CLIENTS=2000 DURATION=10s scripts/bench_serve.sh   # override scale
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_serve.json}"
clients="${CLIENTS:-1000}"
duration="${DURATION:-5s}"
docs="${DOCS:-400}"

go run ./cmd/staccatoload \
	-clients "$clients" \
	-duration "$duration" \
	-docs "$docs" \
	-out "$out_file"

echo "wrote $out_file:"
cat "$out_file"
